//! Demonstrates the resilient call layer: transparent retry of
//! `[idempotent]` methods over a flaky link, the per-endpoint circuit
//! breaker, broken-surrogate fail-fast after an owner dies, and
//! re-binding to a restarted owner.
//!
//! ```sh
//! cargo run --release -p netobj-bench --example resilience
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj::transport::sim::{FlakePlan, SimNet};
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, Error, NetResult, Options, RetryPolicy, Space};
use parking_lot::Mutex;

network_object! {
    /// A counter whose read is marked idempotent (retryable on ambiguity).
    pub interface Counter ("demo.ResilientCounter"):
        client CounterClient, export CounterExport
    {
        0 => fn add(&self, n: i64) -> i64;
        1 [idempotent] => fn read(&self) -> i64;
    }
}

struct Impl {
    value: Mutex<i64>,
    executions: AtomicU64,
}

impl Counter for Impl {
    fn add(&self, n: i64) -> NetResult<i64> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        let mut v = self.value.lock();
        *v += n;
        Ok(*v)
    }
    fn read(&self) -> NetResult<i64> {
        Ok(*self.value.lock())
    }
}

fn space_on(net: &Arc<SimNet>, name: &str, opts: Options) -> Space {
    Space::builder()
        .transport(Arc::new(Arc::clone(net)))
        .listen(Endpoint::sim(name))
        .options(opts)
        .build()
        .unwrap()
}

fn counter_at(client: &Space, name: &str) -> CounterClient {
    CounterClient::narrow(
        client
            .import_root(&Endpoint::sim(name), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap()
}

fn main() {
    let net = SimNet::with_seed(Default::default(), 2026);
    let mut opts = Options::fast();
    opts.call_timeout = Duration::from_secs(2);
    opts.retry = RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(25),
        attempt_timeout: Some(Duration::from_millis(120)),
    };
    opts.breaker.failure_threshold = 3;
    opts.breaker.cooldown = Duration::from_millis(300);

    let imp = Arc::new(Impl {
        value: Mutex::new(0),
        executions: AtomicU64::new(0),
    });
    let owner = space_on(&net, "owner", opts.clone());
    owner
        .export(Arc::new(CounterExport(Arc::clone(&imp))))
        .unwrap();
    let client = space_on(&net, "client", opts.clone());
    let c = counter_at(&client, "owner");
    c.add(1).unwrap();

    println!("== 1. idempotent reads through a 25% flaky link ==");
    // A separate client with the breaker off: a low-threshold breaker
    // would otherwise open mid-retry-loop on consecutive ambiguous
    // timeouts and fail the call fast instead of retrying through.
    let mut retry_opts = opts.clone();
    retry_opts.breaker.enabled = false;
    let retry_client = space_on(&net, "retry-client", retry_opts);
    let rc = counter_at(&retry_client, "owner");
    net.set_flake("owner", Some(FlakePlan::uniform(0.25)), 7);
    let t0 = Instant::now();
    for _ in 0..20 {
        rc.read().expect("retried transparently");
    }
    net.set_flake("owner", None, 0);
    println!(
        "  20/20 reads ok in {:?}; retries_attempted={}",
        t0.elapsed(),
        retry_client.stats().retries_attempted
    );
    drop(rc);

    println!("== 2. silent partition: breaker opens, then calls fail fast ==");
    net.set_down("owner", true);
    while client.stats().breaker_opened == 0 {
        let _ = c.add(1);
    }
    let t0 = Instant::now();
    let err = c.add(1).unwrap_err();
    println!(
        "  breaker open: call failed in {:?} (timeout is 2s): {err}",
        t0.elapsed()
    );
    net.set_down("owner", false);
    std::thread::sleep(opts.breaker.cooldown + Duration::from_millis(50));
    while c.add(1).is_err() {}
    println!(
        "  healed: calls flow again; calls_failed_fast={}",
        client.stats().calls_failed_fast
    );

    println!("== 3. owner crash: lease renewals fail, surrogate breaks ==");
    // A lease-mode client: its renewals are what detect the owner's death.
    // (A partition longer than a few renewal rounds would equally break the
    // surrogate — correctly so, since the owner expires the lease too.)
    let mut lease_opts = opts.clone();
    lease_opts.lease = Some(Duration::from_millis(400));
    lease_opts.dirty_timeout = Duration::from_millis(150);
    let lease_client = space_on(&net, "lease-client", lease_opts);
    let lc = counter_at(&lease_client, "owner");
    lc.add(1).unwrap();
    owner.crash();
    net.crash("owner");
    loop {
        match lc.read() {
            Err(Error::OwnerDead(id)) => {
                println!("  owner {id} declared dead");
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let t0 = Instant::now();
    let err = lc.add(1).unwrap_err();
    println!("  broken surrogate failed in {:?}: {err}", t0.elapsed());

    println!("== 4. restart: fresh import binds the new incarnation ==");
    net.restart("owner");
    let owner2 = space_on(&net, "owner", opts);
    let imp2 = Arc::new(Impl {
        value: Mutex::new(0),
        executions: AtomicU64::new(0),
    });
    owner2
        .export(Arc::new(CounterExport(Arc::clone(&imp2))))
        .unwrap();
    // The lease client's breaker for this endpoint is still open from the
    // crash: binds fail fast until the cooldown admits a probe. Retry the
    // import as a real client would.
    let t0 = Instant::now();
    let fresh = loop {
        match lease_client.import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER) {
            Ok(h) => break CounterClient::narrow(h).unwrap(),
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    println!(
        "  re-bound after {:?} (breaker cooldown + probe)",
        t0.elapsed()
    );
    println!(
        "  new incarnation: add(5) -> {}; stale stub -> {:?}",
        fresh.add(5).unwrap(),
        lc.add(1).map_err(|e| e.to_string())
    );
    println!(
        "  stats: reconnects={} breaker_opened={} calls_failed_fast={}",
        lease_client.stats().reconnects,
        client.stats().breaker_opened,
        client.stats().calls_failed_fast
    );
    println!("ok");
}
