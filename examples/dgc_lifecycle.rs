//! A narrated tour of the distributed collector.
//!
//! ```sh
//! cargo run --example dgc_lifecycle
//! ```
//!
//! Part 1 drives the *formal model* through one reference's full life
//! cycle, printing the abstract state (`⊥ → nil → OK → ccit → ⊥`) after
//! every transition — including the `ccitnil` resurrection path.
//!
//! Part 2 replays the same story on the *real runtime* over a simulated
//! 30 ms network, showing the matching observable effects (dirty/clean
//! calls, table sizes), then kills a client and watches the owner-side
//! ping detector reclaim.

use std::sync::Arc;
use std::time::Duration;

use netobj::transport::sim::{LinkConfig, SimNet};
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, NetResult, Options, Space};
use netobj_dgc_model::{apply, Config, Proc, Ref, Transition};

network_object! {
    /// Minimal payload object.
    pub interface Cell ("demo.Cell"): client CellClient, export CellExport {
        0 => fn get(&self) -> i64;
    }
}

struct CellImpl(i64);
impl Cell for CellImpl {
    fn get(&self) -> NetResult<i64> {
        Ok(self.0)
    }
}

fn show(c: &Config, label: &str) {
    let client = Proc(1);
    let r = Ref(0);
    println!(
        "  {label:<28} rec(client)={:<8} pdirty={:?} tdirty={} msgs={}",
        format!("{}", c.rec(client, r)),
        c.pdirty.get(&(Proc(0), r)).map(|s| s.len()).unwrap_or(0),
        c.tdirty.values().map(|s| s.len()).sum::<usize>(),
        c.count_messages(|_| true),
    );
}

fn model_walkthrough() {
    println!("== Part 1: the formal model, one life cycle ==");
    let mut c = Config::new(2, &[0]);
    let (owner, client, r) = (Proc(0), Proc(1), Ref(0));
    show(&c, "initial (⊥ at client)");

    apply(&mut c, Transition::MakeCopy(owner, client, r));
    show(&c, "owner sends copy");
    apply(&mut c, Transition::ReceiveCopy(owner, client, r, 0));
    show(&c, "copy received (nil)");
    apply(&mut c, Transition::DoDirtyCall(client, r));
    show(&c, "dirty call sent");
    apply(&mut c, Transition::ReceiveDirty(client, owner, r));
    show(&c, "owner lists client");
    apply(&mut c, Transition::DoDirtyAck(owner, client, r));
    apply(&mut c, Transition::ReceiveDirtyAck(owner, client, r));
    show(&c, "dirty acked (OK: usable)");
    apply(&mut c, Transition::DoCopyAck(client, owner, r, 0));
    apply(&mut c, Transition::ReceiveCopyAck(client, owner, r, 0));
    show(&c, "copy acked (pin released)");

    c.drop_ref(client, r);
    apply(&mut c, Transition::Finalize(client, r));
    show(&c, "surrogate unreachable");
    apply(&mut c, Transition::DoCleanCall(client, r));
    show(&c, "clean call sent (ccit)");

    // While the clean is in transit, the owner re-sends the reference:
    // the ccitnil path Birrell's description did not make explicit.
    apply(&mut c, Transition::MakeCopy(owner, client, r));
    apply(&mut c, Transition::ReceiveCopy(owner, client, r, 1));
    show(&c, "copy during clean (ccitnil)");

    apply(&mut c, Transition::ReceiveClean(client, owner, r));
    apply(&mut c, Transition::DoCleanAck(owner, client, r));
    apply(&mut c, Transition::ReceiveCleanAck(owner, client, r));
    show(&c, "clean acked (back to nil)");
    apply(&mut c, Transition::DoDirtyCall(client, r));
    apply(&mut c, Transition::ReceiveDirty(client, owner, r));
    apply(&mut c, Transition::DoDirtyAck(owner, client, r));
    apply(&mut c, Transition::ReceiveDirtyAck(owner, client, r));
    show(&c, "re-registered (OK again)");
    apply(&mut c, Transition::DoCopyAck(client, owner, r, 1));
    apply(&mut c, Transition::ReceiveCopyAck(client, owner, r, 1));

    c.drop_ref(client, r);
    apply(&mut c, Transition::Finalize(client, r));
    apply(&mut c, Transition::DoCleanCall(client, r));
    apply(&mut c, Transition::ReceiveClean(client, owner, r));
    apply(&mut c, Transition::DoCleanAck(owner, client, r));
    apply(&mut c, Transition::ReceiveCleanAck(owner, client, r));
    show(&c, "final clean (⊥, collected)");
    netobj_dgc_model::check_all(&c).expect("all invariants hold");
    println!("  every invariant of the correctness proof held throughout\n");
}

fn runtime_walkthrough() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Part 2: the runtime over a 30 ms simulated network ==");
    let net = SimNet::new(LinkConfig::with_latency(Duration::from_millis(30)));
    let mut opts = Options::fast();
    opts.ping_interval = Some(Duration::from_millis(150));
    opts.ping_failures = 2;
    opts.clean_timeout = Duration::from_millis(300);

    let owner = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::sim("owner"))
        .options(opts.clone())
        .build()?;
    owner.export(Arc::new(CellExport(Arc::new(CellImpl(42)))))?;

    let client = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::sim("client"))
        .options(opts.clone())
        .build()?;

    println!("  binding (⊥ → nil → OK: one dirty round trip)...");
    let cell = CellClient::narrow(client.import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)?)?;
    println!(
        "  bound; value={} dirty_sent={} blocked={:?}",
        cell.get()?,
        client.stats().dirty_sent,
        client.stats().blocked()
    );

    println!("  dropping the last handle (OK → ccit → ⊥)...");
    drop(cell);
    while client.stats().clean_sent == 0 || client.imported_count() > 0 {
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "  cleaned; clean_sent={} owner.clean_received={}",
        client.stats().clean_sent,
        owner.stats().clean_received
    );

    println!("  re-binding and crashing the client (ping detector)...");
    let cell = CellClient::narrow(client.import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)?)?;
    let _ = cell.get()?;
    client.crash();
    net.set_down("client", true);
    std::mem::forget(cell);
    let t0 = std::time::Instant::now();
    while owner.stats().clients_purged == 0 {
        std::thread::sleep(Duration::from_millis(20));
        if t0.elapsed() > Duration::from_secs(30) {
            return Err("ping detector did not fire".into());
        }
    }
    println!(
        "  owner purged the dead client after {:?} ({} pings sent)",
        t0.elapsed(),
        owner.stats().pings_sent
    );
    println!("ok");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    model_walkthrough();
    runtime_walkthrough()
}
