//! A chat room: callbacks via client-owned network objects.
//!
//! ```sh
//! cargo run --example chat
//! ```
//!
//! The room (server) owns a `Room` object; each member space exports its
//! own `Listener` object and passes it to the room when joining —
//! references as arguments, flowing *toward* the server, so the server
//! calls *back* into the clients on every message. Leaving drops the
//! listener registration, and the collector's reference listing is what
//! lets the room's space reclaim the member's listener surrogate
//! bookkeeping.

use std::sync::Arc;

use netobj::transport::sim::SimNet;
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, Error, NetResult, Options, Space};
use parking_lot::Mutex;

network_object! {
    /// A member's inbox: the room invokes this remotely.
    pub interface Listener ("chat.Listener"):
        client ListenerClient, export ListenerExport
    {
        0 => fn deliver(&self, from: String, text: String) -> ();
    }
}

network_object! {
    /// The room.
    pub interface Room ("chat.Room"): client RoomClient, export RoomExport {
        0 => fn join(&self, name: String, inbox: ListenerClient) -> u64;
        1 => fn leave(&self, ticket: u64) -> bool;
        2 => fn say(&self, ticket: u64, text: String) -> u64;
        3 => fn members(&self) -> Vec<String>;
    }
}

struct InboxImpl {
    name: String,
    received: Mutex<Vec<(String, String)>>,
}

impl Listener for InboxImpl {
    fn deliver(&self, from: String, text: String) -> NetResult<()> {
        println!("  [{}'s inbox] {} says: {}", self.name, from, text);
        self.received.lock().push((from, text));
        Ok(())
    }
}

struct RoomImpl {
    members: Mutex<Vec<(u64, String, ListenerClient)>>,
    next_ticket: Mutex<u64>,
}

impl Room for RoomImpl {
    fn join(&self, name: String, inbox: ListenerClient) -> NetResult<u64> {
        let mut t = self.next_ticket.lock();
        *t += 1;
        let ticket = *t;
        self.members.lock().push((ticket, name, inbox));
        Ok(ticket)
    }
    fn leave(&self, ticket: u64) -> NetResult<bool> {
        let mut members = self.members.lock();
        let before = members.len();
        members.retain(|(t, _, _)| *t != ticket);
        Ok(members.len() != before)
    }
    fn say(&self, ticket: u64, text: String) -> NetResult<u64> {
        let members = self.members.lock().clone();
        let from = members
            .iter()
            .find(|(t, _, _)| *t == ticket)
            .map(|(_, n, _)| n.clone())
            .ok_or_else(|| Error::app("not a member"))?;
        let mut delivered = 0;
        for (t, _, inbox) in &members {
            if *t != ticket {
                // Callback into the member's space.
                if inbox.deliver(from.clone(), text.clone()).is_ok() {
                    delivered += 1;
                }
            }
        }
        Ok(delivered)
    }
    fn members(&self) -> NetResult<Vec<String>> {
        Ok(self
            .members
            .lock()
            .iter()
            .map(|(_, n, _)| n.clone())
            .collect())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = SimNet::instant();
    let spawn = |name: &str| {
        Space::builder()
            .transport(Arc::new(Arc::clone(&net)))
            .listen(Endpoint::sim(name.to_owned()))
            .options(Options::fast())
            .build()
    };

    let server = spawn("room")?;
    server.export(Arc::new(RoomExport(Arc::new(RoomImpl {
        members: Mutex::new(Vec::new()),
        next_ticket: Mutex::new(0),
    }))))?;

    // Three members, each a space of its own with an exported inbox.
    let mut handles = Vec::new();
    for name in ["ada", "barbara", "grace"] {
        let space = spawn(name)?;
        let inbox_impl = Arc::new(InboxImpl {
            name: name.to_owned(),
            received: Mutex::new(Vec::new()),
        });
        let inbox =
            ListenerClient::narrow(space.local(Arc::new(ListenerExport(Arc::clone(&inbox_impl)))))?;
        let room =
            RoomClient::narrow(space.import_root(&Endpoint::sim("room"), ObjIx::FIRST_USER)?)?;
        let ticket = room.join(name.to_owned(), inbox)?;
        println!("{name} joined with ticket {ticket}");
        handles.push((name, space, room, ticket, inbox_impl));
    }

    println!("members: {:?}", handles[0].2.members()?);

    // Conversation.
    let (_, _, ada_room, ada_ticket, _) = &handles[0];
    let delivered = ada_room.say(*ada_ticket, "hello, rooms of objects!".into())?;
    println!("ada's message delivered to {delivered} member(s)");
    let (_, _, grace_room, grace_ticket, _) = &handles[2];
    grace_room.say(*grace_ticket, "hi ada".into())?;

    // Everyone but the speaker received each message.
    assert_eq!(handles[1].4.received.lock().len(), 2, "barbara heard both");

    // Barbara leaves; her inbox handle at the room drops, and the room's
    // space cleans her listener registration.
    let (_, barbara_space, barbara_room, ticket, _) = &handles[1];
    assert!(barbara_room.leave(*ticket)?);
    ada_room.say(*ada_ticket, "anyone still here?".into())?;
    assert_eq!(
        handles[1].4.received.lock().len(),
        2,
        "barbara heard nothing new"
    );

    // The room's clean call reaches barbara's space once the surrogate
    // drops.
    for _ in 0..200 {
        if barbara_space.stats().clean_received >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    println!(
        "room cleaned barbara's listener: clean_received={}",
        barbara_space.stats().clean_received
    );
    println!("ok");
    Ok(())
}
