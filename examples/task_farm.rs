//! A task farm: third-party reference transfer in anger.
//!
//! ```sh
//! cargo run --example task_farm
//! ```
//!
//! A coordinator owns a `Farm`; workers (their own spaces) register
//! themselves by passing *their own* `Worker` objects to the coordinator
//! (references as arguments). A submitter space hands the coordinator a
//! reference to its `ResultSink` (a third-party transfer: the coordinator
//! forwards the sink reference to every worker, so workers talk to the
//! submitter directly — sender, receiver and owner are three different
//! spaces, the triangle the collector has to get right).

use std::sync::Arc;

use netobj::transport::sim::SimNet;
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, NetResult, Options, Space};
use parking_lot::Mutex;

network_object! {
    /// A worker accepts numeric jobs.
    pub interface Worker ("farm.Worker"): client WorkerClient, export WorkerExport {
        0 => fn run(&self, job: u64, sink: ResultSink) -> ();
    }
}

network_object! {
    /// The submitter's collection point for results.
    pub interface Sink ("farm.Sink"): client ResultSink, export SinkExport {
        0 => fn publish(&self, job: u64, result: u64) -> ();
    }
}

network_object! {
    /// The coordinator: workers register; submitters enqueue.
    pub interface Farm ("farm.Farm"): client FarmClient, export FarmExport {
        0 => fn register(&self, w: WorkerClient) -> ();
        1 => fn submit(&self, jobs: Vec<u64>, sink: ResultSink) -> u64;
    }
}

struct WorkerImpl {
    name: &'static str,
    jobs_done: Mutex<u64>,
}

impl Worker for WorkerImpl {
    fn run(&self, job: u64, sink: ResultSink) -> NetResult<()> {
        // "Work": count set bits of a xorshifted value — enough to be
        // verifiable, cheap enough to run hundreds of times.
        let mut x = job.wrapping_mul(0x9e3779b97f4a7c15);
        x ^= x >> 31;
        let result = x.count_ones() as u64;
        *self.jobs_done.lock() += 1;
        // The worker calls the *submitter* directly through the sink
        // reference it received third-party via the coordinator.
        sink.publish(job, result)?;
        let _ = self.name;
        Ok(())
    }
}

struct FarmImpl {
    workers: Mutex<Vec<WorkerClient>>,
}

impl Farm for FarmImpl {
    fn register(&self, w: WorkerClient) -> NetResult<()> {
        self.workers.lock().push(w);
        Ok(())
    }
    fn submit(&self, jobs: Vec<u64>, sink: ResultSink) -> NetResult<u64> {
        let workers = self.workers.lock().clone();
        if workers.is_empty() {
            return Err(netobj::Error::app("no workers registered"));
        }
        let mut dispatched = 0u64;
        for (i, job) in jobs.into_iter().enumerate() {
            // Forward the submitter's sink to the worker: third-party
            // transfer of a reference the coordinator does not own.
            workers[i % workers.len()].run(job, sink.clone())?;
            dispatched += 1;
        }
        Ok(dispatched)
    }
}

struct SinkImpl {
    results: Mutex<Vec<(u64, u64)>>,
}

impl Sink for SinkImpl {
    fn publish(&self, job: u64, result: u64) -> NetResult<()> {
        self.results.lock().push((job, result));
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = SimNet::instant();
    let spawn = |name: &str| -> NetResult<Space> {
        Space::builder()
            .transport(Arc::new(Arc::clone(&net)))
            .listen(Endpoint::sim(name.to_owned()))
            .options(Options::fast())
            .build()
    };

    // Coordinator.
    let coord = spawn("coord")?;
    coord.export(Arc::new(FarmExport(Arc::new(FarmImpl {
        workers: Mutex::new(Vec::new()),
    }))))?;

    // Workers register their own objects with the coordinator.
    let mut worker_spaces = Vec::new();
    for name in ["w1", "w2", "w3"] {
        let ws = spawn(name)?;
        let farm = FarmClient::narrow(ws.import_root(&Endpoint::sim("coord"), ObjIx::FIRST_USER)?)?;
        let wobj = Arc::new(WorkerImpl {
            name: "worker",
            jobs_done: Mutex::new(0),
        });
        farm.register(WorkerClient::narrow(
            ws.local(Arc::new(WorkerExport(Arc::clone(&wobj)))),
        )?)?;
        worker_spaces.push((ws, wobj));
        println!("registered worker {name}");
    }

    // Submitter.
    let submitter = spawn("submitter")?;
    let farm =
        FarmClient::narrow(submitter.import_root(&Endpoint::sim("coord"), ObjIx::FIRST_USER)?)?;
    let sink_impl = Arc::new(SinkImpl {
        results: Mutex::new(Vec::new()),
    });
    let sink = ResultSink::narrow(submitter.local(Arc::new(SinkExport(Arc::clone(&sink_impl)))))?;

    let jobs: Vec<u64> = (0..300).collect();
    let dispatched = farm.submit(jobs.clone(), sink)?;
    println!("dispatched {dispatched} jobs across 3 workers");

    // Results arrive synchronously in this example (run() publishes
    // before returning), so everything is in.
    let results = sink_impl.results.lock();
    assert_eq!(results.len(), 300);
    let spread: Vec<u64> = worker_spaces
        .iter()
        .map(|(_, w)| *w.jobs_done.lock())
        .collect();
    println!("per-worker job counts: {spread:?}");
    assert!(spread.iter().all(|&n| n == 100));

    // Collector bookkeeping: the coordinator received the sink reference
    // once per submit (it forwards it without owning it), and each worker
    // registered the submitter's sink exactly once.
    println!(
        "coordinator: dirty_sent={} (registered refs it received)",
        coord.stats().dirty_sent
    );
    for (ws, _) in &worker_spaces {
        println!(
            "worker {}: dirty_sent={} surrogates={}",
            ws.id().short(),
            ws.stats().dirty_sent,
            ws.stats().surrogates_created
        );
    }
    println!(
        "submitter: dirty_received={} (sink registrations from coord + workers)",
        submitter.stats().dirty_received
    );
    println!("ok");
    Ok(())
}
