//! The observability layer end to end: one call chained through three
//! spaces (frontend → cache → store) yields span records in all three
//! span rings sharing a single causal trace id, reconstructable into a
//! call tree without any global coordination; each space also renders
//! its full metrics registry as Prometheus text.
//!
//! ```sh
//! cargo run --release -p netobj-bench --example observability
//! ```

use std::sync::Arc;
use std::time::Duration;

use netobj::transport::sim::SimNet;
use netobj::transport::Endpoint;
use netobj::wire::{ObjIx, SpanRecord};
use netobj::{network_object, NetResult, Options, Space};

network_object! {
    /// The backing store at the end of the chain.
    pub interface Store ("demo.Store"): client StoreClient, export StoreExport {
        0 [idempotent] => fn get(&self, key: String) -> String;
    }
}

network_object! {
    /// The middle tier: serves lookups by consulting the store.
    pub interface Cache ("demo.Cache"): client CacheClient, export CacheExport {
        0 [idempotent] => fn lookup(&self, key: String) -> String;
    }
}

struct StoreImpl;

impl Store for StoreImpl {
    fn get(&self, key: String) -> NetResult<String> {
        Ok(format!("value-of-{key}"))
    }
}

/// The cache misses every time, so each lookup fans out to the store —
/// a nested remote call issued *during* a dispatch, which is exactly the
/// case the trace-id propagation rules exist for.
struct CacheImpl {
    store: StoreClient,
}

impl Cache for CacheImpl {
    fn lookup(&self, key: String) -> NetResult<String> {
        self.store.get(key)
    }
}

fn space_on(net: &Arc<SimNet>, name: &str, opts: Options) -> Space {
    Space::builder()
        .transport(Arc::new(Arc::clone(net)))
        .listen(Endpoint::sim(name))
        .options(opts)
        .build()
        .unwrap()
}

fn main() {
    let net = SimNet::with_seed(Default::default(), 7);
    let opts = Options::fast();

    let backend = space_on(&net, "backend", opts.clone());
    backend
        .export(Arc::new(StoreExport(Arc::new(StoreImpl))))
        .unwrap();

    let middle = space_on(&net, "middle", opts.clone());
    let store = StoreClient::narrow(
        middle
            .import_root(&Endpoint::sim("backend"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    middle
        .export(Arc::new(CacheExport(Arc::new(CacheImpl { store }))))
        .unwrap();

    let frontend = space_on(&net, "frontend", opts);
    let cache = CacheClient::narrow(
        frontend
            .import_root(&Endpoint::sim("middle"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();

    // The call under observation: frontend → middle → backend.
    let v = cache.lookup("answer".into()).unwrap();
    assert_eq!(v, "value-of-answer");
    // Let reply acks drain so byte counts settle.
    std::thread::sleep(Duration::from_millis(50));

    // The root span is the frontend's client-side record of the lookup.
    let root = frontend
        .spans()
        .into_iter()
        .find(|s| s.label == "demo.Cache/lookup")
        .expect("frontend recorded the root span");

    // Merge the three rings, keeping only this trace.
    let spaces = [
        ("frontend", &frontend),
        ("middle", &middle),
        ("backend", &backend),
    ];
    let mut merged: Vec<(&str, SpanRecord)> = Vec::new();
    for (name, space) in &spaces {
        for s in space.spans() {
            if s.trace_id == root.trace_id {
                merged.push((name, s));
            }
        }
    }
    for (name, space) in &spaces {
        assert!(
            space.spans().iter().any(|s| s.trace_id == root.trace_id),
            "{name} must hold a span of the trace"
        );
    }

    // Reconstruct the causal tree: depth = number of parent links to the
    // root, following parent_span within the merged set.
    let depth_of = |span: &SpanRecord| {
        let mut depth = 0;
        let mut parent = span.parent_span;
        while parent != 0 {
            match merged.iter().find(|(_, s)| s.span_id == parent) {
                Some((_, p)) => {
                    depth += 1;
                    parent = p.parent_span;
                }
                None => break,
            }
        }
        depth
    };
    let mut tree: Vec<(usize, &str, &SpanRecord)> = merged
        .iter()
        .map(|(name, s)| (depth_of(s), *name, s))
        .collect();
    tree.sort_by_key(|(depth, _, s)| (*depth, s.span_id));

    println!("trace {:016x}", root.trace_id);
    println!();
    println!(
        "{:<28} {:<9} {:<8} {:>9} {:>9} {:>7} {:>7}",
        "span", "space", "kind", "total µs", "queue µs", "arg B", "res B"
    );
    for (depth, name, s) in &tree {
        let label = if s.label.is_empty() {
            format!("serve/m{}", s.method)
        } else {
            s.label.clone()
        };
        println!(
            "{:<28} {:<9} {:<8} {:>9} {:>9} {:>7} {:>7}",
            format!("{}{}", "  ".repeat(*depth), label),
            name,
            format!("{:?}", s.kind).to_lowercase(),
            s.duration_micros,
            s.queue_wait_micros,
            s.marshal_bytes,
            s.unmarshal_bytes,
        );
    }

    println!();
    for (name, space) in &spaces {
        println!("=== {name} ({}) — Prometheus text ===", space.id().short());
        print!("{}", space.metrics_text());
        println!();
    }
    println!("ok");
}
