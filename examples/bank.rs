//! The bank: the canonical Network Objects demonstration, over real TCP.
//!
//! ```sh
//! cargo run --example bank
//! ```
//!
//! A bank space exports a `Bank` object and registers it with an agent
//! (the `netobjd` name service). `Account` objects are *also* network
//! objects: `open_account` returns references to them, so tellers invoke
//! accounts directly — object references as results, the pattern that
//! forces the collector's transient-pin machinery. Three teller spaces
//! hammer the same accounts concurrently over TCP sockets on localhost.

use std::collections::HashMap;
use std::sync::Arc;

use netobj::transport::tcp::Tcp;
use netobj::transport::Endpoint;
use netobj::{network_object, Error, NetResult, Space};
use netobj_agent::Agent;
use parking_lot::Mutex;

network_object! {
    /// A bank account.
    pub interface Account ("bank.Account"):
        client AccountClient, export AccountExport
    {
        0 => fn deposit(&self, amount: i64) -> i64;
        1 => fn withdraw(&self, amount: i64) -> i64;
        2 => fn balance(&self) -> i64;
    }
}

network_object! {
    /// The bank: opens and looks up accounts.
    pub interface Bank ("bank.Bank"): client BankClient, export BankExport {
        0 => fn open_account(&self, owner: String) -> AccountClient;
        1 => fn lookup(&self, owner: String) -> Option<AccountClient>;
        2 => fn total_assets(&self) -> i64;
    }
}

struct AccountImpl {
    balance: Mutex<i64>,
}

impl Account for AccountImpl {
    fn deposit(&self, amount: i64) -> NetResult<i64> {
        if amount < 0 {
            return Err(Error::app("deposits must be non-negative"));
        }
        let mut b = self.balance.lock();
        *b += amount;
        Ok(*b)
    }
    fn withdraw(&self, amount: i64) -> NetResult<i64> {
        let mut b = self.balance.lock();
        if amount > *b {
            return Err(Error::app(format!(
                "insufficient funds: balance {b}, requested {amount}"
            )));
        }
        *b -= amount;
        Ok(*b)
    }
    fn balance(&self) -> NetResult<i64> {
        Ok(*self.balance.lock())
    }
}

struct BankImpl {
    space: Space,
    accounts: Mutex<HashMap<String, (Arc<AccountImpl>, AccountClient)>>,
}

impl Bank for BankImpl {
    fn open_account(&self, owner: String) -> NetResult<AccountClient> {
        let mut accounts = self.accounts.lock();
        if let Some((_, client)) = accounts.get(&owner) {
            return Ok(client.clone());
        }
        let account = Arc::new(AccountImpl {
            balance: Mutex::new(0),
        });
        let handle = self
            .space
            .local(Arc::new(AccountExport(Arc::clone(&account))));
        let client = AccountClient::narrow(handle)?;
        accounts.insert(owner, (account, client.clone()));
        Ok(client)
    }
    fn lookup(&self, owner: String) -> NetResult<Option<AccountClient>> {
        Ok(self.accounts.lock().get(&owner).map(|(_, c)| c.clone()))
    }
    fn total_assets(&self) -> NetResult<i64> {
        Ok(self
            .accounts
            .lock()
            .values()
            .map(|(a, _)| *a.balance.lock())
            .sum())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Agent host (netobjd). ---
    let agent_space = Space::builder()
        .transport(Arc::new(Tcp))
        .listen(Endpoint::tcp("127.0.0.1:0"))
        .build()?;
    netobj_agent::serve(&agent_space)?;
    let agent_ep = agent_space.endpoint().unwrap();
    println!("agent (netobjd) at {agent_ep}");

    // --- The bank. ---
    let bank_space = Space::builder()
        .transport(Arc::new(Tcp))
        .listen(Endpoint::tcp("127.0.0.1:0"))
        .build()?;
    let bank_impl = Arc::new(BankImpl {
        space: bank_space.clone(),
        accounts: Mutex::new(HashMap::new()),
    });
    let bank_handle = bank_space.export(Arc::new(BankExport(bank_impl)))?;
    let agent = netobj_agent::connect(&bank_space, &agent_ep)?;
    agent.put("bank".into(), bank_handle)?;
    println!(
        "bank at {} registered with the agent",
        bank_space.endpoint().unwrap()
    );

    // --- Tellers: separate spaces, concurrent TCP clients. ---
    let mut tellers = Vec::new();
    for t in 0..3 {
        let agent_ep = agent_ep.clone();
        tellers.push(std::thread::spawn(move || -> NetResult<i64> {
            let space = Space::builder()
                .transport(Arc::new(Tcp))
                .listen(Endpoint::tcp("127.0.0.1:0"))
                .build()?;
            let agent = netobj_agent::connect(&space, &agent_ep)?;
            let bank = BankClient::narrow(
                agent
                    .get("bank".into())?
                    .ok_or_else(|| Error::app("bank not registered"))?,
            )?;
            // Every teller works on the same two accounts.
            let alice = bank.open_account("alice".into())?;
            let bob = bank.open_account("bob".into())?;
            for i in 0..50 {
                alice.deposit(10)?;
                if i % 5 == 4 {
                    // Move money: withdraw from alice, deposit to bob.
                    alice.withdraw(30)?;
                    bob.deposit(30)?;
                }
            }
            println!(
                "teller {t}: alice={}, bob={} (interim)",
                alice.balance()?,
                bob.balance()?
            );
            bank.total_assets()
        }));
    }
    for t in tellers {
        t.join().expect("teller thread")?;
    }

    // --- Settlement. ---
    let verifier = Space::builder()
        .transport(Arc::new(Tcp))
        .listen(Endpoint::tcp("127.0.0.1:0"))
        .build()?;
    let agent = netobj_agent::connect(&verifier, &agent_ep)?;
    let bank = BankClient::narrow(agent.get("bank".into())?.expect("bank bound"))?;
    let alice = bank.lookup("alice".into())?.expect("alice exists");
    let bob = bank.lookup("bob".into())?.expect("bob exists");
    println!("final: alice={}, bob={}", alice.balance()?, bob.balance()?);
    println!("total assets: {}", bank.total_assets()?);
    assert_eq!(
        bank.total_assets()?,
        3 * 50 * 10,
        "money is conserved across concurrent tellers"
    );

    // An application error crosses the wire as a typed error.
    match alice.withdraw(1_000_000) {
        Err(Error::App(msg)) => println!("expected failure: {msg}"),
        other => panic!("unexpected: {other:?}"),
    }
    println!("ok");
    Ok(())
}
