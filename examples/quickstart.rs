//! Quickstart: export a network object, bind to it from another space,
//! invoke it remotely.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Two spaces run in this one OS process, talking through the in-process
//! loopback transport; everything works identically over TCP (see the
//! `bank` example) or the fault-injecting simulated network.

use std::sync::Arc;

use netobj::transport::loopback::Loopback;
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, NetResult, Space};

network_object! {
    /// A greeting service.
    pub interface Greeter ("quickstart.Greeter"):
        client GreeterClient, export GreeterExport
    {
        0 => fn greet(&self, name: String) -> String;
        1 => fn greetings_served(&self) -> u64;
    }
}

struct GreeterImpl(std::sync::atomic::AtomicU64);

impl Greeter for GreeterImpl {
    fn greet(&self, name: String) -> NetResult<String> {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(format!("Hello, {name}! (from the owner space)"))
    }
    fn greetings_served(&self) -> NetResult<u64> {
        Ok(self.0.load(std::sync::atomic::Ordering::Relaxed))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One transport namespace shared by both spaces.
    let net = Loopback::new();

    // --- The owner space: allocates and exports the concrete object. ---
    let owner = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::loopback("owner"))
        .build()?;
    owner.export(Arc::new(GreeterExport(Arc::new(GreeterImpl(
        std::sync::atomic::AtomicU64::new(0),
    )))))?;
    println!(
        "owner space {} listening at {}",
        owner.id().short(),
        owner.endpoint().unwrap()
    );

    // --- A client space: binds and invokes through a surrogate. ---
    let client = Space::builder().transport(Arc::new(net)).build()?;
    let handle = client.import_root(&Endpoint::loopback("owner"), ObjIx::FIRST_USER)?;
    let greeter = GreeterClient::narrow(handle)?;

    println!("client space {} bound a surrogate", client.id().short());
    println!("  -> {}", greeter.greet("world".into())?);
    println!("  -> {}", greeter.greet("Network Objects".into())?);
    println!("  -> greetings served: {}", greeter.greetings_served()?);

    // The collector at work: binding performed exactly one dirty call.
    let stats = client.stats();
    println!(
        "collector: {} dirty call(s), {} surrogate(s) created",
        stats.dirty_sent, stats.surrogates_created
    );

    // Dropping the surrogate triggers a clean call in the background.
    drop(greeter);
    for _ in 0..100 {
        if client.stats().clean_sent > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    println!(
        "collector: {} clean call(s) after dropping the last handle",
        client.stats().clean_sent
    );
    Ok(())
}
