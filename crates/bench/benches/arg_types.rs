//! Experiment T2 — invocation latency by argument type.
//!
//! One row per argument shape of the paper's marshaling table, including
//! the two network-object rows: first transmission (dirty-call round
//! trip) vs. subsequent (object-table hit).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use netobj::wire::pickle::Blob;
use netobj_bench::{new_counter, BenchSvc, CounterClient, Rig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("T2_arg_types");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));

    let rig = Rig::new(Duration::ZERO);
    let svc = &rig.svc;

    g.bench_function("empty", |b| b.iter(|| svc.null().unwrap()));
    g.bench_function("ten_ints", |b| {
        b.iter(|| svc.ten_ints(1, 2, 3, 4, 5, 6, 7, 8, 9, 10).unwrap())
    });
    let text: String = "x".repeat(64);
    g.bench_function("text_64B", |b| b.iter(|| svc.text(text.clone()).unwrap()));
    for size in [1usize << 10, 10 << 10, 100 << 10] {
        let blob = Blob(vec![7u8; size]);
        g.bench_function(format!("bytes_{}K", size >> 10), |b| {
            b.iter(|| svc.blob(blob.clone()).unwrap())
        });
    }
    g.bench_function("record", |b| {
        b.iter(|| svc.record((1, 2.0, "abc".into(), true)).unwrap())
    });

    // Network object argument, cached: the same reference every time, so
    // only the first iteration pays the dirty call.
    let cached = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
    svc.take_ref(cached.clone()).unwrap();
    g.bench_function("netobj_ref_cached", |b| {
        b.iter(|| svc.keep_ref(cached.clone()).unwrap())
    });

    // Network object argument, first transmission: a fresh object each
    // call, so every iteration pays surrogate creation + dirty call.
    g.bench_function("netobj_ref_first", |b| {
        b.iter(|| {
            let fresh = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
            svc.take_ref(fresh).unwrap();
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
