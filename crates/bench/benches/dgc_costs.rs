//! Experiment T4 — collector operation costs.
//!
//! The price of the distributed collector's primitives: marshaling a
//! reference the first time (dirty-call round trip) vs. cached, the full
//! import/drop cycle (dirty + clean), and the owner-side table
//! operations.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use netobj_bench::{new_counter, BenchSvc, CounterClient, Rig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("T4_dgc_costs");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));

    let rig = Rig::new(Duration::ZERO);

    // Full first-transmission cost: export + transient pin + dirty RTT +
    // surrogate creation at the server.
    g.bench_function("ref_first_transmission", |b| {
        b.iter(|| {
            let fresh = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
            rig.svc.take_ref(fresh).unwrap();
        })
    });

    // Cached transmission: table hit on both sides.
    let cached = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
    rig.svc.keep_ref(cached.clone()).unwrap();
    g.bench_function("ref_cached_transmission", |b| {
        b.iter(|| rig.svc.keep_ref(cached.clone()).unwrap())
    });

    // Import + drop cycle measured from the receiving side: get a fresh
    // remote ref each iteration and drop it (clean call happens in the
    // background demon; we measure the foreground cost).
    g.bench_function("import_remote_ref", |b| {
        b.iter(|| {
            let r = rig.svc.get_ref().unwrap();
            drop(r);
        })
    });

    // Owner-side table operation costs, via the exported counters of the
    // local space (pure data-structure costs, no network).
    g.bench_function("export_table_churn", |b| {
        b.iter(|| {
            let h = rig.server.local(new_counter());
            // Exporting pins nothing: entry appears on marshal only; the
            // local() call itself measures handle creation.
            criterion::black_box(&h);
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
