//! Experiment F1 — throughput vs. payload size.
//!
//! Sweeps bulk-data calls from 16 B to 1 MiB; Criterion's throughput mode
//! reports bytes/second. Expected shape: per-call overhead dominates
//! small payloads; throughput rises with size and plateaus at the
//! marshal/copy bandwidth.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netobj::wire::pickle::Blob;
use netobj_bench::{BenchSvc, Rig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("F1_payload_sweep");
    g.sample_size(15);
    g.measurement_time(Duration::from_secs(3));

    let rig = Rig::new(Duration::ZERO);
    for size in [16usize, 256, 4 << 10, 64 << 10, 1 << 20] {
        let blob = Blob(vec![0x5a; size]);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("send", size), &blob, |b, blob| {
            b.iter(|| rig.svc.blob(blob.clone()).unwrap())
        });
    }
    for size in [16usize, 4 << 10, 1 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("receive", size), &size, |b, &size| {
            b.iter(|| rig.svc.get_blob(size as u64).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
