//! Experiment T3 — pickle micro-costs by type.
//!
//! Encode and decode costs for each wire type, isolating the marshaling
//! component of the invocation-latency tables.

use criterion::{criterion_group, criterion_main, Criterion};
use netobj_wire::pickle::{Blob, Pickle, Value};
use netobj_wire::{ObjIx, SpaceId, WireRep};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("T3_pickle_micro");

    g.bench_function("encode_i64", |b| {
        b.iter(|| criterion::black_box(-123456789i64).to_pickle_bytes())
    });
    let int_bytes = (-123456789i64).to_pickle_bytes();
    g.bench_function("decode_i64", |b| {
        b.iter(|| i64::from_pickle_bytes(&int_bytes).unwrap())
    });

    let text = "the quick brown fox jumps over the lazy dog".to_string();
    g.bench_function("encode_text_44B", |b| b.iter(|| text.to_pickle_bytes()));
    let text_bytes = text.to_pickle_bytes();
    g.bench_function("decode_text_44B", |b| {
        b.iter(|| String::from_pickle_bytes(&text_bytes).unwrap())
    });

    let blob = Blob(vec![9u8; 4096]);
    g.bench_function("encode_bytes_4K", |b| b.iter(|| blob.to_pickle_bytes()));
    let blob_bytes = blob.to_pickle_bytes();
    g.bench_function("decode_bytes_4K", |b| {
        b.iter(|| Blob::from_pickle_bytes(&blob_bytes).unwrap())
    });

    let ints: Vec<i64> = (0..256).collect();
    g.bench_function("encode_vec256_i64", |b| b.iter(|| ints.to_pickle_bytes()));
    let ints_bytes = ints.to_pickle_bytes();
    g.bench_function("decode_vec256_i64", |b| {
        b.iter(|| Vec::<i64>::from_pickle_bytes(&ints_bytes).unwrap())
    });

    let wr = WireRep::new(SpaceId::from_raw(0xfeed_beef), ObjIx(42));
    g.bench_function("encode_wirerep", |b| b.iter(|| wr.to_pickle_bytes()));
    let wr_bytes = wr.to_pickle_bytes();
    g.bench_function("decode_wirerep", |b| {
        b.iter(|| WireRep::from_pickle_bytes(&wr_bytes).unwrap())
    });

    // Dynamic (schema-less) decode, the reference-scanner path.
    let dynamic = Value::Record(vec![
        Value::Int(1),
        Value::Text("abc".into()),
        Value::Ref(wr),
        Value::Seq(vec![Value::Float(1.5); 8]),
    ]);
    let dyn_bytes = dynamic.to_pickle_bytes();
    g.bench_function("decode_dynamic_value", |b| {
        b.iter(|| Value::from_pickle_bytes(&dyn_bytes).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
