//! Experiment T5 — control-message counts across collector algorithms.
//!
//! Not a timing benchmark in the usual sense: the quantity of interest is
//! messages per workload, computed exactly by the model crate. Criterion
//! times the computation (trivially fast) so the numbers appear in the
//! bench run; the `report` binary prints the actual comparison table.

use criterion::{criterion_group, criterion_main, Criterion};
use netobj_dgc_model::baselines::{birrell, irc, lermen_maurer, wrc, Workload};
use netobj_dgc_model::variants::{run as run_variant, OwnerOpts, Workload as VWorkload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("T5_algo_messages");

    g.bench_function("count_all_algorithms_fanout16", |b| {
        b.iter(|| {
            let w = Workload::Fanout(16);
            criterion::black_box((
                birrell::cost(w),
                lermen_maurer::cost(w),
                wrc::cost(w),
                irc::cost(w),
            ))
        })
    });

    g.bench_function("fifo_machine_fanout16", |b| {
        b.iter(|| run_variant(VWorkload::OwnerFanout(16), OwnerOpts::default()))
    });

    g.finish();

    // Print the comparison table into the bench log (shape check).
    println!("\nT5 control messages (fan-out 16 / chain 16 / 16x repeated):");
    for w in [
        Workload::Fanout(16),
        Workload::Chain(16),
        Workload::Repeated(16),
    ] {
        println!(
            "  {:<22} birrell={:<4} lermen-maurer={:<4} wrc={:<4} irc={:<4} (zombies: irc={}, wrc={})",
            w.label(),
            birrell::cost(w).control_msgs,
            lermen_maurer::cost(w).control_msgs,
            wrc::cost(w).control_msgs,
            irc::cost(w).control_msgs,
            irc::cost(w).zombies,
            wrc::cost(w).zombies,
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
