//! Experiment F4 — the FIFO-channel variant vs. the base algorithm.
//!
//! Measures the client-visible cost of a call that transmits a *fresh*
//! reference, under link latency, with and without the §5.1 variant. In
//! the base algorithm the server's unmarshal blocks for a dirty round
//! trip before the method runs; in the FIFO variant the registration
//! overlaps the method, so the call completes roughly one RTT sooner.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netobj::Options;
use netobj_bench::{new_counter, BenchSvc, CounterClient, Rig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("F4_fifo_variant");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));

    let latency = Duration::from_millis(2);
    for fifo in [false, true] {
        let mut options = Options::fast();
        options.fifo_variant = fifo;
        let rig = Rig::with_options(latency, options);
        let label = if fifo { "fifo_variant" } else { "base" };
        // The method body takes ~one dirty round trip of work: the base
        // algorithm pays registration *then* work (serial); the variant
        // overlaps them.
        let work_us = 2 * latency.as_micros() as u64;
        g.bench_with_input(BenchmarkId::new("fresh_ref_call", label), &rig, |b, rig| {
            b.iter(|| {
                let fresh = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
                rig.svc.take_ref_work(fresh, work_us).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
