//! Experiment F2 — server throughput vs. concurrent clients.
//!
//! Measures aggregate completed calls with 1..16 client threads hammering
//! one server. Expected shape: throughput scales with clients until the
//! worker pool saturates, then flattens.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netobj_bench::{BenchSvc, Rig};

fn total_calls(rig: &Rig, clients: usize, per_client: usize) -> Duration {
    let t0 = Instant::now();
    let mut joins = Vec::new();
    for _ in 0..clients {
        let svc = rig.svc.clone();
        joins.push(std::thread::spawn(move || {
            for _ in 0..per_client {
                svc.null().unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    t0.elapsed()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("F2_concurrency");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));

    let rig = Arc::new(Rig::new(Duration::ZERO));
    for clients in [1usize, 2, 4, 8, 16] {
        let per_client = 200;
        g.throughput(Throughput::Elements((clients * per_client) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &clients,
            |b, &clients| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += total_calls(&rig, clients, per_client);
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
