//! Experiment T1 — null invocation latency.
//!
//! Rows: direct local call (no runtime), local dispatch through the
//! object layer, remote over an instantaneous link, remote over a 1 ms
//! link, and raw RPC without the object layer. Expected shape: remote ≫
//! local; the object layer adds modest overhead over raw RPC; link
//! latency dominates everything once present.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use netobj_bench::{new_counter, BenchSvc, Counter, CounterClient, RawRig, Rig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1_null_call");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));

    // Direct method call on the implementation: the "local object" row.
    let direct = new_counter();
    g.bench_function("direct_local", |b| {
        b.iter(|| {
            Counter::add(&*direct.0, 1).unwrap();
        })
    });

    // Local handle through the uniform dispatch path.
    let rig = Rig::new(Duration::ZERO);
    let local = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
    g.bench_function("local_dispatch", |b| b.iter(|| local.add(1).unwrap()));

    // Remote, zero-latency link: pure protocol cost.
    g.bench_function("remote_instant", |b| b.iter(|| rig.svc.null().unwrap()));

    // Raw RPC (no object layer) on the same kind of link.
    let raw = RawRig::new(Duration::ZERO);
    g.bench_function("raw_rpc_instant", |b| b.iter(|| raw.call(Vec::new())));

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
