//! Adversarial fuzz driver for the untrusted decode path.
//!
//! Runs `--iters` deterministic cases (default 100 000) from `--seed`
//! (default 1) over the committed corpus, catching panics per case. On a
//! crash, the exact input bytes are written next to the working directory
//! as `fuzz-crash-<seed>-<iter>.bin` (CI uploads them as artifacts) and
//! the process exits nonzero with a reproduction command.
//!
//! ```text
//! cargo run --release -p netobj-bench --bin fuzz_wire -- --iters 200000 --seed 7
//! ```

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use netobj_bench::fuzz::{self, FuzzReport, FuzzRng};

struct Args {
    seed: u64,
    iters: u64,
    corpus_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        iters: 100_000,
        corpus_dir: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = value("--seed").parse().expect("--seed: u64"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters: u64"),
            "--corpus" => args.corpus_dir = PathBuf::from(value("--corpus")),
            other => {
                eprintln!("usage: fuzz_wire [--iters N] [--seed N] [--corpus DIR]");
                panic!("unknown flag {other}");
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut corpus = fuzz::load_corpus(&args.corpus_dir);
    if corpus.is_empty() {
        eprintln!(
            "note: no corpus at {}; using built-in seeds",
            args.corpus_dir.display()
        );
        corpus = fuzz::builtin_corpus()
            .into_iter()
            .map(|(n, b)| (n.to_string(), b))
            .collect();
    }
    println!(
        "fuzz_wire: seed={} iters={} corpus={} entries",
        args.seed,
        args.iters,
        corpus.len()
    );

    // Keep the default hook quiet per-case; we print our own report.
    let default_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let mut rng = FuzzRng::new(args.seed);
    let mut report = FuzzReport::default();
    let t0 = Instant::now();
    for i in 0..args.iters {
        let stream = fuzz::build_case(&mut rng, &corpus);
        let chunk_seed = rng.next_u64();
        let result =
            panic::catch_unwind(AssertUnwindSafe(|| fuzz::execute_case(&stream, chunk_seed)));
        match result {
            Ok(r) => {
                report.cases += r.cases;
                report.frames += r.frames;
                report.msgs += r.msgs;
                report.values += r.values;
            }
            Err(payload) => {
                panic::set_hook(default_hook);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                let crash = PathBuf::from(format!("fuzz-crash-{}-{i}.bin", args.seed));
                std::fs::write(&crash, &stream).expect("write crash artifact");
                eprintln!("CRASH at iteration {i} (seed {}): {msg}", args.seed);
                eprintln!(
                    "input ({} bytes) saved to {}",
                    stream.len(),
                    crash.display()
                );
                eprintln!(
                    "reproduce: cargo run --release -p netobj-bench --bin fuzz_wire -- \
                     --seed {} --iters {}",
                    args.seed,
                    i + 1
                );
                std::process::exit(1);
            }
        }
        if (i + 1) % 100_000 == 0 {
            println!(
                "  {:>9} cases  {:>9} frames  {:>9} msgs  {:>9} values  ({:.1}s)",
                report.cases,
                report.frames,
                report.msgs,
                report.values,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    panic::set_hook(default_hook);

    let dt = t0.elapsed();
    println!(
        "ok: {} cases in {:.2}s ({:.0} cases/s) — {} frames, {} msgs, {} values, 0 crashes",
        report.cases,
        dt.as_secs_f64(),
        report.cases as f64 / dt.as_secs_f64(),
        report.frames,
        report.msgs,
        report.values
    );
}
