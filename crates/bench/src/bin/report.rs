//! The evaluation harness: regenerates every table and figure.
//!
//! Run with `cargo run --release -p netobj-bench --bin report` (optionally
//! passing experiment ids, e.g. `report T1 F3`). Each section prints the
//! rows/series of one experiment from EXPERIMENTS.md; absolute numbers
//! depend on the machine, but the *shapes* are asserted in the
//! integration tests and discussed in EXPERIMENTS.md.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj::wire::pickle::{Blob, Pickle};
use netobj::wire::ObjIx;
use netobj::{Introspect, Options, Space};
use netobj_bench::{
    fmt_dur, fmt_rate, new_counter, print_table, time_per_call, BenchSvc, Counter, CounterClient,
    RawRig, Rig,
};
use netobj_dgc_model::baselines::{birrell, irc, lermen_maurer, naive, wrc, Workload};
use netobj_dgc_model::explore::{assert_drained, random_walk, WalkPolicy};
use netobj_dgc_model::variants::{run as run_variant, OwnerOpts, Workload as VWorkload};
use netobj_transport::sim::SimNet;
use netobj_transport::tcp::Tcp;
use netobj_transport::Endpoint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("netobj-top") {
        netobj_top(&args[1..]);
        return;
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("# Network Objects — evaluation report");
    println!("# (one section per table/figure; see EXPERIMENTS.md)");

    if want("T1") {
        t1_null_call();
    }
    if want("T2") {
        t2_arg_types();
    }
    if want("F1") {
        f1_payload_sweep();
    }
    if want("T3") {
        t3_pickle_micro();
    }
    if want("T4") {
        t4_dgc_costs();
    }
    if want("F2") {
        f2_concurrency();
    }
    if want("F3") {
        f3_naive_race();
    }
    if want("T5") {
        t5_algo_comparison();
    }
    if want("F4") {
        f4_fifo_variant();
    }
    if want("T6") {
        t6_owner_optimisations();
    }
    if want("F5") {
        f5_fault_tolerance();
    }
    if want("F6") {
        f6_liveness();
    }
    if want("F7") {
        f7_fault_model();
    }
    if want("T7") {
        t7_batching();
    }
    if want("C3") {
        c3_rpc_latency();
    }
    println!("\n# report complete");
}

// ---------------------------------------------------------------------------
// netobj-top: live introspection of a running netobjd (or any listening
// space) through its built-in Introspect object.

fn netobj_top(args: &[String]) {
    let mut addr = "127.0.0.1:7777".to_owned();
    let mut interval = Duration::from_secs(2);
    let mut once = false;
    let mut metrics = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => interval = Duration::from_millis(ms),
                None => netobj_top_usage(),
            },
            "--once" => once = true,
            "--metrics" => metrics = true,
            "--help" | "-h" => netobj_top_usage(),
            other if !other.starts_with('-') => addr = other.to_owned(),
            other => {
                eprintln!("netobj-top: unknown argument: {other}");
                netobj_top_usage();
            }
        }
    }

    let space = match Space::builder().transport(Arc::new(Tcp)).build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("netobj-top: cannot create observer space: {e}");
            std::process::exit(1);
        }
    };
    let intro = match netobj::introspect::connect(&space, &Endpoint::tcp(addr.clone())) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("netobj-top: cannot reach {addr}: {e}");
            std::process::exit(1);
        }
    };

    if metrics {
        // Raw Prometheus text, scraped over the ordinary RPC path — what
        // the CI smoke job greps and what an actual scraper would ingest.
        loop {
            match intro.metrics_text() {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("netobj-top: lost peer {addr}: {e}");
                    std::process::exit(1);
                }
            }
            if once {
                return;
            }
            std::thread::sleep(interval);
        }
    }

    let mut prev: Option<(BTreeMap<String, u64>, Instant)> = None;
    loop {
        let named = match intro.stats() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("netobj-top: lost peer {addr}: {e}");
                std::process::exit(1);
            }
        };
        let now = Instant::now();
        let mut rows = Vec::new();
        for (name, v) in &named {
            let rate = prev
                .as_ref()
                .map(|(p, t)| {
                    let d = v.saturating_sub(p.get(name).copied().unwrap_or(0));
                    format!("{:.1}/s", d as f64 / now.duration_since(*t).as_secs_f64())
                })
                .unwrap_or_else(|| "-".into());
            if *v != 0 || name == "calls_served" || name == "calls_sent" {
                rows.push(vec![name.clone(), v.to_string(), rate]);
            }
        }
        print_table(
            &format!("netobj-top — {addr}"),
            &["counter", "value", "rate"],
            &rows,
        );

        // Live-structure gauges — queue depth, reactor connections and
        // coalescing counters, per-client quotas — parsed out of the same
        // Prometheus text the --metrics mode dumps raw.
        if let Ok(text) = intro.metrics_text() {
            let rows = gauge_rows(&text);
            if !rows.is_empty() {
                print_table("gauges", &["gauge", "value"], &rows);
            }
        }

        match intro.spans(8) {
            Ok(spans) if !spans.is_empty() => {
                let rows: Vec<Vec<String>> = spans
                    .iter()
                    .map(|s| {
                        vec![
                            format!("{:016x}", s.trace_id),
                            format!("{:?}", s.kind).to_lowercase(),
                            if s.label.is_empty() {
                                format!("m{}", s.method)
                            } else {
                                s.label.clone()
                            },
                            fmt_dur(Duration::from_micros(s.duration_micros)),
                            fmt_dur(Duration::from_micros(s.queue_wait_micros)),
                            s.outcome.as_str().into(),
                        ]
                    })
                    .collect();
                print_table(
                    "recent spans",
                    &["trace", "kind", "method", "total", "queue", "outcome"],
                    &rows,
                );
            }
            _ => {}
        }

        prev = Some((named.into_iter().collect(), now));
        if once {
            break;
        }
        std::thread::sleep(interval);
    }
}

/// Extracts every `gauge`-typed sample (label sets included) from a
/// Prometheus text exposition, preserving emission order.
fn gauge_rows(text: &str) -> Vec<Vec<String>> {
    let mut gauge_families = std::collections::BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, "gauge")) = rest.rsplit_once(' ') {
                gauge_families.insert(name.to_owned());
            }
        }
    }
    let mut rows = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            let family = name.split('{').next().unwrap_or(name);
            if gauge_families.contains(family) {
                rows.push(vec![name.to_owned(), value.to_owned()]);
            }
        }
    }
    rows
}

fn netobj_top_usage() -> ! {
    eprintln!("usage: report netobj-top [HOST:PORT] [--interval MILLIS] [--once] [--metrics]");
    eprintln!();
    eprintln!("  polls the Introspect object of a running netobjd (default");
    eprintln!("  127.0.0.1:7777) and prints its counters and recent call spans;");
    eprintln!("  with --metrics, dumps the raw Prometheus exposition text instead");
    std::process::exit(2);
}

// ---------------------------------------------------------------------------

fn t1_null_call() {
    let n = 2_000;
    let mut rows = Vec::new();

    let direct = new_counter();
    let d = time_per_call(n * 50, || {
        Counter::add(&*direct.0, 1).unwrap();
    });
    rows.push(vec!["direct local call (no runtime)".into(), fmt_dur(d)]);

    let rig = Rig::new(Duration::ZERO);
    let local = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
    let d = time_per_call(n, || {
        local.add(1).unwrap();
    });
    rows.push(vec!["local handle via dispatch".into(), fmt_dur(d)]);

    let raw = RawRig::new(Duration::ZERO);
    let d = time_per_call(n, || {
        raw.call(Vec::new());
    });
    rows.push(vec!["raw RPC (no object layer)".into(), fmt_dur(d)]);

    let d = time_per_call(n, || rig.svc.null().unwrap());
    rows.push(vec!["remote network object, 0 ms link".into(), fmt_dur(d)]);

    let rig_lat = Rig::new(Duration::from_millis(1));
    let d = time_per_call(200, || rig_lat.svc.null().unwrap());
    rows.push(vec!["remote network object, 1 ms link".into(), fmt_dur(d)]);

    print_table(
        "T1 — null invocation latency",
        &["configuration", "per call"],
        &rows,
    );
}

fn t2_arg_types() {
    let rig = Rig::new(Duration::ZERO);
    let svc = &rig.svc;
    let n = 1_000;
    let mut rows = Vec::new();

    rows.push(vec![
        "no arguments".into(),
        fmt_dur(time_per_call(n, || svc.null().unwrap())),
    ]);
    rows.push(vec![
        "10 integers".into(),
        fmt_dur(time_per_call(n, || {
            svc.ten_ints(1, 2, 3, 4, 5, 6, 7, 8, 9, 10).unwrap()
        })),
    ]);
    let text = "x".repeat(64);
    rows.push(vec![
        "text (64 B)".into(),
        fmt_dur(time_per_call(n, || svc.text(text.clone()).unwrap())),
    ]);
    for (label, size) in [
        ("1 KiB", 1usize << 10),
        ("10 KiB", 10 << 10),
        ("100 KiB", 100 << 10),
    ] {
        let blob = Blob(vec![7u8; size]);
        rows.push(vec![
            format!("bytes ({label})"),
            fmt_dur(time_per_call(300, || {
                svc.blob(blob.clone()).unwrap();
            })),
        ]);
    }
    rows.push(vec![
        "small record".into(),
        fmt_dur(time_per_call(n, || {
            svc.record((1, 2.0, "abc".into(), true)).unwrap()
        })),
    ]);
    let cached = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
    svc.keep_ref(cached.clone()).unwrap();
    rows.push(vec![
        "network object ref (cached)".into(),
        fmt_dur(time_per_call(n, || svc.keep_ref(cached.clone()).unwrap())),
    ]);
    rows.push(vec![
        "network object ref (first time)".into(),
        fmt_dur(time_per_call(300, || {
            let fresh = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
            svc.take_ref(fresh).unwrap();
        })),
    ]);

    print_table(
        "T2 — invocation latency by argument type (0 ms link)",
        &["arguments", "per call"],
        &rows,
    );
}

fn f1_payload_sweep() {
    let rig = Rig::new(Duration::ZERO);
    let mut rows = Vec::new();
    for size in [16usize, 256, 4 << 10, 64 << 10, 256 << 10, 1 << 20] {
        let blob = Blob(vec![0x5a; size]);
        let iters = if size >= 64 << 10 { 50 } else { 400 };
        let d = time_per_call(iters, || {
            rig.svc.blob(blob.clone()).unwrap();
        });
        rows.push(vec![
            format!("{size} B"),
            fmt_dur(d),
            fmt_rate(size as u64, d),
        ]);
    }
    print_table(
        "F1 — throughput vs payload size (send direction)",
        &["payload", "per call", "throughput"],
        &rows,
    );
}

fn t3_pickle_micro() {
    let mut rows = Vec::new();
    let n = 200_000;

    let v = -123456789i64;
    rows.push(vec![
        "i64".into(),
        fmt_dur(time_per_call(n, || {
            std::hint::black_box(v.to_pickle_bytes());
        })),
        {
            let bytes = v.to_pickle_bytes();
            fmt_dur(time_per_call(n, || {
                std::hint::black_box(i64::from_pickle_bytes(&bytes).unwrap());
            }))
        },
    ]);
    let text = "the quick brown fox jumps over the lazy dog".to_string();
    rows.push(vec![
        "text (44 B)".into(),
        fmt_dur(time_per_call(n, || {
            std::hint::black_box(text.to_pickle_bytes());
        })),
        {
            let bytes = text.to_pickle_bytes();
            fmt_dur(time_per_call(n, || {
                std::hint::black_box(String::from_pickle_bytes(&bytes).unwrap());
            }))
        },
    ]);
    let blob = Blob(vec![9u8; 4096]);
    rows.push(vec![
        "bytes (4 KiB)".into(),
        fmt_dur(time_per_call(50_000, || {
            std::hint::black_box(blob.to_pickle_bytes());
        })),
        {
            let bytes = blob.to_pickle_bytes();
            fmt_dur(time_per_call(50_000, || {
                std::hint::black_box(Blob::from_pickle_bytes(&bytes).unwrap());
            }))
        },
    ]);
    let ints: Vec<i64> = (0..256).collect();
    rows.push(vec![
        "vec of 256 i64".into(),
        fmt_dur(time_per_call(50_000, || {
            std::hint::black_box(ints.to_pickle_bytes());
        })),
        {
            let bytes = ints.to_pickle_bytes();
            fmt_dur(time_per_call(50_000, || {
                std::hint::black_box(Vec::<i64>::from_pickle_bytes(&bytes).unwrap());
            }))
        },
    ]);
    let wr = netobj::wire::WireRep::new(netobj::wire::SpaceId::from_raw(7), ObjIx(42));
    rows.push(vec![
        "wireRep".into(),
        fmt_dur(time_per_call(n, || {
            std::hint::black_box(wr.to_pickle_bytes());
        })),
        {
            let bytes = wr.to_pickle_bytes();
            fmt_dur(time_per_call(n, || {
                std::hint::black_box(netobj::wire::WireRep::from_pickle_bytes(&bytes).unwrap());
            }))
        },
    ]);

    print_table(
        "T3 — pickle micro-costs",
        &["type", "encode", "decode"],
        &rows,
    );
}

fn t4_dgc_costs() {
    let rig = Rig::new(Duration::ZERO);
    let mut rows = Vec::new();

    rows.push(vec![
        "ref transmission, first (dirty RTT)".into(),
        fmt_dur(time_per_call(300, || {
            let fresh = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
            rig.svc.take_ref(fresh).unwrap();
        })),
    ]);
    let cached = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
    rig.svc.keep_ref(cached.clone()).unwrap();
    rows.push(vec![
        "ref transmission, cached".into(),
        fmt_dur(time_per_call(1_000, || {
            rig.svc.keep_ref(cached.clone()).unwrap()
        })),
    ]);
    rows.push(vec![
        "import remote ref + drop".into(),
        fmt_dur(time_per_call(1_000, || {
            drop(rig.svc.get_ref().unwrap());
        })),
    ]);

    // Collector stats over a known workload: messages per first-time ref.
    let before = rig.client.stats();
    for _ in 0..100 {
        let fresh = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
        rig.svc.take_ref(fresh).unwrap();
    }
    let after = rig.client.stats();
    rows.push(vec![
        "dirty calls per 100 fresh refs (recv side)".into(),
        format!("{}", after.dirty_received - before.dirty_received),
    ]);

    print_table(
        "T4 — collector operation costs (0 ms link)",
        &["operation", "cost"],
        &rows,
    );
}

fn f2_concurrency() {
    let rig = Rig::new(Duration::ZERO);
    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8, 16] {
        let per_client = 500;
        let t0 = Instant::now();
        let mut joins = Vec::new();
        for _ in 0..clients {
            let svc = rig.svc.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..per_client {
                    svc.null().unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let elapsed = t0.elapsed();
        let total = (clients * per_client) as f64;
        rows.push(vec![
            format!("{clients}"),
            fmt_dur(elapsed.div_f64(total)),
            format!("{:.0} calls/s", total / elapsed.as_secs_f64()),
        ]);
    }
    print_table(
        "F2 — throughput vs concurrent clients (4 workers)",
        &["clients", "per call", "aggregate"],
        &rows,
    );
}

fn f3_naive_race() {
    let mut rows = Vec::new();
    for jitter in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let p = naive::race_probability(200_000, jitter, 42);
        let p_chain = naive::race_probability_chain(200_000, jitter, 3, 42);
        rows.push(vec![
            format!("{jitter:.2}"),
            format!("{:.3}%", p * 100.0),
            format!("{:.3}%", p_chain * 100.0),
        ]);
    }
    print_table(
        "F3 — naive counting: premature-reclamation probability vs jitter",
        &["jitter/latency ratio", "triangle race", "3-hop chain race"],
        &rows,
    );

    // The same adversarial schedules against Birrell's algorithm: the
    // model checks safety at every step of random walks.
    let mut walks = 0u64;
    let mut steps = 0u64;
    for seed in 0..200 {
        let (c, s) = random_walk(
            WalkPolicy {
                nprocs: 3,
                nrefs: 1,
                activity: 80,
                ..WalkPolicy::default()
            },
            seed,
        );
        assert_drained(&c);
        walks += 1;
        steps += s.steps;
    }
    println!(
        "  Birrell (reference listing): {walks} adversarial random walks, \
         {steps} transitions, 0 safety violations (every invariant checked \
         at every step)."
    );
}

fn t5_algo_comparison() {
    let mut rows = Vec::new();
    for w in [
        Workload::Fanout(16),
        Workload::Chain(16),
        Workload::Repeated(16),
    ] {
        let b = birrell::cost(w);
        let lm = lermen_maurer::cost(w);
        let wr = wrc::cost(w);
        let ir = irc::cost(w);
        rows.push(vec![
            w.label(),
            format!("{} (blk {})", b.control_msgs, b.blocking_rtts),
            format!("{}", lm.control_msgs),
            format!("{} (z {})", wr.control_msgs, wr.zombies),
            format!("{} (z {})", ir.control_msgs, ir.zombies),
        ]);
    }
    // The long-chain row where WRC underflows and IRC piles up zombies.
    let w = Workload::Chain(48);
    rows.push(vec![
        w.label(),
        format!("{}", birrell::cost(w).control_msgs),
        format!("{}", lermen_maurer::cost(w).control_msgs),
        format!("{} (z {})", wrc::cost(w).control_msgs, wrc::cost(w).zombies),
        format!("{} (z {})", irc::cost(w).control_msgs, irc::cost(w).zombies),
    ]);
    print_table(
        "T5 — control messages per workload (blk = blocking RTTs, z = zombies)",
        &[
            "workload",
            "birrell",
            "lermen-maurer",
            "weighted",
            "indirect",
        ],
        &rows,
    );
}

fn f4_fifo_variant() {
    let latency = Duration::from_millis(2);
    let work_us = 2 * latency.as_micros() as u64;
    let mut rows = Vec::new();
    for fifo in [false, true] {
        let mut options = Options::fast();
        options.fifo_variant = fifo;
        let rig = Rig::with_options(latency, options);
        let d = time_per_call(50, || {
            let fresh = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
            rig.svc.take_ref_work(fresh, work_us).unwrap();
        });
        let blocked = rig.server.stats().blocked();
        rows.push(vec![
            if fifo {
                "FIFO variant (§5.1)"
            } else {
                "base algorithm"
            }
            .into(),
            fmt_dur(d),
            fmt_dur(blocked),
        ]);
    }
    print_table(
        "F4 — fresh-ref call with 2 ms links and 4 ms method work",
        &["algorithm", "per call", "server unmarshal blocked (total)"],
        &rows,
    );
}

fn t6_owner_optimisations() {
    let mut rows = Vec::new();
    for (label, opts) in [
        ("triangular (none)", OwnerOpts::default()),
        (
            "sender-is-owner opt",
            OwnerOpts {
                send: true,
                recv: false,
            },
        ),
        (
            "receiver-is-owner opt",
            OwnerOpts {
                send: false,
                recv: true,
            },
        ),
        (
            "both",
            OwnerOpts {
                send: true,
                recv: true,
            },
        ),
    ] {
        let fanout = run_variant(VWorkload::OwnerFanout(8), opts);
        let chain = run_variant(VWorkload::Chain(8), opts);
        let back = run_variant(VWorkload::ReturnToOwner(8), opts);
        rows.push(vec![
            label.into(),
            format!("{}", fanout.control()),
            format!("{}", chain.control()),
            format!("{}", back.control()),
        ]);
    }
    print_table(
        "T6 — owner optimisations: control messages (8-wide workloads)",
        &["variant", "owner fan-out", "chain", "back-to-owner"],
        &rows,
    );
}

fn f5_fault_tolerance() {
    let mut rows = Vec::new();
    for lease_ms in [200u64, 400, 800] {
        let net = SimNet::instant();
        let mut opts = Options::fast();
        opts.lease = Some(Duration::from_millis(lease_ms));
        let owner = Space::builder()
            .transport(Arc::new(Arc::clone(&net)))
            .listen(Endpoint::sim("owner"))
            .options(opts.clone())
            .build()
            .unwrap();
        let counter = CounterClient::narrow(owner.local(new_counter())).unwrap();
        let own_svc = netobj_bench::BenchImpl::new(counter);
        owner
            .export(Arc::new(netobj_bench::BenchExport(Arc::new(own_svc))))
            .unwrap();

        let client = Space::builder()
            .transport(Arc::new(Arc::clone(&net)))
            .listen(Endpoint::sim("client"))
            .options(opts)
            .build()
            .unwrap();
        let svc = netobj_bench::BenchClient::narrow(
            client
                .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
                .unwrap(),
        )
        .unwrap();
        let held = svc.get_ref().unwrap();
        let exported_with_client = owner.exported_count();

        // Crash the client without cleaning.
        let t0 = Instant::now();
        client.crash();
        net.set_down("client", true);
        std::mem::forget(held);
        std::mem::forget(svc);
        while owner.exported_count() >= exported_with_client {
            std::thread::sleep(Duration::from_millis(10));
            if t0.elapsed() > Duration::from_secs(20) {
                break;
            }
        }
        rows.push(vec![
            format!("lease {lease_ms} ms"),
            fmt_dur(t0.elapsed()),
            format!("{}", owner.stats().leases_expired),
        ]);
        owner.shutdown();
    }
    print_table(
        "F5 — client crash: time until the owner reclaims (lease mode)",
        &["configuration", "time to reclaim", "leases expired"],
        &rows,
    );

    // Ping mode row.
    {
        let net = SimNet::instant();
        let mut opts = Options::fast();
        opts.ping_interval = Some(Duration::from_millis(100));
        opts.ping_failures = 2;
        opts.clean_timeout = Duration::from_millis(200);
        let owner = Space::builder()
            .transport(Arc::new(Arc::clone(&net)))
            .listen(Endpoint::sim("owner"))
            .options(opts.clone())
            .build()
            .unwrap();
        let counter = CounterClient::narrow(owner.local(new_counter())).unwrap();
        owner
            .export(Arc::new(netobj_bench::BenchExport(Arc::new(
                netobj_bench::BenchImpl::new(counter),
            ))))
            .unwrap();
        let client = Space::builder()
            .transport(Arc::new(Arc::clone(&net)))
            .listen(Endpoint::sim("client"))
            .options(Options::fast())
            .build()
            .unwrap();
        let svc = netobj_bench::BenchClient::narrow(
            client
                .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
                .unwrap(),
        )
        .unwrap();
        let held = svc.get_ref().unwrap();
        let watermark = owner.exported_count();
        let t0 = Instant::now();
        client.crash();
        net.set_down("client", true);
        std::mem::forget(held);
        std::mem::forget(svc);
        while owner.exported_count() >= watermark && t0.elapsed() < Duration::from_secs(20) {
            std::thread::sleep(Duration::from_millis(10));
        }
        println!(
            "  ping mode (100 ms interval, 2 failures): reclaimed in {}, \
             {} pings sent, {} client(s) purged",
            fmt_dur(t0.elapsed()),
            owner.stats().pings_sent,
            owner.stats().clients_purged
        );
        owner.shutdown();
    }
}

fn f7_fault_model() {
    use netobj_bench::model::faults;
    let mut rows = Vec::new();
    for (label, drops, premature) in [
        ("lossless", 0u32, false),
        ("≤4 drops, accurate timeouts", 4, false),
        ("≤12 drops, accurate timeouts", 12, false),
        ("≤4 drops, premature timeouts incl. transient pins", 4, true),
    ] {
        let mut ok = 0u32;
        let mut unsafe_runs = 0u32;
        let runs = 150;
        for seed in 0..runs {
            match faults::walk(4, 2, 200, drops, premature, seed) {
                Ok(_) => ok += 1,
                Err(e) if e.contains("SAFETY") => unsafe_runs += 1,
                Err(_) => {}
            }
        }
        rows.push(vec![
            label.into(),
            format!("{ok}/{runs}"),
            format!("{unsafe_runs}"),
        ]);
    }
    print_table(
        "F7 — fault-tolerant model: adversarial message loss (150 runs each)",
        &["scenario", "safe & fully drained", "safety violations"],
        &rows,
    );
    println!(
        "  The last row is the negative result: letting *transient pins* \
         time out prematurely abandons in-flight copies and violates \
         safety — premature *registration* timeouts alone remain safe \
         (strong cleans outrank the lost dirty; verified by the model's \
         unit tests). This is why the runtime's pin timeout is generous."
    );
}

fn t7_batching() {
    let mut rows = Vec::new();
    for batch in [false, true] {
        let mut opts = Options::fast();
        opts.batch_cleans = batch;
        let rig = Rig::with_options(Duration::ZERO, opts);
        // Mint 24 distinct owner-side counters, then drop all handles at
        // once: 24 clean entries, batched or not.
        let mut imported = Vec::new();
        for _ in 0..24 {
            imported.push(rig.svc.mint().unwrap());
        }
        drop(imported);
        let t0 = Instant::now();
        while rig.client.stats().clean_sent < 24 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = rig.client.stats();
        rows.push(vec![
            if batch {
                "batched cleans"
            } else {
                "individual cleans"
            }
            .into(),
            format!("{}", stats.clean_sent),
            format!(
                "{}",
                if batch {
                    stats.clean_batches.to_string()
                } else {
                    "n/a".into()
                }
            ),
        ]);
    }
    print_table(
        "T7 — clean-call batching (24 refs dropped at once)",
        &["mode", "clean entries", "batched RPCs"],
        &rows,
    );
}

fn f6_liveness() {
    let mut rows = Vec::new();
    for nprocs in [2usize, 3, 4, 6, 8] {
        let mut total_steps = 0u64;
        let mut total_drain = 0u64;
        let runs = 30;
        for seed in 0..runs {
            let (c, stats) = random_walk(
                WalkPolicy {
                    nprocs,
                    nrefs: 2,
                    activity: 120,
                    check_invariants: false,
                    ..WalkPolicy::default()
                },
                seed,
            );
            assert_drained(&c);
            total_steps += stats.steps;
            total_drain += stats.drain_steps;
        }
        rows.push(vec![
            format!("{nprocs}"),
            format!("{}", total_steps / runs),
            format!("{}", total_drain / runs),
            "yes".into(),
        ]);
    }
    print_table(
        "F6 — liveness: drain cost after last drop (30 runs each)",
        &[
            "processes",
            "mean transitions",
            "mean drain transitions",
            "dirty tables emptied",
        ],
        &rows,
    );
}

// ---------------------------------------------------------------------------

/// C3: per-method RPC latency quantiles from the span histograms, written
/// to `BENCH_rpc_latency.json` so the perf trajectory has a baseline
/// artifact that later PRs can diff against.
fn c3_rpc_latency() {
    let rig = Rig::new(Duration::ZERO);
    let n = 400;
    for _ in 0..n {
        rig.svc.null().unwrap();
    }
    for _ in 0..n {
        rig.svc.ten_ints(1, 2, 3, 4, 5, 6, 7, 8, 9, 10).unwrap();
    }
    for _ in 0..n {
        rig.svc
            .text("forty-two bytes of representative text....".into())
            .unwrap();
    }
    for _ in 0..n {
        rig.svc.blob(Blob(vec![0xa5; 4096])).unwrap();
    }
    for _ in 0..n {
        rig.svc.get_blob(4096).unwrap();
    }
    for _ in 0..n {
        rig.svc.record((7, 2.5, "x".into(), true)).unwrap();
    }

    // Client-observed latency lives in the client space's histograms;
    // merging in the server's adds the `serve/…` dispatch-side view.
    let mut metrics = rig.client.metrics();
    metrics.merge(&rig.server.metrics());

    let mut rows = Vec::new();
    let mut json =
        String::from("{\n  \"experiment\": \"C3\",\n  \"unit\": \"micros\",\n  \"methods\": {\n");
    let mut first = true;
    for (label, h) in &metrics.app_calls {
        let total = h.total();
        if total == 0 {
            continue;
        }
        let (p50, p90, p99) = (
            h.quantile_micros(0.50),
            h.quantile_micros(0.90),
            h.quantile_micros(0.99),
        );
        rows.push(vec![
            label.clone(),
            total.to_string(),
            fmt_dur(Duration::from_micros(p50)),
            fmt_dur(Duration::from_micros(p90)),
            fmt_dur(Duration::from_micros(p99)),
        ]);
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "    \"{label}\": {{\"count\": {total}, \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"mean\": {}}}",
            h.sum_micros / total
        );
    }
    json.push_str("\n  }\n}\n");
    print_table(
        "C3 — per-method RPC latency (log2-bucket quantiles)",
        &["method", "calls", "p50", "p90", "p99"],
        &rows,
    );
    match std::fs::write("BENCH_rpc_latency.json", &json) {
        Ok(()) => println!("\nwrote BENCH_rpc_latency.json"),
        Err(e) => eprintln!("\ncannot write BENCH_rpc_latency.json: {e}"),
    }
}
