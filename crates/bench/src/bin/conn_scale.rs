//! C5 — connection-scale latency on the reactor core.
//!
//! PR-4 measured throughput with a handful of busy connections (C4); this
//! experiment measures the other axis: how call latency behaves when one
//! reactor thread holds *thousands* of mostly idle connections and calls
//! arrive spread across all of them, so nearly every call costs a readiness
//! wakeup on a cold fd. Each rung opens N connections (distinct caller
//! identity per connection, as real clients present), warms the inline-path
//! classifier, then issues calls round-robin across the whole set and
//! reports the long tail (p50/p90/p99/p999) exactly from raw samples.
//!
//! Results are merged into `BENCH_rpc_throughput.json` under a `"c5"` key
//! next to the C4 data; `EXPERIMENTS.md` §C5 interprets them.
//!
//! ```sh
//! conn_scale                     # full sweep: 1k / 4k / 10k connections
//! conn_scale --quick             # small rungs, for CI bench-smoke
//! conn_scale --hold N ADDR       # open N idle conns against a running
//!                                #   netobjd and hold them (CI reactor
//!                                #   smoke); --secs S to change the hold
//! ```
//!
//! Rungs that would exceed the process fd limit (three fds per connection:
//! the client's raw socket plus the server `TcpConn`'s reader/writer pair,
//! all in this process) are clamped and marked.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj_bench::print_table;
use netobj_rpc::msg::{Request, RpcMsg};
use netobj_rpc::{Dispatch, Dispatcher, RpcServer, ServerConfig};
use netobj_transport::tcp::Tcp;
use netobj_transport::{Bytes, Endpoint, Transport};
use netobj_wire::{ObjIx, SpaceId, WireRep};

const OUT_PATH: &str = "BENCH_rpc_throughput.json";
const CALL_TIMEOUT: Duration = Duration::from_secs(10);
const CLIENT_WORKERS: usize = 4;

/// Echoes the argument pickle back — the cheapest possible method, so after
/// warmup the adaptive classifier runs it inline on the reactor thread and
/// the measurement isolates readiness + dispatch cost, not method cost.
struct Echo;

impl Dispatcher for Echo {
    fn dispatch(&self, _caller: SpaceId, _target: WireRep, _method: u32, args: &[u8]) -> Dispatch {
        Dispatch::plain(Ok(args.to_vec()))
    }
}

struct RungResult {
    requested: usize,
    connections: usize,
    calls: u64,
    errors: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    p999: u64,
    mean: u64,
    frames_per_syscall: f64,
}

fn main() {
    let mut quick = false;
    let mut hold: Option<(usize, String)> = None;
    let mut secs: u64 = 30;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--hold" => {
                let n = args.next().and_then(|v| v.parse::<usize>().ok());
                let addr = args.next();
                match (n, addr) {
                    (Some(n), Some(addr)) if n > 0 => hold = Some((n, addr)),
                    _ => usage(),
                }
            }
            "--secs" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => secs = s,
                None => usage(),
            },
            _ => usage(),
        }
    }

    if let Some((n, addr)) = hold {
        hold_connections(n, &addr, secs);
        return;
    }

    run_sweep(quick);
}

fn usage() -> ! {
    eprintln!("usage: conn_scale [--quick]");
    eprintln!("       conn_scale --hold N ADDR [--secs S]");
    std::process::exit(2);
}

/// CI reactor-smoke helper: open `n` idle TCP connections to a running
/// server and hold them for `secs` seconds so the job can scrape the
/// reactor gauges while they are registered.
fn hold_connections(n: usize, addr: &str, secs: u64) {
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => held.push(s),
            Err(e) => {
                eprintln!("conn_scale: connect {} of {n} to {addr} failed: {e}", i + 1);
                std::process::exit(1);
            }
        }
    }
    println!("conn_scale: holding {n} connections to {addr} for {secs}s");
    std::thread::sleep(Duration::from_secs(secs));
    println!("conn_scale: released {n} connections");
}

fn run_sweep(quick: bool) {
    let rungs: &[usize] = if quick {
        &[200, 500, 1000]
    } else {
        &[1000, 4000, 10_000]
    };
    // Three fds per connection (client socket + the server conn's
    // reader/writer stream pair, all in this process), plus slack for the
    // listener, epoll, stdio, and whatever the harness already holds.
    let conn_cap = fd_limit().map(|soft| soft.saturating_sub(128) / 3);

    let listener = match Tcp.listen(&Endpoint::tcp("127.0.0.1:0")) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("conn_scale: cannot listen: {e}");
            std::process::exit(1);
        }
    };
    let addr = listener.local_endpoint();
    let server = RpcServer::start_with_config(
        listener,
        Arc::new(Echo),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let on_reactor = server.reactor_stats().is_some();
    if !on_reactor {
        eprintln!("conn_scale: warning: server is on the thread-per-connection path");
    }

    let mut results = Vec::new();
    for &requested in rungs {
        let n = match conn_cap {
            Some(cap) if requested > cap => {
                eprintln!("conn_scale: rung {requested} clamped to {cap} by the open-file limit");
                cap
            }
            _ => requested,
        };
        if n == 0 {
            continue;
        }
        let before = server.reactor_stats();
        eprintln!("conn_scale: rung {requested}: ramping {n} connections");
        let r = run_rung(requested, n, addr.addr(), quick);
        if let (Some(b), Some(a)) = (before, server.reactor_stats()) {
            let frames = a.frames_flushed.saturating_sub(b.frames_flushed);
            let syscalls = a.flush_syscalls.saturating_sub(b.flush_syscalls);
            if syscalls > 0 {
                results.push(RungResult {
                    frames_per_syscall: frames as f64 / syscalls as f64,
                    ..r
                });
                drain_rung(&server);
                continue;
            }
        }
        results.push(r);
        drain_rung(&server);
    }

    report(&results, quick, on_reactor);
}

/// Waits for the reactor to observe every client close from the previous
/// rung so rungs do not overlap fd usage or gauge readings.
fn drain_rung(server: &RpcServer) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        match server.reactor_stats() {
            Some(s) if s.connections > 0 => std::thread::sleep(Duration::from_millis(10)),
            _ => return,
        }
    }
}

fn run_rung(requested: usize, n: usize, addr: &str, quick: bool) -> RungResult {
    // Enough calls that every connection is exercised a few times, capped so
    // the full sweep stays in bench-smoke territory.
    let calls_total = if quick { 2 * n } else { (4 * n).min(40_000) };

    let workers = CLIENT_WORKERS.min(n);
    let result: Vec<(Vec<u64>, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let share = n / workers + usize::from(w < n % workers);
            let calls = calls_total / workers + usize::from(w < calls_total % workers);
            handles.push(scope.spawn(move || worker(addr, share, calls)));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut lat: Vec<u64> = Vec::with_capacity(calls_total);
    let mut errors = 0u64;
    for (mut l, e) in result {
        lat.append(&mut l);
        errors += e;
    }
    lat.sort_unstable();
    let mean = if lat.is_empty() {
        0
    } else {
        lat.iter().sum::<u64>() / lat.len() as u64
    };
    RungResult {
        requested,
        connections: n,
        calls: lat.len() as u64,
        errors,
        p50: pct(&lat, 0.50),
        p90: pct(&lat, 0.90),
        p99: pct(&lat, 0.99),
        p999: pct(&lat, 0.999),
        mean,
        frames_per_syscall: 0.0,
    }
}

/// One client connection: a raw socket speaking the length-prefixed frame
/// format directly, so it costs one fd (a `TcpConn` would cost two — its
/// reader/writer clone pair — halving the connection count that fits under
/// `RLIMIT_NOFILE` with both ends in this process).
struct RawConn {
    stream: TcpStream,
    caller: SpaceId,
    next_id: u64,
}

impl RawConn {
    fn open(addr: &str) -> std::io::Result<RawConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(CALL_TIMEOUT))?;
        Ok(RawConn {
            stream,
            caller: SpaceId::fresh(),
            next_id: 0,
        })
    }

    fn send_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(4 + frame.len());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(frame);
        self.stream.write_all(&buf)
    }

    fn recv_frame(&mut self) -> std::io::Result<Bytes> {
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        let mut frame = vec![0u8; len];
        self.stream.read_exact(&mut frame)?;
        Ok(Bytes::from(frame))
    }
}

/// One load-generator thread: owns `share` connections, each with its own
/// caller identity; warms every connection, then spreads `calls` sequential
/// ping-pong calls round-robin across the set.
fn worker(addr: &str, share: usize, calls: usize) -> (Vec<u64>, u64) {
    let mut conns: Vec<RawConn> = Vec::with_capacity(share);
    let mut errors = 0u64;
    for _ in 0..share {
        match RawConn::open(addr) {
            Ok(c) => conns.push(c),
            Err(_) => errors += 1,
        }
    }
    // Warmup: one call per connection binds its identity on the server and
    // feeds the adaptive classifier so measured calls take the inline path.
    for c in &mut conns {
        if !call_once(c) {
            errors += 1;
        }
    }
    let mut lat = Vec::with_capacity(calls);
    if conns.is_empty() {
        return (lat, errors + calls as u64);
    }
    for i in 0..calls {
        let ix = i % conns.len();
        let start = Instant::now();
        if call_once(&mut conns[ix]) {
            lat.push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        } else {
            errors += 1;
        }
    }
    drop(conns);
    (lat, errors)
}

/// Issues one echo call on `conn` and waits for its reply. Returns false on
/// any transport or protocol error.
fn call_once(conn: &mut RawConn) -> bool {
    conn.next_id += 1;
    let call_id = conn.next_id;
    let req = RpcMsg::Request(Request {
        call_id,
        caller: conn.caller,
        target: WireRep::new(conn.caller, ObjIx::FIRST_USER),
        method: 7,
        args: Bytes::copy_from_slice(b"ping-c5!"),
        trace_id: 0,
        span_id: 0,
    });
    if conn.send_frame(&req.encode()).is_err() {
        return false;
    }
    loop {
        let frame = match conn.recv_frame() {
            Ok(f) => f,
            Err(_) => return false,
        };
        match RpcMsg::decode(&frame) {
            Ok(RpcMsg::Reply(r)) if r.call_id == call_id => {
                if r.needs_ack {
                    let _ = conn.send_frame(&RpcMsg::ReplyAck(call_id).encode());
                }
                return r.outcome.is_ok();
            }
            Ok(_) => continue,
            Err(_) => return false,
        }
    }
}

/// Exact percentile over sorted raw samples (nearest-rank).
fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let ix = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[ix]
}

/// The soft `RLIMIT_NOFILE`, read from `/proc/self/limits` (Linux only).
fn fd_limit() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("Max open files") {
            return rest.split_whitespace().next()?.parse().ok();
        }
    }
    None
}

fn report(results: &[RungResult], quick: bool, on_reactor: bool) {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.connections.to_string(),
                r.calls.to_string(),
                format!("{}µs", r.p50),
                format!("{}µs", r.p90),
                format!("{}µs", r.p99),
                format!("{}µs", r.p999),
                format!("{}µs", r.mean),
                r.errors.to_string(),
                format!("{:.2}", r.frames_per_syscall),
            ]
        })
        .collect();
    print_table(
        "C5 connection-scale latency (reactor core)",
        &[
            "conns",
            "calls",
            "p50",
            "p90",
            "p99",
            "p999",
            "mean",
            "errors",
            "frames/flush",
        ],
        &rows,
    );

    let mut rungs = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rungs.push_str(",\n");
        }
        rungs.push_str(&format!(
            "      {{\"requested\": {}, \"connections\": {}, \"calls\": {}, \"errors\": {}, \
             \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
             \"mean_us\": {}, \"frames_per_syscall\": {:.2}}}",
            r.requested,
            r.connections,
            r.calls,
            r.errors,
            r.p50,
            r.p90,
            r.p99,
            r.p999,
            r.mean,
            r.frames_per_syscall
        ));
    }
    let c5 = format!(
        "{{\n    \"experiment\": \"C5 connection-scale latency\",\n    \
         \"quick\": {quick},\n    \"reactor\": {on_reactor},\n    \
         \"rungs\": [\n{rungs}\n    ]\n  }}"
    );
    match merge_into_report(&c5) {
        Ok(()) => println!("\nwrote {OUT_PATH} (c5 section)"),
        Err(e) => eprintln!("conn_scale: cannot write {OUT_PATH}: {e}"),
    }
}

/// Merges the `"c5"` object into `BENCH_rpc_throughput.json`, preserving the
/// C4 data the `rpc_throughput` bin wrote: replaces an existing `"c5"` key,
/// appends before the final brace otherwise, or writes a fresh file.
fn merge_into_report(c5: &str) -> std::io::Result<()> {
    const KEY: &str = ",\n  \"c5\": ";
    let merged = match std::fs::read_to_string(OUT_PATH) {
        Ok(existing) => {
            let base = match existing.find(KEY) {
                Some(ix) => existing[..ix].to_owned(),
                None => match existing.trim_end().strip_suffix('}') {
                    Some(body) => body.trim_end().to_owned(),
                    None => String::new(),
                },
            };
            if base.is_empty() {
                format!("{{\n  \"c5\": {c5}\n}}\n")
            } else {
                format!("{base}{KEY}{c5}\n}}\n")
            }
        }
        Err(_) => format!("{{\n  \"c5\": {c5}\n}}\n"),
    };
    std::fs::write(OUT_PATH, merged)
}
