//! C4: multi-caller RPC throughput.
//!
//! Measures sustained calls/second through one client [`Space`] with 1, 4
//! and 16 concurrent caller threads, over both the loopback transport (the
//! paper's "same machine" configuration — pure runtime overhead, no wire)
//! and a zero-latency SimNet (the deterministic harness all other
//! experiments use). Every caller shares the same client space, so this is
//! exactly the contended path the zero-copy/sharding work targets: one
//! connection, one demux thread, one object table, one metrics registry.
//!
//! Writes `BENCH_rpc_throughput.json` so the perf trajectory can be diffed
//! across PRs. `--quick` shrinks the call counts for CI smoke runs.
//!
//! Run with `cargo run --release -p netobj-bench --bin rpc_throughput`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj::wire::pickle::Blob;
use netobj::wire::ObjIx;
use netobj::{Options, Space};
use netobj_bench::{fmt_dur, new_counter, print_table, BenchClient, BenchExport, BenchImpl};
use netobj_bench::{BenchSvc, CounterClient};
use netobj_transport::loopback::Loopback;
use netobj_transport::sim::{LinkConfig, SimNet};
use netobj_transport::{Endpoint, Transport};

/// One measured configuration.
struct Scenario {
    /// `"loopback"` or `"simnet"`.
    transport: &'static str,
    /// Number of concurrent caller threads.
    callers: usize,
    /// Calls per caller actually timed.
    calls_per_caller: usize,
    /// Sustained rate across all callers.
    calls_per_sec: f64,
    /// Mean per-call latency observed by a caller.
    mean_call: Duration,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let per_caller = if quick { 300 } else { 4000 };
    let blob_calls = if quick { 100 } else { 1000 };

    println!(
        "# C4 — multi-caller RPC throughput ({} mode)",
        if quick { "quick" } else { "full" }
    );

    let mut scenarios = Vec::new();
    for &callers in &[1usize, 4, 16] {
        scenarios.push(run_loopback(callers, per_caller));
    }
    for &callers in &[1usize, 4, 16] {
        scenarios.push(run_simnet(callers, per_caller));
    }
    let blob_rate = run_blob_loopback(blob_calls);

    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|s| {
            vec![
                s.transport.to_owned(),
                s.callers.to_string(),
                format!("{:.0}", s.calls_per_sec),
                fmt_dur(s.mean_call),
            ]
        })
        .collect();
    print_table(
        "C4 — null-call throughput (one shared client space)",
        &["transport", "callers", "calls/s", "mean/call"],
        &rows,
    );
    println!("\nloopback 4 KiB blob echo, 1 caller: {blob_rate:.1} MB/s");

    let mut json = String::from("{\n  \"experiment\": \"C4\",\n  \"unit\": \"calls_per_sec\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"scenarios\": {\n");
    for (i, s) in scenarios.iter().enumerate() {
        let _ = write!(
            json,
            "    \"{}/{}\": {{\"callers\": {}, \"calls_per_caller\": {}, \"calls_per_sec\": {:.1}, \"mean_call_micros\": {}}}",
            s.transport,
            s.callers,
            s.callers,
            s.calls_per_caller,
            s.calls_per_sec,
            s.mean_call.as_micros()
        );
        json.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"loopback_blob_4k_mb_per_sec\": {blob_rate:.2}");
    json.push_str("}\n");
    match std::fs::write("BENCH_rpc_throughput.json", &json) {
        Ok(()) => println!("\nwrote BENCH_rpc_throughput.json"),
        Err(e) => eprintln!("\ncannot write BENCH_rpc_throughput.json: {e}"),
    }
}

/// Builds a served space plus one client space on the given transport and
/// returns the bound service stub with both spaces kept alive.
fn build_pair(
    transport: Arc<dyn Transport>,
    server_ep: Endpoint,
    client_ep: Endpoint,
) -> (Space, Space, BenchClient) {
    let server = Space::builder()
        .transport(Arc::clone(&transport))
        .listen(server_ep.clone())
        .options(Options::fast())
        .build()
        .expect("server space");
    let own = CounterClient::narrow(server.local(new_counter())).expect("narrow");
    let service = Arc::new(BenchImpl::new(own));
    service.set_space(server.clone());
    server
        .export(Arc::new(BenchExport(service)))
        .expect("export");
    let client = Space::builder()
        .transport(transport)
        .listen(client_ep)
        .options(Options::fast())
        .build()
        .expect("client space");
    let svc = BenchClient::narrow(
        client
            .import_root(&server_ep, ObjIx::FIRST_USER)
            .expect("bind"),
    )
    .expect("narrow");
    (server, client, svc)
}

/// Runs `callers` threads each issuing `per_caller` timed null calls
/// through one shared client space; returns the aggregate rate.
fn measure(
    transport: &'static str,
    svc: &BenchClient,
    callers: usize,
    per_caller: usize,
) -> Scenario {
    // Warm up outside the window: fills connection caches and surrogates.
    for _ in 0..50 {
        svc.null().expect("warmup call");
    }
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..callers {
            let svc = svc.clone();
            scope.spawn(move || {
                for _ in 0..per_caller {
                    svc.null().expect("bench call");
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let total = (callers * per_caller) as f64;
    Scenario {
        transport,
        callers,
        calls_per_caller: per_caller,
        calls_per_sec: total / elapsed.as_secs_f64(),
        mean_call: elapsed.mul_f64(callers as f64 / total.max(1.0)),
    }
}

fn run_loopback(callers: usize, per_caller: usize) -> Scenario {
    let net = Loopback::new();
    let (server, client, svc) = build_pair(
        Arc::new(net),
        Endpoint::loopback("thr-server"),
        Endpoint::loopback("thr-client"),
    );
    let s = measure("loopback", &svc, callers, per_caller);
    drop(svc);
    drop(client);
    drop(server);
    s
}

fn run_simnet(callers: usize, per_caller: usize) -> Scenario {
    let net = SimNet::new(LinkConfig::with_latency(Duration::ZERO));
    let (server, client, svc) = build_pair(
        Arc::new(net),
        Endpoint::sim("thr-server"),
        Endpoint::sim("thr-client"),
    );
    let s = measure("simnet", &svc, callers, per_caller);
    drop(svc);
    drop(client);
    drop(server);
    s
}

/// Echoes 4 KiB blobs over loopback with one caller: the payload-copy cost
/// row (bytes cross the stack twice per call).
fn run_blob_loopback(calls: usize) -> f64 {
    let net = Loopback::new();
    let (_server, _client, svc) = build_pair(
        Arc::new(net),
        Endpoint::loopback("thr-blob-server"),
        Endpoint::loopback("thr-blob-client"),
    );
    let payload = Blob(vec![0xa5u8; 4096]);
    svc.blob(payload.clone()).expect("warmup");
    let t0 = Instant::now();
    for _ in 0..calls {
        svc.blob(payload.clone()).expect("blob call");
    }
    let elapsed = t0.elapsed();
    // Counts both directions' payloads (args out, length back is tiny).
    (calls as f64 * 4096.0) / 1e6 / elapsed.as_secs_f64()
}
