//! Regenerates the committed fuzz seed corpus under `tests/corpus/`.
//!
//! The corpus is exactly [`netobj_bench::fuzz::builtin_corpus`] written
//! out as one `.bin` file per entry (unframed message payloads; the
//! harness frames them itself). Run from anywhere in the workspace:
//!
//! ```text
//! cargo run -p netobj-bench --bin gen_corpus
//! ```
//!
//! The output is deterministic, so re-running after a wire-format change
//! produces a minimal, reviewable diff.

use std::path::PathBuf;

fn main() {
    let dir = match std::env::args().nth(1) {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus"),
    };
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    let mut written = 0usize;
    for (name, bytes) in netobj_bench::fuzz::builtin_corpus() {
        let path = dir.join(format!("{name}.bin"));
        std::fs::write(&path, &bytes).expect("write corpus file");
        println!("{:>6} bytes  {}", bytes.len(), path.display());
        written += 1;
    }
    println!("wrote {written} corpus files to {}", dir.display());
}
