//! Shared infrastructure for the evaluation harness.
//!
//! Defines the benchmark service interfaces (via the stub generator), the
//! standard two-space rig over a simulated network, a raw-RPC rig for the
//! "no object layer" baseline rows, and small timing/table utilities used
//! by both the Criterion benches and the `report` binary.

#![forbid(unsafe_code)]

pub mod fuzz;

use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj::wire::pickle::Blob;
use netobj::wire::ObjIx;
use netobj::{network_object, NetResult, Options, Space};
use netobj_transport::sim::{LinkConfig, SimNet};
use netobj_transport::Endpoint;
use parking_lot::Mutex;

pub use netobj;
pub use netobj_dgc_model as model;
pub use netobj_rpc as rpc;
pub use netobj_transport as transport;
pub use netobj_wire as wire;

network_object! {
    /// A counter object used as the transferable reference in benchmarks.
    pub interface Counter ("bench.Counter"): client CounterClient, export CounterExport {
        0 => fn add(&self, n: i64) -> i64;
    }
}

/// Counter implementation.
pub struct CounterImpl(pub Mutex<i64>);

impl Counter for CounterImpl {
    fn add(&self, n: i64) -> NetResult<i64> {
        let mut v = self.0.lock();
        *v += n;
        Ok(*v)
    }
}

/// Creates a fresh exportable counter.
pub fn new_counter() -> Arc<CounterExport<CounterImpl>> {
    Arc::new(CounterExport(Arc::new(CounterImpl(Mutex::new(0)))))
}

network_object! {
    /// The benchmark service: one method per argument shape measured in
    /// the evaluation.
    pub interface BenchSvc ("bench.Svc"): client BenchClient, export BenchExport {
        /// The null method: no arguments, no result.
        0 => fn null(&self) -> ();
        /// Ten integer arguments.
        1 => fn ten_ints(
            &self,
            a: i64, b: i64, c: i64, d: i64, e: i64,
            f: i64, g: i64, h: i64, i: i64, j: i64,
        ) -> ();
        /// A text argument.
        2 => fn text(&self, s: String) -> ();
        /// A bulk byte payload; returns its length.
        3 => fn blob(&self, b: Blob) -> u64;
        /// Returns a bulk byte payload of the requested size.
        4 => fn get_blob(&self, n: u64) -> Blob;
        /// A small mixed record.
        5 => fn record(&self, r: (i64, f64, String, bool)) -> ();
        /// Receives a network object reference (drops it immediately).
        6 => fn take_ref(&self, c: CounterClient) -> ();
        /// Receives a reference and retains it.
        7 => fn keep_ref(&self, c: CounterClient) -> ();
        /// Returns a reference to a counter owned by the service.
        8 => fn get_ref(&self) -> CounterClient;
        /// Receives a reference and then performs `busy_us` microseconds
        /// of work — used to show the FIFO variant overlapping reference
        /// registration with method execution.
        9 => fn take_ref_work(&self, c: CounterClient, busy_us: u64) -> ();
        /// Mints a fresh counter owned by the service's space.
        10 => fn mint(&self) -> CounterClient;
    }
}

/// Benchmark service implementation.
pub struct BenchImpl {
    kept: Mutex<Vec<CounterClient>>,
    own: CounterClient,
    space: Mutex<Option<Space>>,
}

impl BenchImpl {
    /// Builds the service; `own` is a counter owned by the serving space.
    pub fn new(own: CounterClient) -> BenchImpl {
        BenchImpl {
            kept: Mutex::new(Vec::new()),
            own,
            space: Mutex::new(None),
        }
    }

    /// Wires the serving space (needed by `mint`).
    pub fn set_space(&self, space: Space) {
        *self.space.lock() = Some(space);
    }
}

impl BenchSvc for BenchImpl {
    fn null(&self) -> NetResult<()> {
        Ok(())
    }
    #[allow(clippy::too_many_arguments)]
    fn ten_ints(
        &self,
        a: i64,
        b: i64,
        c: i64,
        d: i64,
        e: i64,
        f: i64,
        g: i64,
        h: i64,
        i: i64,
        j: i64,
    ) -> NetResult<()> {
        let _ = (a, b, c, d, e, f, g, h, i, j);
        Ok(())
    }
    fn text(&self, s: String) -> NetResult<()> {
        let _ = s;
        Ok(())
    }
    fn blob(&self, b: Blob) -> NetResult<u64> {
        Ok(b.0.len() as u64)
    }
    fn get_blob(&self, n: u64) -> NetResult<Blob> {
        Ok(Blob(vec![0xa5; n as usize]))
    }
    fn record(&self, r: (i64, f64, String, bool)) -> NetResult<()> {
        let _ = r;
        Ok(())
    }
    fn take_ref(&self, c: CounterClient) -> NetResult<()> {
        drop(c);
        Ok(())
    }
    fn keep_ref(&self, c: CounterClient) -> NetResult<()> {
        self.kept.lock().push(c);
        Ok(())
    }
    fn get_ref(&self) -> NetResult<CounterClient> {
        Ok(self.own.clone())
    }
    fn take_ref_work(&self, c: CounterClient, busy_us: u64) -> NetResult<()> {
        self.kept.lock().push(c);
        std::thread::sleep(Duration::from_micros(busy_us));
        Ok(())
    }
    fn mint(&self) -> NetResult<CounterClient> {
        let space = self
            .space
            .lock()
            .clone()
            .ok_or_else(|| netobj::Error::app("mint: space not wired"))?;
        CounterClient::narrow(space.local(new_counter()))
    }
}

/// A standard two-space rig over a simulated network.
pub struct Rig {
    /// The simulated network (fault/latency knobs live here).
    pub net: Arc<SimNet>,
    /// The space owning the benchmark service.
    pub server: Space,
    /// The calling space.
    pub client: Space,
    /// Typed stub bound to the service.
    pub svc: BenchClient,
}

impl Rig {
    /// Builds a rig whose links have the given one-way latency.
    pub fn new(latency: Duration) -> Rig {
        Rig::with_options(latency, Options::fast())
    }

    /// Builds a rig with explicit space options.
    pub fn with_options(latency: Duration, options: Options) -> Rig {
        let net = SimNet::new(LinkConfig::with_latency(latency));
        let server = Space::builder()
            .transport(Arc::new(Arc::clone(&net)))
            .listen(Endpoint::sim("bench-server"))
            .options(options.clone())
            .build()
            .expect("server space");
        let own = CounterClient::narrow(server.local(new_counter())).expect("narrow");
        let service = Arc::new(BenchImpl::new(own));
        service.set_space(server.clone());
        server
            .export(Arc::new(BenchExport(service)))
            .expect("export");
        let client = Space::builder()
            .transport(Arc::new(Arc::clone(&net)))
            .listen(Endpoint::sim("bench-client"))
            .options(options)
            .build()
            .expect("client space");
        let svc = BenchClient::narrow(
            client
                .import_root(&Endpoint::sim("bench-server"), ObjIx::FIRST_USER)
                .expect("bind"),
        )
        .expect("narrow");
        Rig {
            net,
            server,
            client,
            svc,
        }
    }
}

/// A raw-RPC rig: the same transports, no object layer — the baseline the
/// paper compares its runtime against ("network objects vs. plain RPC").
pub struct RawRig {
    /// The simulated network.
    pub net: Arc<SimNet>,
    server: netobj_rpc::RpcServer,
    /// The raw call client.
    pub client: Arc<netobj_rpc::CallClient>,
    /// Target wireRep for calls.
    pub target: netobj_wire::WireRep,
}

impl RawRig {
    /// Builds the raw rig; the dispatcher echoes its arguments.
    pub fn new(latency: Duration) -> RawRig {
        use netobj_transport::Transport;
        let net = SimNet::new(LinkConfig::with_latency(latency));
        let listener = net.listen(&Endpoint::sim("raw-server")).expect("listen");
        let dispatcher: Arc<dyn netobj_rpc::Dispatcher> = Arc::new(
            |_c: netobj_wire::SpaceId, _t: netobj_wire::WireRep, _m: u32, a: &[u8]| Ok(a.to_vec()),
        );
        let server = netobj_rpc::RpcServer::start(listener, dispatcher, 4);
        let conn = net.connect(&Endpoint::sim("raw-server")).expect("connect");
        let client = netobj_rpc::CallClient::new(Arc::from(conn), netobj_wire::SpaceId::fresh());
        RawRig {
            net,
            server,
            client,
            target: netobj_wire::WireRep::new(netobj_wire::SpaceId::from_raw(1), ObjIx(2)),
        }
    }

    /// Performs one raw echo call.
    pub fn call(&self, payload: Vec<u8>) -> netobj_transport::Bytes {
        self.client.call(self.target, 0, payload).expect("raw call")
    }
}

impl Drop for RawRig {
    fn drop(&mut self) {
        self.server.stop();
    }
}

/// Times `n` executions of `f`, returning the mean per-call duration.
pub fn time_per_call(n: usize, mut f: impl FnMut()) -> Duration {
    // One warm-up call outside the window.
    f();
    let t0 = Instant::now();
    for _ in 0..n {
        f();
    }
    t0.elapsed() / n as u32
}

/// Formats a duration compactly for report tables.
pub fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Formats a throughput figure.
pub fn fmt_rate(bytes: u64, d: Duration) -> String {
    let bps = bytes as f64 / d.as_secs_f64();
    if bps >= 1e9 {
        format!("{:.2} GB/s", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.2} MB/s", bps / 1e6)
    } else {
        format!("{:.1} kB/s", bps / 1e3)
    }
}

/// Prints a report table: a title, column headers and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!();
    println!("## {title}");
    println!();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
    }
    println!("{sep}");
    for row in rows {
        println!("{}", line(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_serves_all_methods() {
        let rig = Rig::new(Duration::ZERO);
        rig.svc.null().unwrap();
        rig.svc.ten_ints(1, 2, 3, 4, 5, 6, 7, 8, 9, 10).unwrap();
        rig.svc.text("hello".into()).unwrap();
        assert_eq!(rig.svc.blob(Blob(vec![1; 100])).unwrap(), 100);
        assert_eq!(rig.svc.get_blob(64).unwrap().0.len(), 64);
        rig.svc.record((1, 2.5, "x".into(), true)).unwrap();
        let c = CounterClient::narrow(rig.client.local(new_counter())).unwrap();
        rig.svc.take_ref(c.clone()).unwrap();
        rig.svc.keep_ref(c).unwrap();
        let remote = rig.svc.get_ref().unwrap();
        assert_eq!(remote.add(5).unwrap(), 5);
    }

    #[test]
    fn raw_rig_echoes() {
        let raw = RawRig::new(Duration::ZERO);
        assert_eq!(raw.call(vec![1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_dur(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_dur(Duration::from_micros(1500)).contains("ms"));
        assert!(fmt_rate(1_000_000, Duration::from_secs(1)).contains("MB/s"));
    }
}
