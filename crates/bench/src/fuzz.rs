//! Adversarial fuzzing of the untrusted decode path.
//!
//! Everything a remote peer controls flows through three layers before any
//! runtime state is touched: the length-prefixed [`FrameDecoder`], the
//! [`RpcMsg`] envelope decoder, and the pickle [`Value`] decoder applied
//! to argument payloads. This module drives all three with deterministic,
//! seed-reproducible garbage: structure-aware mutations of valid frames
//! (bit flips, truncations, length-field corruption, splices), freshly
//! generated random-but-valid messages, and raw noise.
//!
//! The oracle is crash-freedom, not semantic correctness: any input may be
//! *rejected*, but no input may panic, hang, or balloon memory. Valid
//! round-trips are additionally checked to decode back to themselves, so
//! the harness would also catch an encoder/decoder drift.
//!
//! Determinism matters more than raw throughput here: the whole run is a
//! pure function of `(seed, corpus)`, so a CI failure is reproducible on a
//! laptop with the seed from the log — see [`run`] and the `fuzz_wire`
//! binary.

use std::path::Path;

use netobj_rpc::msg::RpcMsg;
use netobj_rpc::{RemoteError, RemoteErrorKind};
use netobj_transport::Bytes;
use netobj_wire::frame::{frame_prefix, FrameDecoder};
use netobj_wire::pickle::{scan_refs, Pickle, Value};
use netobj_wire::{ObjIx, SpaceId, WireRep};

/// Frame-size cap used by the harness decoder — small enough that a
/// corrupted length prefix cannot make the decoder buffer gigabytes.
pub const FUZZ_MAX_FRAME: usize = 1 << 20;

/// Cap on a single fuzz case's byte stream; mutations never grow past it.
const MAX_CASE_BYTES: usize = 64 * 1024;

/// A splitmix64 generator: tiny, seedable, and fully deterministic, which
/// is the property the harness actually needs (the statistical quality is
/// incidental). Mirrors the constants used by `rand`'s seeding path.
#[derive(Debug, Clone)]
pub struct FuzzRng(u64);

impl FuzzRng {
    /// A generator whose whole stream is a function of `seed`.
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// One random byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// True once in `one_in` draws (on average).
    pub fn chance(&mut self, one_in: u64) -> bool {
        self.next_u64() % one_in == 0
    }
}

/// Valid message payloads (unframed) covering every `RpcMsg` arm and the
/// collector's argument shapes: a plain call, a dirty, a clean, a clean
/// batch, both reply outcomes, an ack, and a deeply structured value.
/// These are the built-in seeds; the committed corpus under
/// `tests/corpus/` is generated from this same list (see `gen_corpus`).
pub fn builtin_corpus() -> Vec<(&'static str, Vec<u8>)> {
    use netobj_rpc::msg::{Reply, Request};

    let caller = SpaceId::from_raw(0x1111_2222_3333_4444_5555_6666_7777_8888);
    let owner = SpaceId::from_raw(0x9999_aaaa_bbbb_cccc_dddd_eeee_ffff_0000);
    let target = WireRep::new(owner, ObjIx(64));

    let request = |method: u32, args: Vec<u8>| {
        RpcMsg::Request(Request {
            call_id: 7,
            caller,
            target,
            method,
            args: Bytes::from(args),
            trace_id: 0x1234,
            span_id: 0x5678,
        })
        .to_pickle_bytes()
    };

    let deep = {
        // A representative structured argument: nested seq/map/record/
        // variant with references buried inside.
        let mut v = Value::Seq(vec![
            Value::Ref(target),
            Value::Map(vec![(Value::Text("k".into()), Value::UInt(9))]),
        ]);
        for d in 0..24 {
            v = Value::Record(vec![
                Value::Variant(d, Box::new(v)),
                Value::Bool(d % 2 == 0),
            ]);
        }
        v.to_pickle_bytes()
    };

    vec![
        (
            "request_call",
            request(3, (42u64, String::from("hello")).to_pickle_bytes()),
        ),
        (
            "request_dirty",
            request(0, (64u64, 1u64, None::<u8>).to_pickle_bytes()),
        ),
        (
            "request_clean",
            request(1, (64u64, 2u64, true).to_pickle_bytes()),
        ),
        (
            "request_clean_batch",
            request(
                4,
                vec![(64u64, 3u64, false), (65u64, 4u64, true)].to_pickle_bytes(),
            ),
        ),
        ("request_deep_args", request(9, deep)),
        (
            "reply_ok",
            RpcMsg::Reply(Reply {
                call_id: 7,
                outcome: Ok(Bytes::from((1u64, 2u64).to_pickle_bytes())),
                needs_ack: true,
            })
            .to_pickle_bytes(),
        ),
        (
            "reply_err",
            RpcMsg::Reply(Reply {
                call_id: 7,
                outcome: Err(RemoteError::new(
                    RemoteErrorKind::QuotaExceeded,
                    "client request budget exceeded",
                )),
                needs_ack: false,
            })
            .to_pickle_bytes(),
        ),
        ("reply_ack", RpcMsg::ReplyAck(7).to_pickle_bytes()),
    ]
}

/// Loads every `*.bin` file under `dir`, sorted by file name so the
/// corpus order (and with it the whole run) is deterministic. Missing
/// directory is an empty corpus, not an error.
pub fn load_corpus(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "bin") {
            if let Ok(bytes) = std::fs::read(&path) {
                let name = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                out.push((name, bytes));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Generates a random-but-valid `Value` tree of bounded size (structure-
/// aware input generation: exercises the decoder's deep paths with inputs
/// that get past the first tag check).
fn gen_value(rng: &mut FuzzRng, depth: usize) -> Value {
    let leaf = depth >= 6;
    match rng.below(if leaf { 8 } else { 12 }) {
        0 => Value::Unit,
        1 => Value::Bool(rng.chance(2)),
        2 => Value::Int(rng.next_u64() as i64),
        3 => Value::UInt(rng.next_u64()),
        4 => Value::Text("x".repeat(rng.below(16))),
        5 => Value::Bytes((0..rng.below(24)).map(|_| rng.byte()).collect()),
        6 => Value::Ref(WireRep::new(
            SpaceId::from_raw(rng.next_u64() as u128),
            ObjIx(rng.next_u64() % 1024),
        )),
        7 => Value::Opt(None),
        8 => Value::Seq(
            (0..rng.below(4))
                .map(|_| gen_value(rng, depth + 1))
                .collect(),
        ),
        9 => Value::Record(
            (0..rng.below(4))
                .map(|_| gen_value(rng, depth + 1))
                .collect(),
        ),
        10 => Value::Map(
            (0..rng.below(3))
                .map(|_| (gen_value(rng, depth + 1), gen_value(rng, depth + 1)))
                .collect(),
        ),
        _ => Value::Variant(rng.next_u64() % 8, Box::new(gen_value(rng, depth + 1))),
    }
}

/// Applies one random mutation to `bytes` in place.
fn mutate_once(rng: &mut FuzzRng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        bytes.push(rng.byte());
        return;
    }
    match rng.below(6) {
        // Bit flip.
        0 => {
            let i = rng.below(bytes.len());
            bytes[i] ^= 1 << rng.below(8);
        }
        // Overwrite with a random byte.
        1 => {
            let i = rng.below(bytes.len());
            bytes[i] = rng.byte();
        }
        // Insert a short run.
        2 => {
            let i = rng.below(bytes.len() + 1);
            let n = 1 + rng.below(8);
            if bytes.len() + n <= MAX_CASE_BYTES {
                let run: Vec<u8> = (0..n).map(|_| rng.byte()).collect();
                bytes.splice(i..i, run);
            }
        }
        // Delete a short run.
        3 => {
            let i = rng.below(bytes.len());
            let n = (1 + rng.below(8)).min(bytes.len() - i);
            bytes.drain(i..i + n);
        }
        // Truncate.
        4 => {
            bytes.truncate(rng.below(bytes.len() + 1));
        }
        // Overwrite with an interesting varint-ish boundary value.
        _ => {
            let i = rng.below(bytes.len());
            const INTERESTING: [u8; 8] = [0x00, 0x01, 0x7f, 0x80, 0x81, 0xfe, 0xff, 0x0a];
            bytes[i] = INTERESTING[rng.below(INTERESTING.len())];
        }
    }
}

/// Builds one fuzz case: a raw byte stream to feed the frame decoder.
/// Pure function of the generator state and corpus.
pub fn build_case(rng: &mut FuzzRng, corpus: &[(String, Vec<u8>)]) -> Vec<u8> {
    let payload: Vec<u8> = match rng.below(10) {
        // Raw noise, no framing discipline at all.
        0 => return (0..rng.below(512)).map(|_| rng.byte()).collect(),
        // Freshly generated structured value.
        1 | 2 => gen_value(rng, 0).to_pickle_bytes(),
        // A splice of two corpus entries.
        3 if corpus.len() >= 2 => {
            let a = &corpus[rng.below(corpus.len())].1;
            let b = &corpus[rng.below(corpus.len())].1;
            let cut_a = rng.below(a.len() + 1);
            let cut_b = rng.below(b.len() + 1);
            let mut s = a[..cut_a].to_vec();
            s.extend_from_slice(&b[cut_b..]);
            s
        }
        // A corpus entry (mutated below with high probability).
        _ if !corpus.is_empty() => corpus[rng.below(corpus.len())].1.clone(),
        _ => gen_value(rng, 0).to_pickle_bytes(),
    };

    let mut payload = payload;
    // Most cases mutate; one in four stays pristine so the valid paths
    // keep being exercised end to end.
    if !rng.chance(4) {
        for _ in 0..=rng.below(8) {
            mutate_once(rng, &mut payload);
        }
    }
    payload.truncate(MAX_CASE_BYTES);

    // Frame it. One in four cases corrupts the length prefix afterwards —
    // undersized, oversized, and pathological lengths included.
    let mut stream = Vec::with_capacity(payload.len() + 8);
    let prefix = frame_prefix(payload.len()).expect("case under 4 GiB");
    stream.extend_from_slice(&prefix);
    stream.extend_from_slice(&payload);
    if rng.chance(4) {
        let declared: u32 = match rng.below(4) {
            0 => rng.next_u64() as u32,
            1 => u32::MAX,
            2 => (payload.len() as u32).wrapping_add(1),
            _ => (payload.len() as u32).wrapping_sub(1),
        };
        stream[..4].copy_from_slice(&declared.to_be_bytes());
    }
    // Sometimes append a second, valid frame behind the garbage to check
    // the decoder's resynchronisation-is-not-attempted contract.
    if rng.chance(8) && !corpus.is_empty() {
        let extra = &corpus[rng.below(corpus.len())].1;
        if let Ok(p) = frame_prefix(extra.len()) {
            stream.extend_from_slice(&p);
            stream.extend_from_slice(extra);
        }
    }
    stream
}

/// Counters from one case or one whole run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FuzzReport {
    /// Fuzz cases executed.
    pub cases: u64,
    /// Complete frames the decoder yielded.
    pub frames: u64,
    /// Frames that decoded to a well-formed `RpcMsg`.
    pub msgs: u64,
    /// Argument payloads that scanned/decoded as well-formed pickles.
    pub values: u64,
}

impl FuzzReport {
    fn absorb(&mut self, other: FuzzReport) {
        self.cases += other.cases;
        self.frames += other.frames;
        self.msgs += other.msgs;
        self.values += other.values;
    }
}

/// Feeds one case through the full untrusted decode path. Must never
/// panic — that is the property under test; the return value only exists
/// so runs can be compared for determinism.
pub fn execute_case(stream: &[u8], chunk_seed: u64) -> FuzzReport {
    let mut rng = FuzzRng::new(chunk_seed);
    let mut report = FuzzReport {
        cases: 1,
        ..Default::default()
    };
    let mut dec = FrameDecoder::new(FUZZ_MAX_FRAME);
    let mut fed = 0;
    let mut dead = false;
    while fed < stream.len() && !dead {
        // Random chunk sizes exercise every partial-header/partial-body
        // resumption point in the decoder.
        let n = (1 + rng.below(97)).min(stream.len() - fed);
        dec.extend(&stream[fed..fed + n]);
        fed += n;
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => {
                    report.frames += 1;
                    inspect_frame(&frame, &mut report);
                }
                Ok(None) => break,
                // A framing error is terminal for the connection; the
                // server drops it. Nothing more to decode.
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
    }
    report
}

/// What the server does with a decoded frame: envelope decode, then the
/// reference scan and dynamic decode of any payload bytes it carries.
fn inspect_frame(frame: &Bytes, report: &mut FuzzReport) {
    let Ok(msg) = RpcMsg::decode(frame) else {
        // Malformed envelope: rejected, connection dropped. Also probe the
        // dynamic value decoder with the same bytes — introspection tools
        // do exactly this with sniffed frames.
        let _ = Value::from_pickle_bytes(frame.as_ref());
        let _ = scan_refs(frame.as_ref());
        return;
    };
    report.msgs += 1;
    let payload: Option<&[u8]> = match &msg {
        RpcMsg::Request(rq) => Some(rq.args.as_ref()),
        RpcMsg::Reply(rp) => match &rp.outcome {
            Ok(bytes) => Some(bytes.as_ref()),
            Err(_) => None,
        },
        RpcMsg::ReplyAck(_) => None,
    };
    if let Some(bytes) = payload {
        let refs_ok = scan_refs(bytes).is_ok();
        let val_ok = Value::from_pickle_bytes(bytes).is_ok();
        if refs_ok && val_ok {
            report.values += 1;
        }
    }
    // Round-trip: a message that decoded must re-encode and decode back
    // to itself (drift here would corrupt peers that relay messages).
    let re = Bytes::from(msg.to_pickle_bytes());
    let again = RpcMsg::decode(&re).expect("re-encoded message must decode");
    assert_eq!(again, msg, "decode/encode round-trip drifted");
}

/// Runs `iters` deterministic fuzz cases from `seed` over `corpus`.
///
/// `on_case` sees each case's byte stream *before* execution, so a caller
/// can persist it and attribute a panic to the exact input (the
/// `fuzz_wire` binary dumps it as a crash artifact).
pub fn run(
    seed: u64,
    iters: u64,
    corpus: &[(String, Vec<u8>)],
    mut on_case: impl FnMut(u64, &[u8]),
) -> FuzzReport {
    let mut rng = FuzzRng::new(seed);
    let mut report = FuzzReport::default();
    for i in 0..iters {
        let stream = build_case(&mut rng, corpus);
        on_case(i, &stream);
        let chunk_seed = rng.next_u64();
        report.absorb(execute_case(&stream, chunk_seed));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(FuzzRng::new(1).next_u64(), FuzzRng::new(2).next_u64());
    }

    #[test]
    fn builtin_corpus_is_valid() {
        for (name, bytes) in builtin_corpus() {
            let frame = Bytes::from(bytes);
            assert!(
                RpcMsg::decode(&frame).is_ok(),
                "builtin corpus entry {name} must decode"
            );
        }
    }

    #[test]
    fn pristine_corpus_cases_decode() {
        // With mutation disabled by construction (feeding a single valid
        // frame directly), the full path must succeed.
        let corpus = builtin_corpus();
        for (_, payload) in &corpus {
            let mut stream = frame_prefix(payload.len()).unwrap().to_vec();
            stream.extend_from_slice(payload);
            let r = execute_case(&stream, 7);
            assert_eq!(r.frames, 1);
            assert_eq!(r.msgs, 1);
        }
    }

    #[test]
    fn short_run_is_reproducible() {
        let corpus: Vec<(String, Vec<u8>)> = builtin_corpus()
            .into_iter()
            .map(|(n, b)| (n.to_string(), b))
            .collect();
        let a = run(0xfeed, 2_000, &corpus, |_, _| {});
        let b = run(0xfeed, 2_000, &corpus, |_, _| {});
        assert_eq!(a, b, "same seed+corpus must reproduce the same run");
        assert!(
            a.frames > 0 && a.msgs > 0,
            "run must exercise valid paths: {a:?}"
        );
    }
}
