//! Formal model of the Network Objects distributed collector.
//!
//! This crate contains no I/O and no threads: it is the distributed
//! reference-listing algorithm as an abstract state machine — processes,
//! unordered message bags, the five-state reference life cycle
//! (`⊥ / nil / OK / ccit / ccitnil`), and the twelve transition rules —
//! together with executable versions of every invariant in the
//! correctness proof and the termination measure from the liveness proof.
//!
//! It serves three purposes:
//!
//! 1. **Oracle.** The `netobj` runtime implements this protocol; the model
//!    checks that the protocol itself is safe and live under arbitrary
//!    schedules (random walks) and exhaustively for small instances.
//! 2. **Variants.** The FIFO-channel simplification and the owner
//!    optimisations are modelled for the ablation experiments ([`fifo`],
//!    [`variants`]).
//! 3. **Baselines.** Naive distributed counting (demonstrating the
//!    premature-reclamation race) and the classic alternatives
//!    (Lermen–Maurer, weighted, indirect reference counting) are modelled
//!    for the comparison experiments ([`baselines`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cube;
pub mod explore;
pub mod faults;
pub mod fifo;
pub mod invariants;
pub mod measure;
pub mod replay;
pub mod rules;
pub mod state;
pub mod variants;

pub use explore::{assert_drained, exhaustive, random_walk, WalkPolicy};
pub use invariants::check_all;
pub use measure::termination_measure;
pub use replay::{replay_traces, ReplayReport, Replayer};
pub use rules::{apply, enabled, Transition};
pub use state::{Config, Msg, Proc, RecState, Ref};
