//! Exploration drivers: random walks and exhaustive search.
//!
//! The random walker plays both mutator (copying and dropping references
//! according to a seeded policy) and scheduler (picking among enabled
//! collector transitions — which, channels being unordered bags, covers
//! arbitrary message reorderings). The exhaustive driver enumerates every
//! reachable configuration of small instances. Both check every invariant
//! after every transition.

use std::collections::{HashSet, VecDeque};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::invariants::check_all;
use crate::measure::termination_measure;
use crate::rules::{apply, enabled, Transition};
use crate::state::{Config, Proc, Ref};

/// Statistics from one random walk.
#[derive(Debug, Default, Clone, Copy)]
pub struct WalkStats {
    /// Transitions fired in total.
    pub steps: u64,
    /// Of which mutator transitions.
    pub mutator_steps: u64,
    /// Copies performed.
    pub copies: u64,
    /// Drops performed by the driver.
    pub drops: u64,
    /// Steps taken to drain after the mutator stopped.
    pub drain_steps: u64,
}

/// Configuration of the random walker.
#[derive(Debug, Clone, Copy)]
pub struct WalkPolicy {
    /// Number of processes.
    pub nprocs: usize,
    /// Number of references (each owned by `i % nprocs`).
    pub nrefs: usize,
    /// Mutator steps before the drain phase.
    pub activity: u64,
    /// Probability that a mutator opportunity copies (vs. drops).
    pub copy_bias: f64,
    /// Check invariants after every step (slower, exhaustive checking).
    pub check_invariants: bool,
}

impl Default for WalkPolicy {
    fn default() -> Self {
        WalkPolicy {
            nprocs: 4,
            nrefs: 2,
            activity: 200,
            copy_bias: 0.6,
            check_invariants: true,
        }
    }
}

/// Runs one seeded random walk: an activity phase of interleaved mutator
/// and collector transitions, then a drain phase in which the mutator
/// drops everything and the collector must reach a quiescent state with
/// empty dirty tables (the liveness requirement).
///
/// Panics (with the violated lemma) on any invariant violation — used by
/// the property tests.
pub fn random_walk(policy: WalkPolicy, seed: u64) -> (Config, WalkStats) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let owners: Vec<usize> = (0..policy.nrefs).map(|i| i % policy.nprocs).collect();
    let mut c = Config::new(policy.nprocs, &owners);
    let mut stats = WalkStats::default();

    let check = |c: &Config, t: &Transition| {
        if policy.check_invariants {
            if let Err(e) = check_all(c) {
                panic!("invariant violated after {t:?}: {e}");
            }
        }
    };

    // Activity phase.
    for _ in 0..policy.activity {
        // The driver sometimes drops a live non-owner reference.
        if rng.gen_bool(1.0 - policy.copy_bias) {
            let holders: Vec<(Proc, Ref)> = c
                .live
                .iter()
                .copied()
                .filter(|&(p, r)| p != c.owner(r))
                .collect();
            if let Some(&(p, r)) = holders.as_slice().choose(&mut rng) {
                c.drop_ref(p, r);
                stats.drops += 1;
            }
        }
        let ts = enabled(&c);
        let Some(&t) = ts.as_slice().choose(&mut rng) else {
            continue;
        };
        // Bound the copy fan-out so walks terminate quickly.
        if matches!(t, Transition::MakeCopy(..)) && stats.copies >= policy.activity / 2 {
            continue;
        }
        apply(&mut c, t);
        stats.steps += 1;
        if t.is_mutator() {
            stats.mutator_steps += 1;
        }
        if matches!(t, Transition::MakeCopy(..)) {
            stats.copies += 1;
        }
        check(&c, &t);
    }

    // Drain phase: drop every non-owner reference, run only collector
    // transitions (plus the finalizes they enable) until quiescent.
    let holders: Vec<(Proc, Ref)> = c
        .live
        .iter()
        .copied()
        .filter(|&(p, r)| p != c.owner(r))
        .collect();
    for (p, r) in holders {
        c.drop_ref(p, r);
        stats.drops += 1;
    }
    loop {
        // Copies received during the drain re-enter the mutator's hands;
        // the driver drops them again so everything can finalize.
        let relive: Vec<(Proc, Ref)> = c
            .live
            .iter()
            .copied()
            .filter(|&(p, r)| p != c.owner(r))
            .collect();
        for (p, r) in relive {
            c.drop_ref(p, r);
            stats.drops += 1;
        }
        let ts: Vec<Transition> = enabled(&c)
            .into_iter()
            .filter(|t| !matches!(t, Transition::MakeCopy(..)))
            .collect();
        let Some(&t) = ts.as_slice().choose(&mut rng) else {
            break;
        };
        let before = termination_measure(&c);
        apply(&mut c, t);
        stats.steps += 1;
        stats.drain_steps += 1;
        if !t.is_mutator() {
            let after = termination_measure(&c);
            assert!(
                after < before,
                "termination measure did not decrease on {t:?}"
            );
        }
        check(&c, &t);
        assert!(
            stats.drain_steps < 1_000_000,
            "drain failed to terminate (liveness violation)"
        );
    }
    (c, stats)
}

/// Asserts the liveness requirement on a drained configuration: no
/// messages, no to-do entries, and — for every reference — empty dirty
/// tables at the owner.
pub fn assert_drained(c: &Config) {
    assert!(c.quiescent(), "configuration not quiescent");
    for r in c.refs() {
        let owner = c.owner(r);
        assert!(
            c.pdirty.get(&(owner, r)).map_or(true, |s| s.is_empty()),
            "liveness: pdirty({owner:?},{r:?}) not empty: {:?}",
            c.pdirty.get(&(owner, r))
        );
        assert!(
            c.tdirty.get(&(owner, r)).map_or(true, |s| s.is_empty()),
            "liveness: tdirty({owner:?},{r:?}) not empty"
        );
        for p in c.procs() {
            if p != owner {
                assert_eq!(
                    c.rec(p, r),
                    crate::state::RecState::Bot,
                    "liveness: {p:?} still holds {r:?}"
                );
            }
        }
    }
}

/// Result of an exhaustive search.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Distinct configurations visited.
    pub states: u64,
    /// Transitions explored.
    pub edges: u64,
    /// True if the search was cut off by the state budget.
    pub truncated: bool,
}

/// Exhaustively explores every configuration reachable from
/// `Config::new(nprocs, owners)` under a driver that may copy anywhere
/// and drop anything, checking all invariants at every state.
///
/// The `max_states` budget bounds the search; instances with 2–3
/// processes and one reference close in well under it.
pub fn exhaustive(nprocs: usize, owners: &[usize], max_states: u64) -> SearchStats {
    let initial = Config::new(nprocs, owners);
    let mut seen: HashSet<Config> = HashSet::new();
    let mut queue: VecDeque<Config> = VecDeque::new();
    let mut stats = SearchStats::default();
    seen.insert(initial.clone());
    queue.push_back(initial);

    while let Some(c) = queue.pop_front() {
        stats.states += 1;
        if stats.states >= max_states {
            stats.truncated = true;
            break;
        }
        if let Err(e) = check_all(&c) {
            panic!("invariant violated in reachable state: {e}\n{c:#?}");
        }
        // Successors: every enabled transition, plus every driver drop.
        let mut succs: Vec<Config> = Vec::new();
        for t in enabled(&c) {
            // Cap copy identifiers to bound the space: at most 2
            // concurrent transmissions per exploration branch.
            if matches!(t, Transition::MakeCopy(..))
                && c.count_messages(|m| matches!(m, crate::state::Msg::Copy(..))) >= 2
            {
                continue;
            }
            let mut next = c.clone();
            apply(&mut next, t);
            // Canonicalise copy ids so states differing only in id
            // numbering collapse (ids are opaque tokens).
            canonicalize_ids(&mut next);
            succs.push(next);
            stats.edges += 1;
        }
        for &(p, r) in c.live.iter() {
            if p != c.owner(r) {
                let mut next = c.clone();
                next.drop_ref(p, r);
                succs.push(next);
                stats.edges += 1;
            }
        }
        for s in succs {
            if seen.insert(s.clone()) {
                queue.push_back(s);
            }
        }
    }
    stats
}

/// Renumbers copy identifiers in first-appearance order so that
/// configurations equal up to id naming compare equal.
pub(crate) fn canonicalize_ids(c: &mut Config) {
    use crate::state::Msg;
    use std::collections::BTreeMap;
    let mut map: BTreeMap<u64, u64> = BTreeMap::new();
    let mut next = 0u64;
    let translate = |id: u64, map: &mut BTreeMap<u64, u64>, next: &mut u64| -> u64 {
        *map.entry(id).or_insert_with(|| {
            let v = *next;
            *next += 1;
            v
        })
    };
    // Collect ids in deterministic order: tdirty, blocked, copy_ack_todo,
    // channels.
    let mut ids: Vec<u64> = Vec::new();
    for set in c.tdirty.values() {
        for &(_, _, id) in set {
            ids.push(id);
        }
    }
    for set in c.blocked.values() {
        for &(id, _) in set {
            ids.push(id);
        }
    }
    for set in c.copy_ack_todo.values() {
        for &(id, _, _) in set {
            ids.push(id);
        }
    }
    for msgs in c.channels.values() {
        for m in msgs {
            if let Msg::Copy(_, id) | Msg::CopyAck(_, id) = m {
                ids.push(*id);
            }
        }
    }
    for id in ids {
        translate(id, &mut map, &mut next);
    }
    // Rewrite.
    let tdirty = std::mem::take(&mut c.tdirty);
    c.tdirty = tdirty
        .into_iter()
        .map(|(k, set)| {
            (
                k,
                set.into_iter().map(|(a, b, id)| (a, b, map[&id])).collect(),
            )
        })
        .collect();
    let blocked = std::mem::take(&mut c.blocked);
    c.blocked = blocked
        .into_iter()
        .map(|(k, set)| (k, set.into_iter().map(|(id, p)| (map[&id], p)).collect()))
        .collect();
    let cat = std::mem::take(&mut c.copy_ack_todo);
    c.copy_ack_todo = cat
        .into_iter()
        .map(|(k, set)| {
            (
                k,
                set.into_iter().map(|(id, p, r)| (map[&id], p, r)).collect(),
            )
        })
        .collect();
    for msgs in c.channels.values_mut() {
        for m in msgs.iter_mut() {
            match m {
                Msg::Copy(r, id) => *m = Msg::Copy(*r, map[id]),
                Msg::CopyAck(r, id) => *m = Msg::CopyAck(*r, map[id]),
                _ => {}
            }
        }
    }
    c.next_id = next;
    c.normalize();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_walks_preserve_invariants_and_drain() {
        for seed in 0..20 {
            let (c, stats) = random_walk(
                WalkPolicy {
                    nprocs: 3,
                    nrefs: 1,
                    activity: 60,
                    ..WalkPolicy::default()
                },
                seed,
            );
            assert_drained(&c);
            assert!(stats.steps > 0);
        }
    }

    #[test]
    fn walk_is_reproducible() {
        let a = random_walk(WalkPolicy::default(), 42).1;
        let b = random_walk(WalkPolicy::default(), 42).1;
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.copies, b.copies);
    }

    #[test]
    fn exhaustive_two_processes_one_ref() {
        // The full reachable space (with unbounded drop/re-copy cycling)
        // is large; a bounded frontier still checks every invariant on
        // tens of thousands of genuinely distinct reachable states.
        let stats = exhaustive(2, &[0], 60_000);
        assert!(stats.states > 1_000, "search should find real depth");
    }
}
