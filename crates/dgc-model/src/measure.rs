//! The termination measure (liveness).
//!
//! Definition 15 of the formal treatment assigns every configuration a
//! non-negative integer that strictly decreases on every collector
//! transition (everything except `make_copy` and `finalize`). Its
//! existence proves that collector activity always terminates; the model
//! tests check the strict decrease on every transition of random runs.

use crate::state::{Config, Msg, RecState};

/// Per-message weights.
fn msg_measure(m: &Msg) -> u64 {
    match m {
        Msg::Copy(..) => 14,
        Msg::Dirty(..) => 8,
        Msg::DirtyAck(..) => 6,
        Msg::Clean(..) => 3,
        Msg::CopyAck(..) => 1,
        Msg::CleanAck(..) => 1,
    }
}

/// Per-receive-state weights.
fn rec_measure(s: RecState) -> u64 {
    match s {
        RecState::Ok => 5,
        RecState::CcitNil => 2,
        RecState::Ccit => 1,
        RecState::Nil => 1,
        RecState::Bot => 0,
    }
}

/// The termination measure of a configuration.
///
/// `tab_measure = 9·|dirty_call_todo| + 7·|dirty_ack_todo| +
/// 2·|copy_ack_todo| + 2·|clean_ack_todo| + 2·|blocked|`, plus message
/// weights, plus receive-state weights. (`clean_call_todo` needs no
/// weight: only `finalize` adds to it.)
///
/// One adjustment to the published constants: the paper annotates
/// `do_clean_call` as changing the state OK→ccit with message weight +3
/// and state delta −4, which only balances if OK weighs 5 more than ccit
/// *and* the scheduled entry itself carries weight. We give
/// `clean_call_todo` entries weight 0 exactly as in the paper and rely on
/// rec OK=5 → ccit=1 (−4) against clean=+3: net −1. All other rules
/// likewise net at most −1 with these constants.
pub fn termination_measure(c: &Config) -> u64 {
    let mut total: u64 = 0;
    for set in c.dirty_call_todo.values() {
        total += 9 * set.len() as u64;
    }
    for set in c.dirty_ack_todo.values() {
        total += 7 * set.len() as u64;
    }
    for set in c.copy_ack_todo.values() {
        total += 2 * set.len() as u64;
    }
    for set in c.clean_ack_todo.values() {
        total += 2 * set.len() as u64;
    }
    for set in c.blocked.values() {
        total += 2 * set.len() as u64;
    }
    for msgs in c.channels.values() {
        for m in msgs {
            total += msg_measure(m);
        }
    }
    for &s in c.rec.values() {
        total += rec_measure(s);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{apply, enabled, Transition};
    use crate::state::{Proc, Ref};

    #[test]
    fn initial_measure_counts_owner_states() {
        let c = Config::new(3, &[0, 1]);
        // Two owner-side OK states, nothing else.
        assert_eq!(termination_measure(&c), 10);
    }

    #[test]
    fn collector_transitions_strictly_decrease() {
        let mut c = Config::new(3, &[0]);
        // Seed some mutator activity.
        apply(&mut c, Transition::MakeCopy(Proc(0), Proc(1), Ref(0)));
        apply(&mut c, Transition::MakeCopy(Proc(0), Proc(2), Ref(0)));
        // Drain all collector work, checking the measure at each step.
        let mut fuel = 10_000;
        loop {
            let collector: Vec<Transition> = enabled(&c)
                .into_iter()
                .filter(|t| !t.is_mutator())
                .collect();
            let Some(&t) = collector.first() else { break };
            let before = termination_measure(&c);
            apply(&mut c, t);
            let after = termination_measure(&c);
            assert!(
                after < before,
                "measure did not decrease on {t:?}: {before} -> {after}"
            );
            fuel -= 1;
            assert!(fuel > 0, "collector failed to quiesce");
        }
        assert!(c.quiescent());
    }

    #[test]
    fn mutator_transitions_may_increase() {
        let mut c = Config::new(2, &[0]);
        let before = termination_measure(&c);
        apply(&mut c, Transition::MakeCopy(Proc(0), Proc(1), Ref(0)));
        assert!(termination_measure(&c) > before);
    }
}
