//! Workload-level comparisons of the algorithm variants (§5).
//!
//! These drive the FIFO machine (with and without the owner
//! optimisations) through canonical workloads and report the control
//! traffic, regenerating the owner-optimisation table of the evaluation.

use crate::fifo::{FifoConfig, FifoStep, MsgCounts};
use crate::state::{Proc, Ref};

/// Which §5.2 optimisations to enable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OwnerOpts {
    /// §5.2.1 sender-is-owner.
    pub send: bool,
    /// §5.2.2 receiver-is-owner.
    pub recv: bool,
}

/// Canonical workloads for variant comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// The owner hands its reference to `n` clients; all drop it.
    OwnerFanout(usize),
    /// The owner sends to client 1, who forwards to 2, … to `n`
    /// (third-party chain); then everyone drops.
    Chain(usize),
    /// Client 1 holds the reference and sends it back to the owner `n`
    /// times (e.g. as arguments of repeated calls).
    ReturnToOwner(usize),
}

impl Workload {
    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            Workload::OwnerFanout(n) => format!("owner→{n} clients"),
            Workload::Chain(n) => format!("chain of {n}"),
            Workload::ReturnToOwner(n) => format!("{n}× back-to-owner"),
        }
    }
}

fn drain_deterministic(c: &mut FifoConfig) {
    let mut fuel = 1_000_000;
    while let Some(&s) = c.deliveries().first() {
        c.step(s);
        fuel -= 1;
        assert!(fuel > 0, "variant workload failed to drain");
    }
}

/// Runs `w` on the FIFO machine with `opts`, returning the message counts
/// after everything has been dropped and drained.
pub fn run(w: Workload, opts: OwnerOpts) -> MsgCounts {
    match w {
        Workload::OwnerFanout(n) => {
            let mut c = FifoConfig::new(n + 1, &[0], true);
            c.owner_send_opt = opts.send;
            c.owner_recv_opt = opts.recv;
            for i in 1..=n {
                c.step(FifoStep::Copy(Proc(0), Proc(i), Ref(0)));
            }
            drain_deterministic(&mut c);
            for i in 1..=n {
                c.live.remove(&(Proc(i), Ref(0)));
            }
            drain_deterministic(&mut c);
            c.check_drained().expect("drained");
            c.sent
        }
        Workload::Chain(n) => {
            let mut c = FifoConfig::new(n + 1, &[0], true);
            c.owner_send_opt = opts.send;
            c.owner_recv_opt = opts.recv;
            for i in 0..n {
                c.step(FifoStep::Copy(Proc(i), Proc(i + 1), Ref(0)));
                drain_deterministic(&mut c);
            }
            for i in 1..=n {
                c.live.remove(&(Proc(i), Ref(0)));
            }
            drain_deterministic(&mut c);
            c.check_drained().expect("drained");
            c.sent
        }
        Workload::ReturnToOwner(n) => {
            let mut c = FifoConfig::new(2, &[0], true);
            c.owner_send_opt = opts.send;
            c.owner_recv_opt = opts.recv;
            // Install the reference at client 1 first.
            c.step(FifoStep::Copy(Proc(0), Proc(1), Ref(0)));
            drain_deterministic(&mut c);
            for _ in 0..n {
                c.step(FifoStep::Copy(Proc(1), Proc(0), Ref(0)));
                drain_deterministic(&mut c);
            }
            c.live.remove(&(Proc(1), Ref(0)));
            drain_deterministic(&mut c);
            c.check_drained().expect("drained");
            c.sent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_counts_scale_with_clients() {
        let base = run(Workload::OwnerFanout(4), OwnerOpts::default());
        // Per client: dirty + dirty_ack + copy_ack + clean = 4 control.
        assert_eq!(base.copies, 4);
        assert_eq!(base.control(), 16);
        let opt = run(
            Workload::OwnerFanout(4),
            OwnerOpts {
                send: true,
                recv: false,
            },
        );
        // Per client: only the clean remains.
        assert_eq!(opt.control(), 4);
    }

    #[test]
    fn chain_is_unaffected_by_owner_send_opt_except_first_hop() {
        let base = run(Workload::Chain(3), OwnerOpts::default());
        let opt = run(
            Workload::Chain(3),
            OwnerOpts {
                send: true,
                recv: false,
            },
        );
        // Only the owner → client-1 hop loses its registration traffic
        // (dirty + dirty_ack + copy_ack = 3).
        assert_eq!(base.control() - opt.control(), 3);
    }

    #[test]
    fn return_to_owner_opt_removes_acks() {
        let base = run(Workload::ReturnToOwner(5), OwnerOpts::default());
        let opt = run(
            Workload::ReturnToOwner(5),
            OwnerOpts {
                send: false,
                recv: true,
            },
        );
        // Without the optimisation each return costs a copy_ack.
        assert_eq!(base.control() - opt.control(), 5);
        assert_eq!(base.copies, opt.copies);
    }

    #[test]
    fn all_workloads_safe_with_all_flag_combinations() {
        for send in [false, true] {
            for recv in [false, true] {
                let opts = OwnerOpts { send, recv };
                for w in [
                    Workload::OwnerFanout(3),
                    Workload::Chain(3),
                    Workload::ReturnToOwner(3),
                ] {
                    let counts = run(w, opts);
                    assert!(counts.copies > 0);
                }
            }
        }
    }
}
