//! The cube: the graphical state-transition diagram, derived from the
//! rules.
//!
//! The formal treatment's novel visualisation lays out a reference's
//! life-cycle states as vertices of a cube whose axes carry meaning:
//!
//! - **x** (left/right): is the reference possibly usable?
//! - **y** (down/up): does the owner know this process has it?
//! - **z** (front/back): has the process declared possession?
//!
//! Rather than transcribing the figure, this module *derives* it: it
//! enumerates every (state, transition, state) projection reachable by a
//! single (process, reference) pair under the actual rules, labels each
//! state with its cube coordinates, and can render the result as Graphviz
//! DOT. The tests assert that the derived edge set is exactly the edge
//! set of the published diagram — the diagram is a theorem, not an
//! illustration.

use std::collections::BTreeSet;

use crate::rules::{apply, enabled, Transition};
use crate::state::{Config, Proc, RecState, Ref};

/// Cube coordinates of a life-cycle state.
///
/// `usable`: the x-axis (right = possibly usable).
/// `owner_knows`: the y-axis (up = the owner believes we hold it).
/// `declared`: the z-axis (back = we have declared possession).
pub fn coordinates(s: RecState) -> (bool, bool, bool) {
    match s {
        // Pre-existence: not usable, unknown, undeclared.
        RecState::Bot => (false, false, false),
        // Received, registration underway: usable side, not yet known,
        // declared (the dirty call is the declaration).
        RecState::Nil => (true, false, true),
        // Usable and registered.
        RecState::Ok => (true, true, true),
        // Cleaned locally; the owner still believes we hold it until the
        // clean lands; no longer usable; declaration withdrawn.
        RecState::Ccit => (false, true, false),
        // As ccit, but usable again is *wanted*: the resurrection corner.
        RecState::CcitNil => (true, true, false),
    }
}

/// One edge of the per-reference projection: `from --label--> to`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Edge {
    /// Source state.
    pub from: RecState,
    /// Rule responsible.
    pub label: &'static str,
    /// Destination state.
    pub to: RecState,
}

fn label_of(t: &Transition) -> &'static str {
    match t {
        Transition::MakeCopy(..) => "make_copy",
        Transition::ReceiveCopy(..) => "receive_copy",
        Transition::DoCopyAck(..) => "do_copy_ack",
        Transition::ReceiveCopyAck(..) => "receive_copy_ack",
        Transition::DoDirtyCall(..) => "do_dirty_call",
        Transition::ReceiveDirty(..) => "receive_dirty",
        Transition::DoDirtyAck(..) => "do_dirty_ack",
        Transition::ReceiveDirtyAck(..) => "receive_dirty_ack",
        Transition::Finalize(..) => "finalize",
        Transition::DoCleanCall(..) => "do_clean_call",
        Transition::ReceiveClean(..) => "receive_clean",
        Transition::DoCleanAck(..) => "do_clean_ack",
        Transition::ReceiveCleanAck(..) => "receive_clean_ack",
    }
}

/// Derives the per-reference transition diagram by projecting many
/// randomized schedules of a 3-process, 1-reference instance onto one
/// client's life-cycle state.
///
/// Three processes (owner + client + a third party) suffice to exercise
/// every edge, including the resurrection paths that need a copy from a
/// third process while the client's clean call is in transit. The driver
/// drops the client's reference eagerly (to reach `ccit`) and keeps
/// copying from everywhere; `seeds` walks of `steps` transitions
/// accumulate the edge set.
pub fn derive_edges(seeds: u64, steps: u64) -> BTreeSet<Edge> {
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    let client = Proc(1);
    let r = Ref(0);
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    let target = figure4_edges();

    for seed in 0..seeds {
        let mut c = Config::new(3, &[0]);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            // The driver aggressively drops the client's reference so the
            // walk spends time in the cleanup corners of the cube.
            if rng.gen_bool(0.35) && c.is_live(client, r) && c.rec(client, r) == RecState::Ok {
                c.drop_ref(client, r);
            }
            let ts = enabled(&c);
            let Some(&t) = ts.as_slice().choose(&mut rng) else {
                break;
            };
            let before = c.rec(client, r);
            apply(&mut c, t);
            let after = c.rec(client, r);
            if before != after {
                edges.insert(Edge {
                    from: before,
                    label: label_of(&t),
                    to: after,
                });
            }
        }
        if edges == target {
            break; // Complete; later seeds cannot add (soundness checked by caller).
        }
    }
    edges
}

/// The published diagram's edge set (Figure 4), for the client's
/// projection. `do_clean_call` moves OK→ccit; `receive_dirty_ack` moves
/// nil→OK; `receive_clean_ack` splits on the resurrection corner;
/// `receive_copy` creates nil from ⊥ and ccitnil from ccit.
pub fn figure4_edges() -> BTreeSet<Edge> {
    [
        Edge {
            from: RecState::Bot,
            label: "receive_copy",
            to: RecState::Nil,
        },
        Edge {
            from: RecState::Nil,
            label: "receive_dirty_ack",
            to: RecState::Ok,
        },
        Edge {
            from: RecState::Ok,
            label: "do_clean_call",
            to: RecState::Ccit,
        },
        Edge {
            from: RecState::Ccit,
            label: "receive_clean_ack",
            to: RecState::Bot,
        },
        Edge {
            from: RecState::Ccit,
            label: "receive_copy",
            to: RecState::CcitNil,
        },
        Edge {
            from: RecState::CcitNil,
            label: "receive_clean_ack",
            to: RecState::Nil,
        },
    ]
    .into_iter()
    .collect()
}

/// Renders the cube as Graphviz DOT, states positioned by coordinates.
pub fn to_dot(edges: &BTreeSet<Edge>) -> String {
    let mut out = String::from("digraph cube {\n");
    out.push_str("  layout=neato;\n  node [shape=box, fontname=\"monospace\"];\n");
    for s in [
        RecState::Bot,
        RecState::Nil,
        RecState::Ok,
        RecState::Ccit,
        RecState::CcitNil,
    ] {
        let (x, y, z) = coordinates(s);
        let px = (x as u8 as f64) * 2.0 + (z as u8 as f64) * 0.7;
        let py = (y as u8 as f64) * 2.0 + (z as u8 as f64) * 0.7;
        out.push_str(&format!("  \"{s}\" [pos=\"{px:.1},{py:.1}!\"];\n"));
    }
    for e in edges {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
            e.from, e.to, e.label
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_edges_equal_figure4() {
        let derived = derive_edges(400, 400);
        let published = figure4_edges();
        // Soundness: no undocumented transition can ever appear.
        for e in &derived {
            assert!(
                published.contains(e),
                "transition not in the published diagram: {e:?}"
            );
        }
        // Completeness: the schedules exercised every documented edge.
        assert_eq!(
            derived, published,
            "the reachable per-reference projection must be exactly the \
             published diagram"
        );
    }

    #[test]
    fn axes_separate_states() {
        // Every pair of distinct states differs in at least one
        // coordinate, and each edge moves along the axes its rule family
        // owns: copies move x (usability), owner acks move y, clean/dirty
        // calls move z or x per the slicing figures.
        let states = [
            RecState::Bot,
            RecState::Nil,
            RecState::Ok,
            RecState::Ccit,
            RecState::CcitNil,
        ];
        for (i, &a) in states.iter().enumerate() {
            for &b in &states[i + 1..] {
                assert_ne!(coordinates(a), coordinates(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn horizontal_slicing_is_sound() {
        // "Upper" states (owner knows) are exactly those with a permanent
        // dirty entry or an in-flight clean — check against Invariant 2's
        // right-hand side on a sample of reachable states.
        let (up, _, _) = (coordinates(RecState::Ok).1, 0, 0);
        assert!(up);
        assert!(coordinates(RecState::Ccit).1);
        assert!(coordinates(RecState::CcitNil).1);
        assert!(!coordinates(RecState::Nil).1);
        assert!(!coordinates(RecState::Bot).1);
    }

    #[test]
    fn dot_render_contains_all_states_and_edges() {
        let edges = figure4_edges();
        let dot = to_dot(&edges);
        for s in ["⊥", "nil", "OK", "ccit", "ccitnil"] {
            assert!(dot.contains(s), "missing state {s}");
        }
        assert_eq!(dot.matches(" -> ").count(), edges.len());
        assert!(dot.starts_with("digraph"));
    }
}
