//! Baseline algorithms for the comparison experiments.
//!
//! - [`naive`]: the broken straw-man — naive distributed reference
//!   counting with unsynchronised increment/decrement messages — whose
//!   race (Figure 1 of the algorithm's formal treatment) motivates the
//!   whole design. We measure how often the race actually reclaims a live
//!   object as a function of network jitter.
//! - [`lermen_maurer`]: the earliest safe algorithm; the *sender* notifies
//!   the owner and the receiver defers decrements until increments are
//!   acknowledged.
//! - [`wrc`]: weighted reference counting — copies carry weight, so no
//!   message is needed on copy; discards send the weight back; weight
//!   underflow costs extra traffic.
//! - [`irc`]: indirect reference counting — a diffusion tree; discards
//!   decrement the parent; interior nodes must persist as *zombies* until
//!   their children die.
//!
//! These are message-accounting models (per-workload totals), not full
//! state machines: the comparison experiments report message counts and
//! zombie counts, which these compute exactly.

/// Message/space cost of one workload under one algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Application copies performed (same for every algorithm).
    pub copies: u64,
    /// Control messages: everything the collector sends.
    pub control_msgs: u64,
    /// Round trips on the critical path of a first-time copy (latency
    /// the mutator can observe).
    pub blocking_rtts: u64,
    /// Zombie records retained after all drops (IRC/WRC indirections).
    pub zombies: u64,
}

/// The comparison workloads (mirrors `variants::Workload`, but baselines
/// have no owner/third-party distinction beyond who holds the reference).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Owner hands the reference to `n` clients directly; all drop.
    Fanout(usize),
    /// Owner → 1 → 2 → … → n, then all drop (drop order: upstream first,
    /// the worst case for diffusion trees).
    Chain(usize),
    /// `n` copies all to the same client, who then drops once.
    Repeated(usize),
}

impl Workload {
    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            Workload::Fanout(n) => format!("fan-out to {n}"),
            Workload::Chain(n) => format!("chain of {n}"),
            Workload::Repeated(n) => format!("{n}× to same client"),
        }
    }
}

/// Birrell's algorithm (reference listing, dirty/clean calls).
pub mod birrell {
    use super::{Cost, Workload};

    /// Exact per-workload costs of the base algorithm.
    ///
    /// First receipt: dirty + dirty_ack before usable (1 blocking RTT),
    /// copy_ack after. Re-receipt while held: copy_ack only. Last drop:
    /// clean + clean_ack.
    pub fn cost(w: Workload) -> Cost {
        match w {
            Workload::Fanout(n) | Workload::Chain(n) => Cost {
                copies: n as u64,
                // Per process: dirty, dirty_ack, copy_ack, clean,
                // clean_ack.
                control_msgs: 5 * n as u64,
                blocking_rtts: n as u64,
                zombies: 0,
            },
            Workload::Repeated(n) => Cost {
                copies: n as u64,
                // First copy registers (dirty/dirty_ack/copy_ack), the
                // remaining n−1 need only copy_acks; one clean pair at
                // the end.
                control_msgs: 3 + (n as u64 - 1) + 2,
                blocking_rtts: 1,
                zombies: 0,
            },
        }
    }
}

/// Lermen–Maurer (1986): sender-initiated increments with acks.
pub mod lermen_maurer {
    use super::{Cost, Workload};

    /// Per copy: INC (sender→owner) + ACK (owner→receiver). Per discard:
    /// DEC once the receiver has matched acks to receipts. The receiver
    /// never blocks (the ack arrives independently), but a discard may be
    /// deferred — we charge no blocking RTTs.
    pub fn cost(w: Workload) -> Cost {
        let n = match w {
            Workload::Fanout(n) | Workload::Chain(n) | Workload::Repeated(n) => n as u64,
        };
        match w {
            Workload::Fanout(_) | Workload::Chain(_) => Cost {
                copies: n,
                // Per copy: inc + ack; per process: one dec.
                control_msgs: 2 * n + n,
                blocking_rtts: 0,
                zombies: 0,
            },
            Workload::Repeated(_) => Cost {
                copies: n,
                // Every copy still costs inc + ack; single dec at the end.
                control_msgs: 2 * n + 1,
                blocking_rtts: 0,
                zombies: 0,
            },
        }
    }
}

/// Weighted reference counting (Bevan / Watson & Watson 1987).
pub mod wrc {
    use super::{Cost, Workload};

    /// Total weight carried by a fresh object (2^32 in our accounting).
    pub const INITIAL_WEIGHT_LOG2: u32 = 32;

    /// Per copy: zero messages (weight splits). Per discard: one DEC
    /// carrying the weight home. A chain halves weight per hop: beyond
    /// `INITIAL_WEIGHT_LOG2` hops each further copy needs an indirection
    /// cell (zombie) or a "more weight" round trip; we model the
    /// indirection choice.
    pub fn cost(w: Workload) -> Cost {
        match w {
            Workload::Fanout(n) | Workload::Repeated(n) => Cost {
                copies: n as u64,
                control_msgs: match w {
                    Workload::Fanout(_) => n as u64, // one dec per client
                    _ => 1,                          // single holder, one dec
                },
                blocking_rtts: 0,
                zombies: 0,
            },
            Workload::Chain(n) => {
                let overflow_hops = (n as u64).saturating_sub(INITIAL_WEIGHT_LOG2 as u64);
                Cost {
                    copies: n as u64,
                    control_msgs: n as u64, // one dec per process on drop
                    blocking_rtts: 0,
                    zombies: overflow_hops, // indirection cells past 2^32
                }
            }
        }
    }
}

/// Indirect reference counting (Piquer 1991): diffusion trees.
pub mod irc {
    use super::{Cost, Workload};

    /// Per copy: zero messages (the copy itself carries the parent
    /// pointer; the sender increments a local counter). Per discard: one
    /// DEC to the parent — but an interior node whose children survive
    /// becomes a zombie until they die.
    pub fn cost(w: Workload) -> Cost {
        match w {
            Workload::Fanout(n) => Cost {
                copies: n as u64,
                control_msgs: n as u64, // each leaf decs the owner
                blocking_rtts: 0,
                zombies: 0,
            },
            Workload::Chain(n) => Cost {
                copies: n as u64,
                control_msgs: n as u64, // each node eventually decs parent
                blocking_rtts: 0,
                // Dropping upstream-first leaves every interior node a
                // zombie until its child dies: n−1 zombies at peak.
                zombies: (n as u64).saturating_sub(1),
            },
            Workload::Repeated(n) => Cost {
                copies: n as u64,
                // The receiver counts n receipts from the same parent and
                // sends one dec carrying the count (Piquer batches).
                control_msgs: 1,
                blocking_rtts: 0,
                zombies: 0,
            },
        }
    }
}

/// The naive-counting race (Figure 1): a timing simulation.
pub mod naive {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// One trial of the triangular scenario: P2 holds the only listed
    /// reference to an object owned by P1 (count = 1). P2 sends the
    /// reference to P3 and posts INC to P1; P3, on receipt, immediately
    /// discards and posts DEC to P1. If the DEC arrives first, the count
    /// dips to zero and P1 reclaims a live object.
    ///
    /// `jitter` is the ratio of random per-message latency spread to the
    /// base latency: with zero jitter the INC (posted earlier) always
    /// wins; as jitter grows, the race flips more often.
    pub fn race_probability(trials: u32, jitter: f64, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut premature = 0u32;
        let base = 1.0;
        for _ in 0..trials {
            let lat = |rng: &mut SmallRng| base * (1.0 + jitter * rng.gen::<f64>());
            // INC leaves P2 at t=0.
            let inc_arrival = lat(&mut rng);
            // The copy leaves P2 at t=0; P3 discards immediately on
            // receipt and the DEC then travels to P1.
            let copy_arrival = lat(&mut rng);
            let dec_arrival = copy_arrival + lat(&mut rng);
            if dec_arrival < inc_arrival {
                premature += 1;
            }
        }
        f64::from(premature) / f64::from(trials)
    }

    /// The same scenario with both P2→P3 and the discard happening after
    /// the object was *already* transferred once (deeper pipelines make
    /// the race more likely): `hops` extra forwarding steps.
    pub fn race_probability_chain(trials: u32, jitter: f64, hops: u32, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut premature = 0u32;
        for _ in 0..trials {
            let lat = |rng: &mut SmallRng| 1.0 + jitter * rng.gen::<f64>();
            // The INC from the *last* forwarder.
            let mut t = 0.0;
            for _ in 0..hops {
                t += lat(&mut rng); // forwarding chain
            }
            let inc_arrival = t + lat(&mut rng);
            let dec_arrival = t + lat(&mut rng) + lat(&mut rng);
            if dec_arrival < inc_arrival {
                premature += 1;
            }
        }
        f64::from(premature) / f64::from(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_race_grows_with_jitter() {
        let low = naive::race_probability(20_000, 0.1, 7);
        let high = naive::race_probability(20_000, 4.0, 7);
        assert!(low < high, "low={low} high={high}");
        assert_eq!(naive::race_probability(20_000, 0.0, 7), 0.0);
        assert!(high > 0.05, "high jitter must exhibit the race: {high}");
    }

    #[test]
    fn naive_race_is_reproducible() {
        assert_eq!(
            naive::race_probability(1000, 2.0, 1),
            naive::race_probability(1000, 2.0, 1)
        );
    }

    #[test]
    fn birrell_repeated_copies_avoid_reregistration() {
        let c = birrell::cost(Workload::Repeated(10));
        assert_eq!(c.blocking_rtts, 1, "only the first copy blocks");
        let lm = lermen_maurer::cost(Workload::Repeated(10));
        assert!(
            c.control_msgs < lm.control_msgs,
            "reference listing beats per-copy INC/ACK on repeats"
        );
    }

    #[test]
    fn wrc_copies_are_free_until_underflow() {
        let short = wrc::cost(Workload::Chain(8));
        assert_eq!(short.zombies, 0);
        let long = wrc::cost(Workload::Chain(40));
        assert_eq!(long.zombies, 8, "hops past 2^32 need indirections");
    }

    #[test]
    fn irc_chains_leave_zombies() {
        let c = irc::cost(Workload::Chain(10));
        assert_eq!(c.zombies, 9);
        let b = birrell::cost(Workload::Chain(10));
        assert_eq!(b.zombies, 0, "reference listing has no zombies");
    }

    #[test]
    fn fanout_control_ordering() {
        // On fan-out, WRC/IRC send the least control traffic, LM sits in
        // the middle, Birrell pays for its acks — matching the paper's
        // trade-off discussion (Birrell buys fault tolerance and
        // exactness with those messages).
        let n = Workload::Fanout(16);
        assert!(wrc::cost(n).control_msgs <= irc::cost(n).control_msgs);
        assert!(irc::cost(n).control_msgs < lermen_maurer::cost(n).control_msgs);
        assert!(lermen_maurer::cost(n).control_msgs < birrell::cost(n).control_msgs);
    }
}
