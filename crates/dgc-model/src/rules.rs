//! The transition rules, transcribed from the formal specification
//! (Figures 9–12 of the paper's presentation of Birrell's algorithm).
//!
//! Each rule is a guard plus an atomic state transformation. The
//! `enabled` function enumerates every fireable rule instance in a
//! configuration; `apply` fires one. `make_copy` and `finalize` are the
//! *mutator-driven* transitions; everything else is collector work.

use crate::state::{Config, CopyId, Msg, Proc, RecState, Ref};

/// One rule instance (rule name + parameters).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Transition {
    /// `make_copy(p1, p2, r)`: the mutator sends a reference.
    MakeCopy(Proc, Proc, Ref),
    /// `receive_copy(p1, p2, r, id)`.
    ReceiveCopy(Proc, Proc, Ref, CopyId),
    /// `do_copy_ack(p1, p2, r, id)`.
    DoCopyAck(Proc, Proc, Ref, CopyId),
    /// `receive_copy_ack(p1, p2, r, id)` — `p1` acked, `p2` sent the copy.
    ReceiveCopyAck(Proc, Proc, Ref, CopyId),
    /// `do_dirty_call(p, r)`.
    DoDirtyCall(Proc, Ref),
    /// `receive_dirty(p1, p2, r)` — `p2 = owner(r)`.
    ReceiveDirty(Proc, Proc, Ref),
    /// `do_dirty_ack(p1, p2, r)` — `p1 = owner(r)`.
    DoDirtyAck(Proc, Proc, Ref),
    /// `receive_dirty_ack(p1, p2, r)` — from owner `p1` to client `p2`.
    ReceiveDirtyAck(Proc, Proc, Ref),
    /// `finalize(p, r)`: the local collector notices unreachability.
    Finalize(Proc, Ref),
    /// `do_clean_call(p, r)`.
    DoCleanCall(Proc, Ref),
    /// `receive_clean(p1, p2, r)` — `p2 = owner(r)`.
    ReceiveClean(Proc, Proc, Ref),
    /// `do_clean_ack(p1, p2, r)` — `p1 = owner(r)`.
    DoCleanAck(Proc, Proc, Ref),
    /// `receive_clean_ack(p1, p2, r)` — from owner `p1` to client `p2`.
    ReceiveCleanAck(Proc, Proc, Ref),
}

impl Transition {
    /// True for the transitions driven by the application/local collector
    /// (`make_copy`, `finalize`): the liveness proof shows all *other*
    /// transition sequences terminate.
    pub fn is_mutator(&self) -> bool {
        matches!(self, Transition::MakeCopy(..) | Transition::Finalize(..))
    }
}

/// Enumerates every enabled transition of `c`.
pub fn enabled(c: &Config) -> Vec<Transition> {
    let mut out = Vec::new();

    // Message-receipt rules: scan channels.
    for (&(from, to), msgs) in &c.channels {
        let mut seen = std::collections::BTreeSet::new();
        for &m in msgs {
            if !seen.insert(m) {
                continue; // A duplicate enables the same instance.
            }
            match m {
                Msg::Copy(r, id) => out.push(Transition::ReceiveCopy(from, to, r, id)),
                Msg::CopyAck(r, id) => out.push(Transition::ReceiveCopyAck(from, to, r, id)),
                Msg::Dirty(r) => {
                    if c.owner(r) == to {
                        out.push(Transition::ReceiveDirty(from, to, r));
                    }
                }
                Msg::DirtyAck(r) => out.push(Transition::ReceiveDirtyAck(from, to, r)),
                Msg::Clean(r) => {
                    if c.owner(r) == to {
                        out.push(Transition::ReceiveClean(from, to, r));
                    }
                }
                Msg::CleanAck(r) => out.push(Transition::ReceiveCleanAck(from, to, r)),
            }
        }
    }

    // To-do tables.
    for (&p, set) in &c.copy_ack_todo {
        for &(id, peer, r) in set {
            out.push(Transition::DoCopyAck(p, peer, r, id));
        }
    }
    for (&p, set) in &c.dirty_ack_todo {
        for &(peer, r) in set {
            out.push(Transition::DoDirtyAck(p, peer, r));
        }
    }
    for (&p, set) in &c.clean_ack_todo {
        for &(peer, r) in set {
            out.push(Transition::DoCleanAck(p, peer, r));
        }
    }
    for (&p, set) in &c.dirty_call_todo {
        for &r in set {
            // Note 5: dirty calls are postponed while in `ccitnil`.
            if c.rec(p, r) != RecState::CcitNil {
                out.push(Transition::DoDirtyCall(p, r));
            }
        }
    }
    for (&p, set) in &c.clean_call_todo {
        for &r in set {
            out.push(Transition::DoCleanCall(p, r));
        }
    }

    // Mutator rules.
    for p1 in c.procs() {
        for r in c.refs() {
            if c.rec(p1, r) == RecState::Ok {
                // The mutator can only send references it still holds
                // (`locallyLive`): a dropped reference may be awaiting
                // cleanup and must not be re-transmitted.
                if c.is_live(p1, r) {
                    for p2 in c.procs() {
                        if p2 != p1 {
                            out.push(Transition::MakeCopy(p1, p2, r));
                        }
                    }
                }
                // The transient dirty table is a root for the local
                // collector: while p1 has transmissions of r in flight,
                // the reference stays locally reachable and `finalize`
                // cannot fire (this is what makes Lemma 7 inductive).
                let pinned = c.tdirty.get(&(p1, r)).is_some_and(|s| !s.is_empty());
                if !c.is_live(p1, r)
                    && !pinned
                    && p1 != c.owner(r)
                    && !c.clean_call_todo.get(&p1).is_some_and(|s| s.contains(&r))
                {
                    out.push(Transition::Finalize(p1, r));
                }
            }
        }
    }

    out
}

/// Fires `t` on `c`.
///
/// # Panics
///
/// Panics if `t` is not enabled (violated guard) — model-level bugs must
/// be loud.
pub fn apply(c: &mut Config, t: Transition) {
    match t {
        Transition::MakeCopy(p1, p2, r) => {
            assert_ne!(p1, p2, "make_copy requires distinct processes");
            assert_eq!(c.rec(p1, r), RecState::Ok, "make_copy requires OK");
            assert!(c.is_live(p1, r), "mutator can only send held references");
            let id = c.next_id;
            c.next_id += 1;
            c.tdirty.entry((p1, r)).or_default().insert((p1, p2, id));
            c.post(p1, p2, Msg::Copy(r, id));
        }
        Transition::ReceiveCopy(p1, p2, r, id) => {
            c.receive(p1, p2, Msg::Copy(r, id));
            // The process now holds the reference; the mutator sees it.
            c.mark_live(p2, r);
            match c.rec(p2, r) {
                RecState::Nil | RecState::CcitNil => {
                    c.blocked.entry((p2, r)).or_default().insert((id, p1));
                }
                s @ (RecState::Bot | RecState::Ccit) => {
                    let next = if s == RecState::Bot {
                        RecState::Nil
                    } else {
                        RecState::CcitNil
                    };
                    c.set_rec(p2, r, next);
                    c.dirty_call_todo.entry(p2).or_default().insert(r);
                    c.blocked.entry((p2, r)).or_default().insert((id, p1));
                }
                RecState::Ok => {
                    // Note 4: cancel a scheduled (unsent) clean call — the
                    // resurrection optimisation.
                    if let Some(set) = c.clean_call_todo.get_mut(&p2) {
                        set.remove(&r);
                    }
                    c.copy_ack_todo.entry(p2).or_default().insert((id, p1, r));
                }
            }
        }
        Transition::DoCopyAck(p1, p2, r, id) => {
            let removed = c
                .copy_ack_todo
                .get_mut(&p1)
                .is_some_and(|s| s.remove(&(id, p2, r)));
            assert!(removed, "do_copy_ack requires a scheduled ack");
            c.post(p1, p2, Msg::CopyAck(r, id));
        }
        Transition::ReceiveCopyAck(p1, p2, r, id) => {
            c.receive(p1, p2, Msg::CopyAck(r, id));
            if let Some(set) = c.tdirty.get_mut(&(p2, r)) {
                set.remove(&(p2, p1, id));
                if set.is_empty() {
                    c.tdirty.remove(&(p2, r));
                }
            }
        }
        Transition::DoDirtyCall(p, r) => {
            assert_ne!(c.rec(p, r), RecState::CcitNil, "postponed in ccitnil");
            let removed = c.dirty_call_todo.get_mut(&p).is_some_and(|s| s.remove(&r));
            assert!(removed, "do_dirty_call requires a scheduled call");
            let owner = c.owner(r);
            c.post(p, owner, Msg::Dirty(r));
        }
        Transition::ReceiveDirty(p1, p2, r) => {
            assert_eq!(c.owner(r), p2, "dirty goes to the owner");
            c.receive(p1, p2, Msg::Dirty(r));
            c.pdirty.entry((p2, r)).or_default().insert(p1);
            c.dirty_ack_todo.entry(p2).or_default().insert((p1, r));
        }
        Transition::DoDirtyAck(p1, p2, r) => {
            let removed = c
                .dirty_ack_todo
                .get_mut(&p1)
                .is_some_and(|s| s.remove(&(p2, r)));
            assert!(removed, "do_dirty_ack requires a scheduled ack");
            c.post(p1, p2, Msg::DirtyAck(r));
        }
        Transition::ReceiveDirtyAck(p1, p2, r) => {
            c.receive(p1, p2, Msg::DirtyAck(r));
            let blocked = c.blocked.remove(&(p2, r)).unwrap_or_default();
            let acks = c.copy_ack_todo.entry(p2).or_default();
            for (id, sender) in blocked {
                acks.insert((id, sender, r));
            }
            c.set_rec(p2, r, RecState::Ok);
        }
        Transition::Finalize(p, r) => {
            assert!(!c.is_live(p, r), "finalize requires unreachability");
            assert!(
                c.tdirty.get(&(p, r)).map_or(true, |s| s.is_empty()),
                "transient dirty entries keep the reference locally reachable"
            );
            assert_eq!(c.rec(p, r), RecState::Ok);
            assert_ne!(p, c.owner(r));
            let added = c.clean_call_todo.entry(p).or_default().insert(r);
            assert!(added, "finalize must not refire");
        }
        Transition::DoCleanCall(p, r) => {
            let removed = c.clean_call_todo.get_mut(&p).is_some_and(|s| s.remove(&r));
            assert!(removed, "do_clean_call requires a scheduled call");
            // Assertion from the rule body: the state was OK.
            assert_eq!(c.rec(p, r), RecState::Ok);
            c.set_rec(p, r, RecState::Ccit);
            let owner = c.owner(r);
            c.post(p, owner, Msg::Clean(r));
        }
        Transition::ReceiveClean(p1, p2, r) => {
            assert_eq!(c.owner(r), p2, "clean goes to the owner");
            c.receive(p1, p2, Msg::Clean(r));
            if let Some(set) = c.pdirty.get_mut(&(p2, r)) {
                set.remove(&p1);
                if set.is_empty() {
                    c.pdirty.remove(&(p2, r));
                }
            }
            c.clean_ack_todo.entry(p2).or_default().insert((p1, r));
        }
        Transition::DoCleanAck(p1, p2, r) => {
            let removed = c
                .clean_ack_todo
                .get_mut(&p1)
                .is_some_and(|s| s.remove(&(p2, r)));
            assert!(removed, "do_clean_ack requires a scheduled ack");
            c.post(p1, p2, Msg::CleanAck(r));
        }
        Transition::ReceiveCleanAck(p1, p2, r) => {
            c.receive(p1, p2, Msg::CleanAck(r));
            match c.rec(p2, r) {
                RecState::CcitNil => c.set_rec(p2, r, RecState::Nil),
                RecState::Ccit => c.set_rec(p2, r, RecState::Bot),
                other => panic!("clean_ack in unexpected state {other}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fires the unique enabled instance matching `f`, panicking if the
    /// count differs from one.
    fn fire(c: &mut Config, f: impl Fn(&Transition) -> bool) -> Transition {
        let matches: Vec<Transition> = enabled(c).into_iter().filter(|t| f(t)).collect();
        assert_eq!(matches.len(), 1, "expected exactly one match: {matches:?}");
        apply(c, matches[0]);
        matches[0]
    }

    /// Walks one reference through its full life cycle
    /// `⊥ → nil → OK → ccit → ⊥` and checks each intermediate state.
    #[test]
    fn full_life_cycle() {
        let mut c = Config::new(2, &[0]);
        let (owner, client, r) = (Proc(0), Proc(1), Ref(0));

        fire(
            &mut c,
            |t| matches!(t, Transition::MakeCopy(_, p2, _) if *p2 == client),
        );
        assert_eq!(c.tdirty[&(owner, r)].len(), 1);

        fire(&mut c, |t| matches!(t, Transition::ReceiveCopy(..)));
        assert_eq!(c.rec(client, r), RecState::Nil);

        fire(&mut c, |t| matches!(t, Transition::DoDirtyCall(..)));
        fire(&mut c, |t| matches!(t, Transition::ReceiveDirty(..)));
        assert!(c.pdirty[&(owner, r)].contains(&client));

        fire(&mut c, |t| matches!(t, Transition::DoDirtyAck(..)));
        fire(&mut c, |t| matches!(t, Transition::ReceiveDirtyAck(..)));
        assert_eq!(c.rec(client, r), RecState::Ok);

        // The copy ack was deferred until after the dirty ack (Note 7).
        fire(&mut c, |t| matches!(t, Transition::DoCopyAck(..)));
        fire(&mut c, |t| matches!(t, Transition::ReceiveCopyAck(..)));
        assert!(!c.tdirty.contains_key(&(owner, r)), "transient released");

        // The mutator drops the reference; the collector cleans up.
        c.drop_ref(client, r);
        fire(&mut c, |t| matches!(t, Transition::Finalize(..)));
        fire(&mut c, |t| matches!(t, Transition::DoCleanCall(..)));
        assert_eq!(c.rec(client, r), RecState::Ccit);
        fire(&mut c, |t| matches!(t, Transition::ReceiveClean(..)));
        assert!(!c.pdirty.contains_key(&(owner, r)), "dirty set emptied");
        fire(&mut c, |t| matches!(t, Transition::DoCleanAck(..)));
        fire(&mut c, |t| matches!(t, Transition::ReceiveCleanAck(..)));
        assert_eq!(c.rec(client, r), RecState::Bot);
        assert!(c.quiescent());
    }

    /// A copy that arrives while a clean call is in transit must travel
    /// `ccit → ccitnil`, postpone the dirty call, and restart the cycle
    /// after the clean ack (the state Birrell's description lacked).
    #[test]
    fn ccitnil_resurrection() {
        let mut c = Config::new(3, &[0]);
        let (owner, b, client, r) = (Proc(0), Proc(1), Proc(2), Ref(0));

        // Install the reference at `client` and also at `b`.
        for target in [client, b] {
            apply(&mut c, Transition::MakeCopy(owner, target, r));
        }
        let ids: Vec<_> = c
            .channels
            .iter()
            .flat_map(|(k, v)| {
                v.iter().filter_map(move |m| match m {
                    Msg::Copy(_, id) => Some((k.1, *id)),
                    _ => None,
                })
            })
            .collect();
        for (to, id) in ids {
            apply(&mut c, Transition::ReceiveCopy(owner, to, r, id));
            apply(&mut c, Transition::DoDirtyCall(to, r));
            apply(&mut c, Transition::ReceiveDirty(to, owner, r));
            apply(&mut c, Transition::DoDirtyAck(owner, to, r));
            apply(&mut c, Transition::ReceiveDirtyAck(owner, to, r));
            apply(&mut c, Transition::DoCopyAck(to, owner, r, id));
            apply(&mut c, Transition::ReceiveCopyAck(to, owner, r, id));
        }
        assert!(c.quiescent());

        // Client drops the ref and its clean call enters transit; then a
        // copy from `b` arrives.
        c.drop_ref(client, r);
        apply(&mut c, Transition::Finalize(client, r));
        apply(&mut c, Transition::DoCleanCall(client, r));
        assert_eq!(c.rec(client, r), RecState::Ccit);

        apply(&mut c, Transition::MakeCopy(b, client, r));
        let id = c.next_id - 1;
        apply(&mut c, Transition::ReceiveCopy(b, client, r, id));
        assert_eq!(c.rec(client, r), RecState::CcitNil);

        // Note 5: the dirty call must NOT be fireable in ccitnil.
        assert!(
            !enabled(&c)
                .iter()
                .any(|t| matches!(t, Transition::DoDirtyCall(p, _) if *p == client)),
            "dirty postponed while ccitnil"
        );

        // The clean completes; then the new registration proceeds.
        apply(&mut c, Transition::ReceiveClean(client, owner, r));
        apply(&mut c, Transition::DoCleanAck(owner, client, r));
        apply(&mut c, Transition::ReceiveCleanAck(owner, client, r));
        assert_eq!(c.rec(client, r), RecState::Nil);
        apply(&mut c, Transition::DoDirtyCall(client, r));
        apply(&mut c, Transition::ReceiveDirty(client, owner, r));
        apply(&mut c, Transition::DoDirtyAck(owner, client, r));
        apply(&mut c, Transition::ReceiveDirtyAck(owner, client, r));
        assert_eq!(c.rec(client, r), RecState::Ok);
        assert!(c.pdirty[&(owner, r)].contains(&client));
    }

    /// Receiving a copy while OK with a *scheduled* (unsent) clean call
    /// cancels the clean — the Note 4 optimisation.
    #[test]
    fn scheduled_clean_cancelled_by_copy() {
        let mut c = Config::new(3, &[0]);
        let (owner, b, client, r) = (Proc(0), Proc(1), Proc(2), Ref(0));
        // Bring client to OK.
        apply(&mut c, Transition::MakeCopy(owner, client, r));
        apply(&mut c, Transition::ReceiveCopy(owner, client, r, 0));
        apply(&mut c, Transition::DoDirtyCall(client, r));
        apply(&mut c, Transition::ReceiveDirty(client, owner, r));
        apply(&mut c, Transition::DoDirtyAck(owner, client, r));
        apply(&mut c, Transition::ReceiveDirtyAck(owner, client, r));
        // Bring b to OK the same way.
        apply(&mut c, Transition::MakeCopy(owner, b, r));
        apply(&mut c, Transition::ReceiveCopy(owner, b, r, 1));
        apply(&mut c, Transition::DoDirtyCall(b, r));
        apply(&mut c, Transition::ReceiveDirty(b, owner, r));
        apply(&mut c, Transition::DoDirtyAck(owner, b, r));
        apply(&mut c, Transition::ReceiveDirtyAck(owner, b, r));

        // Schedule (but do not send) the client's clean.
        c.drop_ref(client, r);
        apply(&mut c, Transition::Finalize(client, r));
        assert!(c.clean_call_todo[&client].contains(&r));

        // A copy from b arrives first: the clean is cancelled.
        apply(&mut c, Transition::MakeCopy(b, client, r));
        let id = c.next_id - 1;
        apply(&mut c, Transition::ReceiveCopy(b, client, r, id));
        assert!(!c.clean_call_todo[&client].contains(&r));
        assert_eq!(c.rec(client, r), RecState::Ok);
    }

    #[test]
    fn finalize_does_not_refire() {
        let mut c = Config::new(2, &[0]);
        let (owner, client, r) = (Proc(0), Proc(1), Ref(0));
        apply(&mut c, Transition::MakeCopy(owner, client, r));
        apply(&mut c, Transition::ReceiveCopy(owner, client, r, 0));
        apply(&mut c, Transition::DoDirtyCall(client, r));
        apply(&mut c, Transition::ReceiveDirty(client, owner, r));
        apply(&mut c, Transition::DoDirtyAck(owner, client, r));
        apply(&mut c, Transition::ReceiveDirtyAck(owner, client, r));
        c.drop_ref(client, r);
        apply(&mut c, Transition::Finalize(client, r));
        // The guard `r ∉ clean_call_todo` suppresses a second finalize.
        assert!(!enabled(&c)
            .iter()
            .any(|t| matches!(t, Transition::Finalize(..))));
    }

    #[test]
    fn owner_never_finalizes_its_own_reference() {
        let mut c = Config::new(2, &[0]);
        c.drop_ref(Proc(0), Ref(0));
        assert!(!enabled(&c)
            .iter()
            .any(|t| matches!(t, Transition::Finalize(p, _) if *p == Proc(0))));
    }
}
