//! The §5.1 variant: reliable FIFO channels.
//!
//! With order-preserving channels, clean calls cannot overtake dirty calls
//! between the same pair of processes, so:
//!
//! - unmarshaling never blocks — a received reference is immediately
//!   usable and its dirty call proceeds in the background;
//! - clean acknowledgements become unnecessary — the receive table needs
//!   only two states, usable (`OK`) and not (`⊥`);
//! - a copy acknowledgement is still withheld until the dirty call that
//!   the copy triggered is acknowledged (otherwise the naive race
//!   reappears).
//!
//! The model also carries the §5.2 *owner optimisations* as flags:
//! an owner sending its own reference may add the permanent entry
//! directly (no transient entry, no dirty, no copy-ack from the
//! receiver); a client sending a reference *to* its owner may skip the
//! transient entry entirely.
//!
//! Setting `ordered: false` delivers messages in arbitrary order instead —
//! running the same two-state protocol on unordered channels — which the
//! tests use to demonstrate that the FIFO hypothesis is load-bearing.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::state::{CopyId, Msg, Proc, Ref};

/// Per-(process, reference) client state in the FIFO variant.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct FifoSlot {
    /// Usable (`OK`)? Absent slot or false = `⊥`.
    pub usable: bool,
    /// Has the owner acknowledged our registration?
    pub registered: bool,
    /// Copy acks owed once the registration completes: (id, sender).
    pub blocked: BTreeSet<(CopyId, Proc)>,
    /// Transient entries for copies we sent: (receiver, id).
    pub tdirty: BTreeSet<(Proc, CopyId)>,
}

/// Configuration of the FIFO-variant machine.
#[derive(Clone, Debug)]
pub struct FifoConfig {
    /// Number of processes.
    pub nprocs: usize,
    /// Owner per reference.
    pub owner: Vec<Proc>,
    /// FIFO channels (per ordered pair).
    pub channels: BTreeMap<(Proc, Proc), VecDeque<Msg>>,
    /// Client-side slots.
    pub slots: BTreeMap<(Proc, Ref), FifoSlot>,
    /// Owner-side dirty sets.
    pub pdirty: BTreeMap<(Proc, Ref), BTreeSet<Proc>>,
    /// Mutator reachability.
    pub live: BTreeSet<(Proc, Ref)>,
    /// Deliver in order (the variant's hypothesis) or arbitrarily.
    pub ordered: bool,
    /// §5.2.1: owner sends create permanent entries directly.
    pub owner_send_opt: bool,
    /// §5.2.2: sends to the owner need no transient entry.
    pub owner_recv_opt: bool,
    /// Fresh copy ids.
    pub next_id: CopyId,
    /// Message counters by kind, for the experiments.
    pub sent: MsgCounts,
}

/// Counts of messages sent, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgCounts {
    /// Mutator copies.
    pub copies: u64,
    /// Copy acknowledgements.
    pub copy_acks: u64,
    /// Dirty calls.
    pub dirties: u64,
    /// Dirty acknowledgements.
    pub dirty_acks: u64,
    /// Clean calls.
    pub cleans: u64,
}

impl MsgCounts {
    /// Control messages (everything except the mutator copies).
    pub fn control(&self) -> u64 {
        self.copy_acks + self.dirties + self.dirty_acks + self.cleans
    }
}

/// A schedulable step of the FIFO machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FifoStep {
    /// Deliver the message at position `idx` of channel `(from, to)`
    /// (always 0 when ordered).
    Deliver(Proc, Proc, usize),
    /// The mutator copies `r` from `p1` to `p2`.
    Copy(Proc, Proc, Ref),
    /// The local collector finalizes `r` at `p` (posting the clean call).
    Finalize(Proc, Ref),
}

impl FifoConfig {
    /// Initial configuration; references usable (and live) at their owner.
    pub fn new(nprocs: usize, owners: &[usize], ordered: bool) -> FifoConfig {
        let owner: Vec<Proc> = owners.iter().map(|&o| Proc(o)).collect();
        let mut slots = BTreeMap::new();
        let mut live = BTreeSet::new();
        for (i, &o) in owner.iter().enumerate() {
            slots.insert(
                (o, Ref(i)),
                FifoSlot {
                    usable: true,
                    registered: true,
                    ..FifoSlot::default()
                },
            );
            live.insert((o, Ref(i)));
        }
        FifoConfig {
            nprocs,
            owner,
            channels: BTreeMap::new(),
            slots,
            pdirty: BTreeMap::new(),
            live,
            ordered,
            owner_send_opt: false,
            owner_recv_opt: false,
            next_id: 0,
            sent: MsgCounts::default(),
        }
    }

    /// The owner of `r`.
    pub fn owner(&self, r: Ref) -> Proc {
        self.owner[r.0]
    }

    fn slot(&mut self, p: Proc, r: Ref) -> &mut FifoSlot {
        self.slots.entry((p, r)).or_default()
    }

    fn post(&mut self, from: Proc, to: Proc, m: Msg) {
        match m {
            Msg::Copy(..) => self.sent.copies += 1,
            Msg::CopyAck(..) => self.sent.copy_acks += 1,
            Msg::Dirty(..) => self.sent.dirties += 1,
            Msg::DirtyAck(..) => self.sent.dirty_acks += 1,
            Msg::Clean(..) => self.sent.cleans += 1,
            Msg::CleanAck(..) => unreachable!("the FIFO variant has no clean acks"),
        }
        self.channels.entry((from, to)).or_default().push_back(m);
    }

    /// Enumerates schedulable steps (message deliveries plus enabled
    /// finalizes; mutator copies are driver-initiated, not enumerated).
    pub fn deliveries(&self) -> Vec<FifoStep> {
        let mut out = Vec::new();
        for (&(from, to), chan) in &self.channels {
            if chan.is_empty() {
                continue;
            }
            if self.ordered {
                out.push(FifoStep::Deliver(from, to, 0));
            } else {
                for idx in 0..chan.len() {
                    out.push(FifoStep::Deliver(from, to, idx));
                }
            }
        }
        for (&(p, r), slot) in &self.slots {
            if slot.usable
                && p != self.owner(r)
                && !self.live.contains(&(p, r))
                && slot.tdirty.is_empty()
            {
                out.push(FifoStep::Finalize(p, r));
            }
        }
        out
    }

    /// Executes one step.
    pub fn step(&mut self, s: FifoStep) {
        match s {
            FifoStep::Copy(p1, p2, r) => self.do_copy(p1, p2, r),
            FifoStep::Finalize(p, r) => self.do_finalize(p, r),
            FifoStep::Deliver(from, to, idx) => {
                let chan = self.channels.get_mut(&(from, to)).expect("channel");
                let m = chan.remove(idx).expect("index in range");
                if chan.is_empty() {
                    self.channels.remove(&(from, to));
                }
                self.deliver(from, to, m);
            }
        }
    }

    fn do_copy(&mut self, p1: Proc, p2: Proc, r: Ref) {
        assert_ne!(p1, p2);
        assert!(self.slots.get(&(p1, r)).is_some_and(|s| s.usable));
        let id = self.next_id;
        self.next_id += 1;
        let owner = self.owner(r);
        if p1 == owner && self.owner_send_opt {
            // §5.2.1: the owner lists the receiver directly; the copy
            // message carries an "already registered" mark (modelled by
            // the receiver checking the sender).
            self.pdirty.entry((owner, r)).or_default().insert(p2);
            self.post(p1, p2, Msg::Copy(r, id));
            return;
        }
        if p2 == owner && self.owner_recv_opt {
            // §5.2.2: no transient entry needed; the owner's own entry
            // for the *sender* already protects the object.
            self.post(p1, p2, Msg::Copy(r, id));
            return;
        }
        self.slot(p1, r).tdirty.insert((p2, id));
        self.post(p1, p2, Msg::Copy(r, id));
    }

    fn do_finalize(&mut self, p: Proc, r: Ref) {
        let owner = self.owner(r);
        assert_ne!(p, owner);
        let slot = self.slot(p, r);
        assert!(slot.usable && slot.tdirty.is_empty());
        // The two-state life cycle: OK → ⊥ immediately; the clean call
        // follows any dirty call already posted on the same channel.
        let was_registered = slot.registered;
        slot.usable = false;
        slot.registered = false;
        let _ = was_registered;
        self.post(p, owner, Msg::Clean(r));
    }

    fn deliver(&mut self, from: Proc, to: Proc, m: Msg) {
        match m {
            Msg::Copy(r, id) => {
                let owner = self.owner(r);
                self.live.insert((to, r));
                if to == owner {
                    // Back at the owner: concrete object, nothing to do.
                    // (Without the owner-recv optimisation the sender
                    // still expects an ack to release its transient.)
                    if !self.owner_recv_opt {
                        self.post(to, from, Msg::CopyAck(r, id));
                    }
                    return;
                }
                if from == owner && self.owner_send_opt {
                    // Already registered by the sender.
                    let slot = self.slot(to, r);
                    slot.usable = true;
                    slot.registered = true;
                    return;
                }
                let needs_dirty = {
                    let slot = self.slot(to, r);
                    if slot.usable {
                        false
                    } else {
                        slot.usable = true;
                        slot.registered = false;
                        true
                    }
                };
                if needs_dirty {
                    self.post(to, owner, Msg::Dirty(r));
                    self.slot(to, r).blocked.insert((id, from));
                } else {
                    let registered = self.slot(to, r).registered;
                    if registered {
                        self.post(to, from, Msg::CopyAck(r, id));
                    } else {
                        self.slot(to, r).blocked.insert((id, from));
                    }
                }
            }
            Msg::CopyAck(r, id) => {
                self.slot(to, r).tdirty.remove(&(from, id));
            }
            Msg::Dirty(r) => {
                assert_eq!(self.owner(r), to);
                self.pdirty.entry((to, r)).or_default().insert(from);
                self.post(to, from, Msg::DirtyAck(r));
            }
            Msg::DirtyAck(r) => {
                let blocked: Vec<(CopyId, Proc)> = {
                    let slot = self.slot(to, r);
                    slot.registered = true;
                    let b = slot.blocked.iter().copied().collect();
                    slot.blocked.clear();
                    b
                };
                for (id, sender) in blocked {
                    self.post(to, sender, Msg::CopyAck(r, id));
                }
            }
            Msg::Clean(r) => {
                assert_eq!(self.owner(r), to);
                if let Some(set) = self.pdirty.get_mut(&(to, r)) {
                    set.remove(&from);
                    if set.is_empty() {
                        self.pdirty.remove(&(to, r));
                    }
                }
            }
            Msg::CleanAck(_) => unreachable!("no clean acks in the FIFO variant"),
        }
    }

    /// The safety requirement, adapted: a usable reference at a non-owner
    /// (or a copy in transit) implies a protecting entry at the owner —
    /// permanent, or a transient entry at the owner for its own sends.
    pub fn check_safety(&self) -> Result<(), String> {
        for (i, &owner) in self.owner.iter().enumerate() {
            let r = Ref(i);
            let mut threatened = false;
            for (&(p, rr), slot) in &self.slots {
                if rr == r && p != owner && slot.usable {
                    threatened = true;
                }
            }
            for chan in self.channels.values() {
                if chan
                    .iter()
                    .any(|m| matches!(m, Msg::Copy(rr, _) if *rr == r))
                {
                    threatened = true;
                }
            }
            if threatened {
                let pdirty_ok = self.pdirty.get(&(owner, r)).is_some_and(|s| !s.is_empty());
                let tdirty_ok = self
                    .slots
                    .get(&(owner, r))
                    .is_some_and(|s| !s.tdirty.is_empty());
                // Under the owner-send optimisation the permanent entry is
                // created before the copy leaves, so the same check holds.
                if !pdirty_ok && !tdirty_ok {
                    // Exception: with owner_recv_opt, a copy travelling
                    // *to* the owner is protected by the sender's own
                    // permanent entry; verify that instead.
                    let to_owner_only = self.channels.iter().all(|(&(_f, t), chan)| {
                        chan.iter()
                            .all(|m| !matches!(m, Msg::Copy(rr, _) if *rr == r) || t == owner)
                    });
                    let any_usable = self
                        .slots
                        .iter()
                        .any(|(&(p, rr), s)| rr == r && p != owner && s.usable);
                    if self.owner_recv_opt && to_owner_only && !any_usable {
                        continue;
                    }
                    return Err(format!(
                        "FIFO-variant SAFETY VIOLATION for {r:?}: usable remotely, \
                         owner tables empty"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Liveness check after a drain: all dirty sets empty, no messages.
    pub fn check_drained(&self) -> Result<(), String> {
        if self.channels.values().any(|c| !c.is_empty()) {
            return Err("messages still in transit".into());
        }
        for (&(p, r), set) in &self.pdirty {
            if !set.is_empty() {
                return Err(format!("leak: pdirty({p:?},{r:?}) = {set:?}"));
            }
        }
        Ok(())
    }
}

/// Outcome of a randomised FIFO-variant run.
#[derive(Debug)]
pub struct FifoRun {
    /// Final configuration.
    pub config: FifoConfig,
    /// Steps executed.
    pub steps: u64,
}

/// Random walk on the FIFO machine: activity phase (copies, drops,
/// deliveries), then drain. Returns `Err` with the violation if safety
/// fails at any step or liveness fails at the end.
pub fn walk(
    nprocs: usize,
    nrefs: usize,
    activity: u64,
    ordered: bool,
    seed: u64,
) -> Result<FifoRun, String> {
    let owners: Vec<usize> = (0..nrefs).map(|i| i % nprocs).collect();
    let mut c = FifoConfig::new(nprocs, &owners, ordered);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut steps = 0u64;

    for _ in 0..activity {
        // Mutator: maybe copy, maybe drop.
        if rng.gen_bool(0.3) {
            let holders: Vec<(Proc, Ref)> = c
                .slots
                .iter()
                .filter(|(&(p, r), s)| s.usable && c.live.contains(&(p, r)))
                .map(|(&k, _)| k)
                .collect();
            if let Some(&(p, r)) = holders.as_slice().choose(&mut rng) {
                let others: Vec<Proc> = (0..nprocs).map(Proc).filter(|&q| q != p).collect();
                if let Some(&q) = others.as_slice().choose(&mut rng) {
                    c.step(FifoStep::Copy(p, q, r));
                    steps += 1;
                }
            }
        }
        if rng.gen_bool(0.2) {
            let holders: Vec<(Proc, Ref)> = c
                .live
                .iter()
                .copied()
                .filter(|&(p, r)| p != c.owner(r))
                .collect();
            if let Some(&(p, r)) = holders.as_slice().choose(&mut rng) {
                c.live.remove(&(p, r));
            }
        }
        let steps_avail = c.deliveries();
        if let Some(&s) = steps_avail.as_slice().choose(&mut rng) {
            c.step(s);
            steps += 1;
        }
        c.check_safety()?;
    }

    // Drain.
    let holders: Vec<(Proc, Ref)> = c
        .live
        .iter()
        .copied()
        .filter(|&(p, r)| p != c.owner(r))
        .collect();
    for (p, r) in holders {
        c.live.remove(&(p, r));
    }
    let mut fuel = 1_000_000u64;
    loop {
        // Copies delivered during the drain re-mark references live;
        // keep dropping them.
        let relive: Vec<(Proc, Ref)> = c
            .live
            .iter()
            .copied()
            .filter(|&(p, r)| p != c.owner(r))
            .collect();
        for (p, r) in relive {
            c.live.remove(&(p, r));
        }
        let avail = c.deliveries();
        let Some(&s) = avail.as_slice().choose(&mut rng) else {
            break;
        };
        c.step(s);
        steps += 1;
        c.check_safety()?;
        fuel -= 1;
        if fuel == 0 {
            return Err("drain did not terminate".into());
        }
    }
    c.check_drained()?;
    Ok(FifoRun { config: c, steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_walks_are_safe_and_live() {
        for seed in 0..50 {
            walk(4, 2, 150, true, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn unordered_channels_break_the_variant() {
        // The §5.1 simplification is only sound on FIFO channels: with
        // arbitrary delivery order some schedule must violate safety or
        // leak. This is the paper's justification for the hypothesis.
        let mut violations = 0;
        for seed in 0..300 {
            if walk(4, 2, 150, false, seed).is_err() {
                violations += 1;
            }
        }
        assert!(
            violations > 0,
            "expected the unordered runs to exhibit at least one violation"
        );
    }

    #[test]
    fn no_blocking_states_exist() {
        // The FIFO variant's point: a delivered copy is immediately
        // usable.
        let mut c = FifoConfig::new(2, &[0], true);
        c.step(FifoStep::Copy(Proc(0), Proc(1), Ref(0)));
        c.step(FifoStep::Deliver(Proc(0), Proc(1), 0));
        assert!(c.slots[&(Proc(1), Ref(0))].usable);
        assert!(
            !c.slots[&(Proc(1), Ref(0))].registered,
            "dirty still in flight"
        );
    }

    #[test]
    fn copy_ack_still_waits_for_dirty_ack() {
        let mut c = FifoConfig::new(2, &[0], true);
        c.step(FifoStep::Copy(Proc(0), Proc(1), Ref(0)));
        c.step(FifoStep::Deliver(Proc(0), Proc(1), 0)); // copy → dirty posted
        assert_eq!(c.sent.copy_acks, 0);
        c.step(FifoStep::Deliver(Proc(1), Proc(0), 0)); // dirty at owner
        c.step(FifoStep::Deliver(Proc(0), Proc(1), 0)); // dirty_ack
        assert_eq!(c.sent.copy_acks, 1, "ack released only after dirty_ack");
        c.step(FifoStep::Deliver(Proc(1), Proc(0), 0)); // copy_ack
        assert!(c.slots[&(Proc(0), Ref(0))].tdirty.is_empty());
    }

    #[test]
    fn owner_send_optimisation_skips_registration_traffic() {
        let mut base = FifoConfig::new(2, &[0], true);
        base.step(FifoStep::Copy(Proc(0), Proc(1), Ref(0)));
        while let Some(&s) = base.deliveries().first() {
            if matches!(s, FifoStep::Finalize(..)) {
                break;
            }
            base.step(s);
        }
        let mut opt = FifoConfig::new(2, &[0], true);
        opt.owner_send_opt = true;
        opt.step(FifoStep::Copy(Proc(0), Proc(1), Ref(0)));
        while let Some(&s) = opt.deliveries().first() {
            if matches!(s, FifoStep::Finalize(..)) {
                break;
            }
            opt.step(s);
        }
        assert_eq!(base.sent.control(), 3, "dirty + dirty_ack + copy_ack");
        assert_eq!(opt.sent.control(), 0, "no control traffic at all");
        // Both end with the client registered.
        assert!(opt.pdirty[&(Proc(0), Ref(0))].contains(&Proc(1)));
        opt.check_safety().unwrap();
    }
}
