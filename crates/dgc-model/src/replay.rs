//! The trace-capture conformance oracle: replays live collector traces
//! onto the formal model.
//!
//! The runtime records every collector-relevant action as a
//! [`TraceEvent`] in its space's trace ring (`netobj::TraceRing`). This
//! module merges the rings of every space in a scenario and *folds* the
//! observed events back onto the abstract machine of [`crate::rules`],
//! firing only transitions whose guards hold, and running the full
//! invariant battery ([`check_all`]) plus the termination-measure check
//! after **every** fired transition.
//!
//! ## Folding
//!
//! The runtime and the model sit at different abstraction levels: the
//! runtime has sequence numbers, retries, strong cleans, leases and
//! crashes; the model has six message kinds and thirteen rules. The
//! replayer bridges the gap *observationally* — it drives the model from
//! the events that witness protocol progress and treats the rest as
//! annotations:
//!
//! - `DirtyApplied` at the owner is the witness that a registration
//!   reached the owner; depending on the client's model state it folds
//!   to `make_copy; receive_copy; do_dirty_call; receive_dirty;
//!   do_dirty_ack` (first contact) or just the dirty half
//!   (re-registration after a clean).
//! - `DirtyAcked { ok: true }` at the client folds to
//!   `receive_dirty_ack` plus the deferred copy acknowledgements.
//! - `CleanSent` folds to `finalize; do_clean_call`; `CleanApplied` to
//!   `receive_clean; do_clean_ack`; `CleanAcked` to `receive_clean_ack`.
//! - `SurrogateResurrecting` is a copy arriving while a clean is in
//!   transit: `make_copy; receive_copy` driving `ccit → ccitnil`.
//! - A dirty that outruns its own space's earlier clean (the TR-116
//!   transmission race, visible as `DirtyApplied` while the model client
//!   is in `ccitnil`) folds the superseded clean to completion first —
//!   the model's Note 5 postponement — and the later `CleanStale` /
//!   `CleanAcked` events for the dead clean become no-ops.
//!
//! Stale rejections (`DirtyStale`, `CleanStale`), ping traffic, pins and
//! failure verdicts have no model analogue and are only counted. Lease
//! expiries, purges, crashes and owner-death verdicts *retire*
//! participants: later events touching a retired pair are dropped
//! rather than reported as unresolved.
//!
//! ## What the oracle catches
//!
//! Because the replayer only ever fires *enabled* transitions, the model
//! configuration stays reachable by construction and the invariants act
//! as a self-check on the folding itself. The teeth are elsewhere:
//!
//! 1. **Premature reclamation.** `ExportCollected` asserts that the
//!    model's permanent dirty set for the object is empty (modulo
//!    retired clients) and that no copy of it is in flight. This is the
//!    paper's safety property, checked against the real collector.
//! 2. **Inexplicable events.** An event that never finds a legal model
//!    explanation — a clean acknowledged that was never received, a
//!    dirty applied out of nowhere — ends up in
//!    [`ReplayReport::unresolved`].
//! 3. **Liveness accounting.** Every folded non-mutator transition must
//!    strictly decrease the termination measure, re-validating the
//!    liveness argument on real schedules.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use netobj_wire::{SpaceId, TraceEvent, TraceKind, WireRep};

use crate::invariants::check_all;
use crate::measure::termination_measure;
use crate::rules::{apply, enabled, Transition};
use crate::state::{Config, Msg, Proc, RecState, Ref};

/// Outcome of feeding one event to the folding engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    /// One or more model transitions fired.
    Applied,
    /// Informational event (pings, pins, stale rejections, …).
    Observed,
    /// A retry or duplicate whose effect is already in the model.
    Redundant,
    /// A fault-path action the fault-free model cannot express.
    Unmodeled,
    /// Guards not met yet — requeued and retried after later progress.
    Blocked,
}

/// Result of replaying a set of traces onto the model.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Total events consumed.
    pub events: usize,
    /// Model transitions fired.
    pub transitions: usize,
    /// Spaces (model processes) that appeared in the traces.
    pub spaces: usize,
    /// Distinct object references that appeared in the traces.
    pub refs: usize,
    /// Dirty calls the owner rejected as out-of-sequence (TR-116 guard).
    pub stale_dirties: usize,
    /// Clean calls the owner rejected as out-of-sequence.
    pub stale_cleans: usize,
    /// Events that were retries or duplicates of already-folded work.
    pub redundant: usize,
    /// Events on fault paths the fault-free model does not express.
    pub unmodeled: usize,
    /// Events that never found a legal model explanation.
    pub unresolved: Vec<String>,
    /// Invariant, safety or measure violations (empty ⇔ conformant).
    pub violations: Vec<String>,
    /// The model configuration after the last folded transition.
    pub final_config: Config,
}

impl ReplayReport {
    /// True when the trace is explainable by the model with no
    /// invariant, safety or measure violation.
    pub fn is_conformant(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Folds captured runtime traces onto the formal model.
///
/// Feed each space's ring with [`ingest`](Replayer::ingest), then call
/// [`replay`](Replayer::replay).
#[derive(Default)]
pub struct Replayer {
    traces: Vec<(SpaceId, Vec<TraceEvent>)>,
}

impl Replayer {
    /// Creates an empty replayer.
    pub fn new() -> Replayer {
        Replayer::default()
    }

    /// Adds one space's captured events (its trace-ring snapshot).
    pub fn ingest(&mut self, space: SpaceId, events: Vec<TraceEvent>) {
        self.traces.push((space, events));
    }

    /// Merges all ingested traces and replays them onto the model.
    pub fn replay(self) -> ReplayReport {
        replay_traces(&self.traces)
    }
}

/// Convenience entry point: replays `(space, events)` pairs directly.
pub fn replay_traces(traces: &[(SpaceId, Vec<TraceEvent>)]) -> ReplayReport {
    // Pass 1: discover the universe of spaces and references so the
    // model configuration can be built up front (the model fixes its
    // process and reference sets at construction).
    let mut space_ids: BTreeSet<SpaceId> = BTreeSet::new();
    let mut wirereps: BTreeSet<WireRep> = BTreeSet::new();
    for (src, events) in traces {
        space_ids.insert(*src);
        for ev in events {
            let (spaces, target) = participants(&ev.kind);
            space_ids.extend(spaces);
            if let Some(rep) = target {
                space_ids.insert(rep.space);
                wirereps.insert(rep);
            }
        }
    }

    let procs: BTreeMap<SpaceId, Proc> = space_ids
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, Proc(i)))
        .collect();
    let refs: BTreeMap<WireRep, Ref> = wirereps
        .iter()
        .enumerate()
        .map(|(i, &w)| (w, Ref(i)))
        .collect();
    let owners: Vec<usize> = wirereps.iter().map(|w| procs[&w.space].0).collect();
    let cfg = Config::new(procs.len().max(1), &owners);

    // Merge: order by (event time, emitting space, per-space seq). The
    // retry queue below absorbs residual cross-space clock skew.
    let mut merged: Vec<(u64, u128, u64, TraceKind)> = Vec::new();
    for (src, events) in traces {
        for ev in events {
            merged.push((ev.at_micros, src.as_raw(), ev.seq, ev.kind.clone()));
        }
    }
    merged.sort_by_key(|a| (a.0, a.1, a.2));

    let mut engine = Engine {
        cfg,
        procs,
        refs,
        compensated_cleans: BTreeMap::new(),
        compensated_clean_acks: BTreeMap::new(),
        compensated_dirty_acks: BTreeMap::new(),
        retired: BTreeSet::new(),
        purged: BTreeSet::new(),
        owner_dead: BTreeSet::new(),
        pending: VecDeque::new(),
        events: 0,
        transitions: 0,
        stale_dirties: 0,
        stale_cleans: 0,
        redundant: 0,
        unmodeled: 0,
        unresolved: Vec::new(),
        violations: Vec::new(),
    };

    for (_, _, _, kind) in merged {
        engine.events += 1;
        match engine.handle(&kind) {
            Outcome::Blocked => engine.pending.push_back(kind),
            o => {
                engine.count(o);
                if o == Outcome::Applied {
                    engine.drain_pending();
                }
            }
        }
    }
    engine.drain_pending();
    engine.finish()
}

/// Spaces and object reference named by an event (for pass 1).
fn participants(kind: &TraceKind) -> (Vec<SpaceId>, Option<WireRep>) {
    use TraceKind::*;
    match kind {
        DirtySent {
            client,
            owner,
            target,
            ..
        }
        | DirtyAcked {
            client,
            owner,
            target,
            ..
        }
        | CleanSent {
            client,
            owner,
            target,
            ..
        }
        | CleanAcked {
            client,
            owner,
            target,
            ..
        }
        | DirtyApplied {
            owner,
            client,
            target,
            ..
        }
        | DirtyStale {
            owner,
            client,
            target,
            ..
        }
        | DirtyRefused {
            owner,
            client,
            target,
            ..
        }
        | CleanApplied {
            owner,
            client,
            target,
            ..
        }
        | CleanStale {
            owner,
            client,
            target,
            ..
        } => (vec![*client, *owner], Some(*target)),
        SurrogateCreated { client, target, .. }
        | SurrogateResurrecting { client, target, .. }
        | SurrogateDropped { client, target, .. } => (vec![*client], Some(*target)),
        TransientPinned { owner, target, .. }
        | TransientReleased { owner, target, .. }
        | ExportCreated { owner, target }
        | ExportCollected { owner, target } => (vec![*owner], Some(*target)),
        PingSent { owner, client } | ClientPurged { owner, client } => {
            (vec![*owner, *client], None)
        }
        PingReceived { space, from } => (vec![*space, *from], None),
        LeaseExpired { owner, .. } => (vec![*owner], None),
        OwnerDead { client, owner } => (vec![*client, *owner], None),
        SpaceCrashed { space } => (vec![*space], None),
    }
}

struct Engine {
    cfg: Config,
    procs: BTreeMap<SpaceId, Proc>,
    refs: BTreeMap<WireRep, Ref>,
    /// Cleans folded to completion ahead of their own events (per
    /// client/ref): the later `CleanApplied` decrements instead of
    /// refolding.
    compensated_cleans: BTreeMap<(Proc, Ref), usize>,
    /// Same, for the client-side `CleanAcked` of a compensated clean.
    compensated_clean_acks: BTreeMap<(Proc, Ref), usize>,
    /// Dirty acks received on the client's behalf by a legalisation fold
    /// (a `CleanApplied` that sorted before the client's `DirtyAcked`
    /// because of ring-epoch skew): the later `DirtyAcked` decrements
    /// instead of looking for a `DirtyAck` that is no longer in transit.
    compensated_dirty_acks: BTreeMap<(Proc, Ref), usize>,
    /// Crashed spaces: events touching them are dropped from then on.
    retired: BTreeSet<Proc>,
    /// `(owner, client)` pairs the owner has unilaterally unregistered.
    purged: BTreeSet<(Proc, Proc)>,
    /// `(client, owner)` pairs the client has given up on.
    owner_dead: BTreeSet<(Proc, Proc)>,
    pending: VecDeque<TraceKind>,
    events: usize,
    transitions: usize,
    stale_dirties: usize,
    stale_cleans: usize,
    redundant: usize,
    unmodeled: usize,
    unresolved: Vec<String>,
    violations: Vec<String>,
}

impl Engine {
    fn count(&mut self, o: Outcome) {
        match o {
            Outcome::Redundant => self.redundant += 1,
            Outcome::Unmodeled => self.unmodeled += 1,
            Outcome::Applied | Outcome::Observed => {}
            Outcome::Blocked => unreachable!("blocked events are queued, not counted"),
        }
    }

    /// Retries queued events until a full pass makes no progress.
    fn drain_pending(&mut self) {
        loop {
            let mut progressed = false;
            let mut still = VecDeque::new();
            while let Some(kind) = self.pending.pop_front() {
                match self.handle(&kind) {
                    Outcome::Blocked => still.push_back(kind),
                    o => {
                        self.count(o);
                        progressed = true;
                    }
                }
            }
            self.pending = still;
            if !progressed {
                break;
            }
        }
    }

    fn finish(mut self) -> ReplayReport {
        let leftovers: Vec<TraceKind> = self.pending.drain(..).collect();
        for kind in leftovers {
            if self.is_retired(&kind) || self.settled_at_end(&kind) {
                self.redundant += 1;
            } else {
                self.unresolved.push(format!("{kind:?}"));
            }
        }
        ReplayReport {
            events: self.events,
            transitions: self.transitions,
            spaces: self.procs.len(),
            refs: self.refs.len(),
            stale_dirties: self.stale_dirties,
            stale_cleans: self.stale_cleans,
            redundant: self.redundant,
            unmodeled: self.unmodeled,
            unresolved: self.unresolved,
            violations: self.violations,
            final_config: self.cfg,
        }
    }

    fn proc(&self, s: SpaceId) -> Proc {
        self.procs[&s]
    }

    fn obj(&self, w: WireRep) -> Ref {
        self.refs[&w]
    }

    fn msg_in(&self, from: Proc, to: Proc, m: Msg) -> bool {
        self.cfg
            .channels
            .get(&(from, to))
            .is_some_and(|ch| ch.contains(&m))
    }

    /// True when any participant of `kind` has been retired by a crash,
    /// purge or owner-death verdict.
    fn is_retired(&self, kind: &TraceKind) -> bool {
        let (spaces, _) = participants(kind);
        let procs: Vec<Proc> = spaces.iter().map(|&s| self.proc(s)).collect();
        if procs.iter().any(|p| self.retired.contains(p)) {
            return true;
        }
        // Client/owner events between an estranged pair are moot too.
        if let [a, b] = procs[..] {
            if self.purged.contains(&(b, a)) || self.purged.contains(&(a, b)) {
                return true;
            }
            if self.owner_dead.contains(&(a, b)) || self.owner_dead.contains(&(b, a)) {
                return true;
            }
        }
        false
    }

    /// Fires one transition with full checking: the guard must hold
    /// (via [`enabled`]), every invariant must hold afterwards, and
    /// non-mutator transitions must strictly decrease the termination
    /// measure. Returns false (and records a violation) on any failure.
    fn fire(&mut self, t: Transition, ctx: &str) -> bool {
        if !enabled(&self.cfg).contains(&t) {
            self.violations
                .push(format!("fold error: {t:?} not enabled while folding {ctx}"));
            return false;
        }
        let before = termination_measure(&self.cfg);
        apply(&mut self.cfg, t);
        self.transitions += 1;
        if let Err(e) = check_all(&self.cfg) {
            self.violations
                .push(format!("invariant after {t:?} (folding {ctx}): {e}"));
            return false;
        }
        if !t.is_mutator() {
            let after = termination_measure(&self.cfg);
            if after >= before {
                self.violations.push(format!(
                    "termination measure did not decrease over {t:?} \
                     (folding {ctx}): {before} → {after}"
                ));
                return false;
            }
        }
        true
    }

    /// Fires a whole fold sequence; aborts (with the violation already
    /// recorded) if any step fails.
    fn seq(&mut self, ts: &[Transition], ctx: &str) -> Outcome {
        for &t in ts {
            if !self.fire(t, ctx) {
                return Outcome::Applied; // Partial progress still counts.
            }
        }
        Outcome::Applied
    }

    /// Folds the deferred copy acknowledgements of `r` at client `c`
    /// (scheduled by `receive_dirty_ack` moving blocked entries over).
    fn drain_copy_acks(&mut self, c: Proc, r: Ref, ctx: &str) {
        while let Some((id, peer, _)) = self
            .cfg
            .copy_ack_todo
            .get(&c)
            .and_then(|s| s.iter().find(|&&(_, _, rr)| rr == r).copied())
        {
            if !self.fire(Transition::DoCopyAck(c, peer, r, id), ctx)
                || !self.fire(Transition::ReceiveCopyAck(c, peer, r, id), ctx)
            {
                return;
            }
        }
    }

    /// End-of-replay classification for events that never folded: true
    /// when the event's effect is already reflected in the model, i.e.
    /// it was a duplicate or a retry whose first instance folded.
    fn settled_at_end(&self, kind: &TraceKind) -> bool {
        use TraceKind::*;
        match kind {
            DirtyApplied {
                owner,
                client,
                target,
                ..
            } => {
                let (o, c, r) = (self.proc(*owner), self.proc(*client), self.obj(*target));
                self.cfg.pdirty.get(&(o, r)).is_some_and(|s| s.contains(&c))
            }
            DirtyAcked { client, target, .. } => {
                let (c, r) = (self.proc(*client), self.obj(*target));
                self.cfg.rec(c, r) == RecState::Ok
            }
            CleanSent { client, target, .. } => {
                let (c, r) = (self.proc(*client), self.obj(*target));
                matches!(
                    self.cfg.rec(c, r),
                    RecState::Ccit | RecState::CcitNil | RecState::Bot
                )
            }
            CleanApplied {
                owner,
                client,
                target,
                ..
            } => {
                let (o, c, r) = (self.proc(*owner), self.proc(*client), self.obj(*target));
                !self.cfg.pdirty.get(&(o, r)).is_some_and(|s| s.contains(&c))
            }
            CleanAcked {
                client,
                owner,
                target,
                ..
            } => {
                // Settled unless the model still owes this ack: an ack
                // for a clean the model never issued (e.g. the strong
                // clean of a never-registered reference) is explained
                // even if the reference was re-registered afterwards.
                let (c, o, r) = (self.proc(*client), self.proc(*owner), self.obj(*target));
                !matches!(self.cfg.rec(c, r), RecState::Ccit | RecState::CcitNil)
                    && !self.msg_in(o, c, Msg::CleanAck(r))
            }
            SurrogateResurrecting { client, target, .. } => {
                let (c, r) = (self.proc(*client), self.obj(*target));
                self.cfg.rec(c, r) != RecState::Bot
            }
            _ => false,
        }
    }

    fn handle(&mut self, kind: &TraceKind) -> Outcome {
        use TraceKind::*;
        if self.is_retired(kind) {
            return Outcome::Redundant;
        }
        match kind {
            DirtySent { .. } | SurrogateCreated { .. } | ExportCreated { .. } => Outcome::Observed,
            DirtyStale { .. } => {
                self.stale_dirties += 1;
                Outcome::Observed
            }
            CleanStale { .. } => {
                self.stale_cleans += 1;
                Outcome::Observed
            }
            DirtyRefused { .. } => Outcome::Unmodeled,
            TransientPinned { .. } | TransientReleased { .. } => Outcome::Observed,
            PingSent { .. } | PingReceived { .. } | LeaseExpired { .. } => Outcome::Observed,

            DirtyApplied {
                owner,
                client,
                target,
                ..
            } => {
                let (o, c, r) = (self.proc(*owner), self.proc(*client), self.obj(*target));
                if o == c {
                    return Outcome::Unmodeled;
                }
                let ctx = format!("{kind:?}");
                match self.cfg.rec(c, r) {
                    RecState::Bot => {
                        // First contact: fold the whole transmission.
                        let id = self.cfg.next_id;
                        self.seq(
                            &[
                                Transition::MakeCopy(o, c, r),
                                Transition::ReceiveCopy(o, c, r, id),
                                Transition::DoDirtyCall(c, r),
                                Transition::ReceiveDirty(c, o, r),
                                Transition::DoDirtyAck(o, c, r),
                            ],
                            &ctx,
                        )
                    }
                    RecState::Nil => {
                        // Re-registration after a completed clean: the
                        // dirty call was already scheduled by the copy.
                        if self
                            .cfg
                            .dirty_call_todo
                            .get(&c)
                            .is_some_and(|s| s.contains(&r))
                        {
                            self.seq(
                                &[
                                    Transition::DoDirtyCall(c, r),
                                    Transition::ReceiveDirty(c, o, r),
                                    Transition::DoDirtyAck(o, c, r),
                                ],
                                &ctx,
                            )
                        } else {
                            Outcome::Blocked
                        }
                    }
                    RecState::CcitNil => {
                        // TR-116: the new dirty beat the old clean. The
                        // model postpones the dirty (Note 5); fold the
                        // superseded clean to completion first, then the
                        // dirty. The runtime's later CleanStale /
                        // CleanAcked for the dead clean fold to nothing.
                        if !self.msg_in(c, o, Msg::Clean(r)) {
                            return Outcome::Blocked;
                        }
                        let out = self.seq(
                            &[
                                Transition::ReceiveClean(c, o, r),
                                Transition::DoCleanAck(o, c, r),
                                Transition::ReceiveCleanAck(o, c, r),
                                Transition::DoDirtyCall(c, r),
                                Transition::ReceiveDirty(c, o, r),
                                Transition::DoDirtyAck(o, c, r),
                            ],
                            &ctx,
                        );
                        *self.compensated_cleans.entry((c, r)).or_default() += 1;
                        *self.compensated_clean_acks.entry((c, r)).or_default() += 1;
                        out
                    }
                    RecState::Ccit => Outcome::Blocked,
                    RecState::Ok => Outcome::Redundant,
                }
            }

            DirtyAcked {
                client,
                owner,
                target,
                ok,
                ..
            } => {
                if !ok {
                    return Outcome::Unmodeled;
                }
                let (c, o, r) = (self.proc(*client), self.proc(*owner), self.obj(*target));
                if o == c {
                    return Outcome::Unmodeled;
                }
                if let Some(n) = self.compensated_dirty_acks.get_mut(&(c, r)) {
                    if *n > 0 {
                        *n -= 1;
                        return Outcome::Redundant;
                    }
                }
                let ctx = format!("{kind:?}");
                if self.msg_in(o, c, Msg::DirtyAck(r))
                    && matches!(self.cfg.rec(c, r), RecState::Nil | RecState::CcitNil)
                {
                    if self.fire(Transition::ReceiveDirtyAck(o, c, r), &ctx) {
                        self.drain_copy_acks(c, r, &ctx);
                    }
                    Outcome::Applied
                } else if self.cfg.rec(c, r) == RecState::Ok {
                    Outcome::Redundant
                } else {
                    Outcome::Blocked
                }
            }

            CleanSent {
                client,
                owner,
                target,
                ..
            } => {
                let (c, o, r) = (self.proc(*client), self.proc(*owner), self.obj(*target));
                if o == c {
                    return Outcome::Unmodeled;
                }
                let ctx = format!("{kind:?}");
                match self.cfg.rec(c, r) {
                    RecState::Ok => {
                        if self.cfg.is_live(c, r) {
                            self.cfg.drop_ref(c, r);
                        }
                        let mut ts = Vec::new();
                        if !self
                            .cfg
                            .clean_call_todo
                            .get(&c)
                            .is_some_and(|s| s.contains(&r))
                        {
                            ts.push(Transition::Finalize(c, r));
                        }
                        ts.push(Transition::DoCleanCall(c, r));
                        self.seq(&ts, &ctx)
                    }
                    // Retry of an in-flight clean: the model effect is
                    // already present.
                    RecState::Ccit | RecState::CcitNil => Outcome::Redundant,
                    // Either a late retry after completion or clock skew
                    // (the clean sorted before its registration): wait;
                    // end-of-replay classification settles late retries.
                    RecState::Bot => Outcome::Blocked,
                    // Strong clean after a failed dirty: the fault-free
                    // model never cleans from `nil`.
                    RecState::Nil => Outcome::Unmodeled,
                }
            }

            CleanApplied {
                owner,
                client,
                target,
                ..
            } => {
                let (o, c, r) = (self.proc(*owner), self.proc(*client), self.obj(*target));
                if o == c {
                    return Outcome::Unmodeled;
                }
                if let Some(n) = self.compensated_cleans.get_mut(&(c, r)) {
                    if *n > 0 {
                        *n -= 1;
                        return Outcome::Redundant;
                    }
                }
                let ctx = format!("{kind:?}");
                if self.msg_in(c, o, Msg::Clean(r)) {
                    return self.seq(
                        &[
                            Transition::ReceiveClean(c, o, r),
                            Transition::DoCleanAck(o, c, r),
                        ],
                        &ctx,
                    );
                }
                // Legalisation paths for clock skew and strong cleans
                // whose dirty did land: walk the client to the point
                // where the clean exists, then receive it.
                if self.cfg.rec(c, r) == RecState::Nil && self.msg_in(o, c, Msg::DirtyAck(r)) {
                    if !self.fire(Transition::ReceiveDirtyAck(o, c, r), &ctx) {
                        return Outcome::Applied;
                    }
                    self.drain_copy_acks(c, r, &ctx);
                    *self.compensated_dirty_acks.entry((c, r)).or_default() += 1;
                }
                if self.cfg.rec(c, r) == RecState::Ok {
                    if self.cfg.is_live(c, r) {
                        self.cfg.drop_ref(c, r);
                    }
                    let mut ts = Vec::new();
                    if !self
                        .cfg
                        .clean_call_todo
                        .get(&c)
                        .is_some_and(|s| s.contains(&r))
                    {
                        ts.push(Transition::Finalize(c, r));
                    }
                    ts.extend([
                        Transition::DoCleanCall(c, r),
                        Transition::ReceiveClean(c, o, r),
                        Transition::DoCleanAck(o, c, r),
                    ]);
                    return self.seq(&ts, &ctx);
                }
                if !self.cfg.pdirty.get(&(o, r)).is_some_and(|s| s.contains(&c)) {
                    return Outcome::Redundant;
                }
                Outcome::Blocked
            }

            CleanAcked {
                client,
                owner,
                target,
                ..
            } => {
                let (c, o, r) = (self.proc(*client), self.proc(*owner), self.obj(*target));
                if o == c {
                    return Outcome::Unmodeled;
                }
                if let Some(n) = self.compensated_clean_acks.get_mut(&(c, r)) {
                    if *n > 0 {
                        *n -= 1;
                        return Outcome::Redundant;
                    }
                }
                let ctx = format!("{kind:?}");
                if self.msg_in(o, c, Msg::CleanAck(r))
                    && matches!(self.cfg.rec(c, r), RecState::Ccit | RecState::CcitNil)
                {
                    self.fire(Transition::ReceiveCleanAck(o, c, r), &ctx);
                    Outcome::Applied
                } else {
                    // Ambiguous mid-replay (duplicate ack of a retried
                    // clean vs. an ack that sorted before its cause):
                    // wait; end-of-replay classification settles it.
                    Outcome::Blocked
                }
            }

            SurrogateResurrecting { client, target, .. } => {
                let (c, r) = (self.proc(*client), self.obj(*target));
                let o = self.cfg.owner(r);
                if o == c {
                    return Outcome::Unmodeled;
                }
                let ctx = format!("{kind:?}");
                match self.cfg.rec(c, r) {
                    RecState::Ccit => {
                        let id = self.cfg.next_id;
                        self.seq(
                            &[
                                Transition::MakeCopy(o, c, r),
                                Transition::ReceiveCopy(o, c, r, id),
                            ],
                            &ctx,
                        )
                    }
                    RecState::CcitNil | RecState::Nil | RecState::Ok => Outcome::Redundant,
                    RecState::Bot => Outcome::Blocked,
                }
            }

            SurrogateDropped { client, target, .. } => {
                let (c, r) = (self.proc(*client), self.obj(*target));
                self.cfg.drop_ref(c, r);
                Outcome::Observed
            }

            ExportCollected { owner, target } => {
                let (o, r) = (self.proc(*owner), self.obj(*target));
                // The money assertion: the paper's safety property,
                // checked against the live collector. A client the owner
                // has retired no longer counts as a holder.
                let holders: Vec<Proc> = self
                    .cfg
                    .pdirty
                    .get(&(o, r))
                    .map(|s| {
                        s.iter()
                            .copied()
                            .filter(|p| {
                                !self.retired.contains(p) && !self.purged.contains(&(o, *p))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                if !holders.is_empty() {
                    self.violations.push(format!(
                        "premature reclamation: {kind:?} while model dirty set \
                         still holds {holders:?}"
                    ));
                    return Outcome::Observed;
                }
                let in_flight: Vec<Proc> = self
                    .cfg
                    .tdirty
                    .get(&(o, r))
                    .map(|s| {
                        s.iter()
                            .map(|&(_, to, _)| to)
                            .filter(|p| !self.retired.contains(p))
                            .collect()
                    })
                    .unwrap_or_default();
                if !in_flight.is_empty() {
                    self.violations.push(format!(
                        "premature reclamation: {kind:?} while copies are in \
                         flight to {in_flight:?}"
                    ));
                }
                Outcome::Observed
            }

            ClientPurged { owner, client } => {
                let (o, c) = (self.proc(*owner), self.proc(*client));
                self.purged.insert((o, c));
                Outcome::Observed
            }
            OwnerDead { client, owner } => {
                let (c, o) = (self.proc(*client), self.proc(*owner));
                self.owner_dead.insert((c, o));
                Outcome::Observed
            }
            SpaceCrashed { space } => {
                let p = self.proc(*space);
                self.retired.insert(p);
                Outcome::Observed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netobj_wire::ObjIx;

    fn sid(n: u128) -> SpaceId {
        SpaceId::from_raw(n)
    }

    fn rep(owner: u128, ix: u64) -> WireRep {
        WireRep::new(sid(owner), ObjIx(ix))
    }

    fn ev(seq: u64, at: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            seq,
            at_micros: at,
            kind,
        }
    }

    /// One reference through its full life: register, use, drop, clean.
    /// Folds to exactly the thirteen transitions of the model's cycle.
    #[test]
    fn full_life_cycle_replays_conformant() {
        let owner = sid(1);
        let client = sid(2);
        let t = rep(1, 7);
        let owner_trace = vec![
            ev(0, 5, TraceKind::ExportCreated { owner, target: t }),
            ev(
                1,
                10,
                TraceKind::DirtyApplied {
                    owner,
                    client,
                    target: t,
                    seqno: 1,
                },
            ),
            ev(
                2,
                40,
                TraceKind::CleanApplied {
                    owner,
                    client,
                    target: t,
                    seqno: 2,
                    strong: false,
                },
            ),
            ev(3, 50, TraceKind::ExportCollected { owner, target: t }),
        ];
        let client_trace = vec![
            ev(
                0,
                8,
                TraceKind::DirtySent {
                    client,
                    owner,
                    target: t,
                    seqno: 1,
                },
            ),
            ev(
                1,
                12,
                TraceKind::DirtyAcked {
                    client,
                    owner,
                    target: t,
                    seqno: 1,
                    ok: true,
                },
            ),
            ev(
                2,
                13,
                TraceKind::SurrogateCreated {
                    client,
                    target: t,
                    epoch: 0,
                },
            ),
            ev(
                3,
                30,
                TraceKind::SurrogateDropped {
                    client,
                    target: t,
                    epoch: 0,
                },
            ),
            ev(
                4,
                35,
                TraceKind::CleanSent {
                    client,
                    owner,
                    target: t,
                    seqno: 2,
                    strong: false,
                    batched: false,
                },
            ),
            ev(
                5,
                45,
                TraceKind::CleanAcked {
                    client,
                    owner,
                    target: t,
                    seqno: 2,
                },
            ),
        ];
        let report = replay_traces(&[(owner, owner_trace), (client, client_trace)]);
        assert!(
            report.is_conformant(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.unresolved.is_empty(), "{:?}", report.unresolved);
        assert_eq!(report.transitions, 13);
        assert_eq!(report.spaces, 2);
        assert_eq!(report.refs, 1);
        let c = &report.final_config;
        assert!(c.quiescent(), "model should be quiescent: {c:?}");
        let (pc, pr) = (Proc(1), Ref(0));
        assert_eq!(c.rec(pc, pr), RecState::Bot);
    }

    /// The TR-116 transmission race: a resurrection dirty outruns the
    /// in-transit clean; the owner rejects the late clean as stale. The
    /// trace must fold cleanly and leave the client registered.
    #[test]
    fn tr116_race_folds_and_keeps_registration() {
        let owner = sid(1);
        let client = sid(2);
        let t = rep(1, 3);
        let owner_trace = vec![
            ev(
                0,
                10,
                TraceKind::DirtyApplied {
                    owner,
                    client,
                    target: t,
                    seqno: 1,
                },
            ),
            // The resurrection dirty (seqno 3) arrives first…
            ev(
                1,
                60,
                TraceKind::DirtyApplied {
                    owner,
                    client,
                    target: t,
                    seqno: 3,
                },
            ),
            // …then the old clean (seqno 2) is rejected as stale.
            ev(
                2,
                70,
                TraceKind::CleanStale {
                    owner,
                    client,
                    target: t,
                    seqno: 2,
                },
            ),
        ];
        let client_trace = vec![
            ev(
                0,
                12,
                TraceKind::DirtyAcked {
                    client,
                    owner,
                    target: t,
                    seqno: 1,
                    ok: true,
                },
            ),
            ev(
                1,
                30,
                TraceKind::SurrogateDropped {
                    client,
                    target: t,
                    epoch: 0,
                },
            ),
            ev(
                2,
                40,
                TraceKind::CleanSent {
                    client,
                    owner,
                    target: t,
                    seqno: 2,
                    strong: false,
                    batched: false,
                },
            ),
            ev(
                3,
                50,
                TraceKind::SurrogateResurrecting {
                    client,
                    target: t,
                    epoch: 0,
                },
            ),
            // The stale clean is still acknowledged (runtime acks stale
            // cleans so the client can make progress).
            ev(
                4,
                75,
                TraceKind::CleanAcked {
                    client,
                    owner,
                    target: t,
                    seqno: 2,
                },
            ),
            ev(
                5,
                80,
                TraceKind::DirtyAcked {
                    client,
                    owner,
                    target: t,
                    seqno: 3,
                    ok: true,
                },
            ),
        ];
        let report = replay_traces(&[(owner, owner_trace), (client, client_trace)]);
        assert!(
            report.is_conformant(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.unresolved.is_empty(), "{:?}", report.unresolved);
        assert_eq!(report.stale_cleans, 1);
        let c = &report.final_config;
        // The client must still be in the owner's dirty set: the stale
        // clean must not have unregistered the resurrected surrogate.
        let (po, pc, pr) = (Proc(0), Proc(1), Ref(0));
        assert!(
            c.pdirty.get(&(po, pr)).is_some_and(|s| s.contains(&pc)),
            "client lost its registration: {c:?}"
        );
        assert_eq!(c.rec(pc, pr), RecState::Ok);
    }

    /// Collecting an export while the model still shows a registered
    /// client is the premature-reclamation bug — the oracle must flag it.
    #[test]
    fn premature_collection_is_flagged() {
        let owner = sid(1);
        let client = sid(2);
        let t = rep(1, 9);
        let owner_trace = vec![
            ev(
                0,
                10,
                TraceKind::DirtyApplied {
                    owner,
                    client,
                    target: t,
                    seqno: 1,
                },
            ),
            ev(1, 20, TraceKind::ExportCollected { owner, target: t }),
        ];
        let client_trace = vec![ev(
            0,
            12,
            TraceKind::DirtyAcked {
                client,
                owner,
                target: t,
                seqno: 1,
                ok: true,
            },
        )];
        let report = replay_traces(&[(owner, owner_trace), (client, client_trace)]);
        assert!(!report.is_conformant());
        assert!(
            report.violations[0].contains("premature reclamation"),
            "{:?}",
            report.violations
        );
    }

    /// A crash retires the space: its dangling clean-side events are
    /// dropped instead of reported as unresolved.
    #[test]
    fn crash_retires_participants() {
        let owner = sid(1);
        let client = sid(2);
        let t = rep(1, 4);
        let owner_trace = vec![
            ev(
                0,
                10,
                TraceKind::DirtyApplied {
                    owner,
                    client,
                    target: t,
                    seqno: 1,
                },
            ),
            ev(1, 50, TraceKind::ClientPurged { owner, client }),
            ev(2, 55, TraceKind::ExportCollected { owner, target: t }),
        ];
        let client_trace = vec![
            ev(
                0,
                12,
                TraceKind::DirtyAcked {
                    client,
                    owner,
                    target: t,
                    seqno: 1,
                    ok: true,
                },
            ),
            ev(1, 40, TraceKind::SpaceCrashed { space: client }),
        ];
        let report = replay_traces(&[(owner, owner_trace), (client, client_trace)]);
        assert!(
            report.is_conformant(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.unresolved.is_empty(), "{:?}", report.unresolved);
    }

    /// Cross-space clock skew: the client's events carry earlier
    /// timestamps than the owner's. The retry queue must still converge.
    #[test]
    fn skewed_timestamps_converge() {
        let owner = sid(1);
        let client = sid(2);
        let t = rep(1, 2);
        // Client ring claims everything happened at t=0..3 while the
        // owner ring is at t=100+: acks sort before their causes.
        let owner_trace = vec![
            ev(
                0,
                100,
                TraceKind::DirtyApplied {
                    owner,
                    client,
                    target: t,
                    seqno: 1,
                },
            ),
            ev(
                1,
                110,
                TraceKind::CleanApplied {
                    owner,
                    client,
                    target: t,
                    seqno: 2,
                    strong: false,
                },
            ),
        ];
        let client_trace = vec![
            ev(
                0,
                0,
                TraceKind::DirtyAcked {
                    client,
                    owner,
                    target: t,
                    seqno: 1,
                    ok: true,
                },
            ),
            ev(
                1,
                1,
                TraceKind::SurrogateDropped {
                    client,
                    target: t,
                    epoch: 0,
                },
            ),
            ev(
                2,
                2,
                TraceKind::CleanSent {
                    client,
                    owner,
                    target: t,
                    seqno: 2,
                    strong: false,
                    batched: false,
                },
            ),
            ev(
                3,
                3,
                TraceKind::CleanAcked {
                    client,
                    owner,
                    target: t,
                    seqno: 2,
                },
            ),
        ];
        let report = replay_traces(&[(owner, owner_trace), (client, client_trace)]);
        assert!(
            report.is_conformant(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.unresolved.is_empty(), "{:?}", report.unresolved);
        assert!(report.final_config.quiescent());
    }

    #[test]
    fn empty_trace_is_conformant() {
        let report = replay_traces(&[]);
        assert!(report.is_conformant());
        assert_eq!(report.events, 0);
        assert_eq!(report.transitions, 0);
    }
}
