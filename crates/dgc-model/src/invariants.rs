//! Invariant checkers: every lemma of the correctness proof, executable.
//!
//! Each checker returns `Err(description)` when its property is violated.
//! [`check_all`] runs the full battery; the exploration drivers call it
//! after every transition, turning the paper's inductive proof into a
//! machine-checked property over millions of reachable states.

use crate::state::{Config, Msg, Proc, RecState, Ref};

/// Result of an invariant check.
pub type Check = Result<(), String>;

fn fail(args: std::fmt::Arguments<'_>) -> Check {
    Err(args.to_string())
}

/// Lemma 1: `rec(p, r) = ccitnil ⇒ r ∈ dirty_call_todo(p)`.
pub fn lemma1(c: &Config) -> Check {
    for (&(p, r), &s) in &c.rec {
        if s == RecState::CcitNil
            && !c
                .dirty_call_todo
                .get(&p)
                .is_some_and(|set| set.contains(&r))
        {
            return fail(format_args!(
                "lemma1: {p:?} has {r:?} in ccitnil without a scheduled dirty call"
            ));
        }
    }
    Ok(())
}

/// Lemma 2: `r ∈ clean_call_todo(p) ⇒ rec(p, r) = OK`.
pub fn lemma2(c: &Config) -> Check {
    for (&p, set) in &c.clean_call_todo {
        for &r in set {
            if c.rec(p, r) != RecState::Ok {
                return fail(format_args!(
                    "lemma2: {p:?} scheduled clean for {r:?} in state {}",
                    c.rec(p, r)
                ));
            }
        }
    }
    Ok(())
}

/// The four mutually exclusive witnesses of a transient dirty entry
/// (Invariant 1 / Lemma 3).
fn transient_witnesses(c: &Config, p1: Proc, p2: Proc, r: Ref, id: u64) -> Vec<&'static str> {
    let mut w = Vec::new();
    if c.channels
        .get(&(p1, p2))
        .is_some_and(|ch| ch.contains(&Msg::Copy(r, id)))
    {
        w.push("copy in transit");
    }
    if c.blocked
        .get(&(p2, r))
        .is_some_and(|set| set.contains(&(id, p1)))
    {
        w.push("blocked entry");
    }
    if c.channels
        .get(&(p2, p1))
        .is_some_and(|ch| ch.contains(&Msg::CopyAck(r, id)))
    {
        w.push("copy_ack in transit");
    }
    if c.copy_ack_todo
        .get(&p2)
        .is_some_and(|set| set.contains(&(id, p1, r)))
    {
        w.push("copy_ack scheduled");
    }
    w
}

/// Invariant 1 (Lemma 3): a transient dirty entry `(p1, p2, id)` in
/// `tdirty(p1, r)` exists iff exactly one of the four witnesses holds.
pub fn invariant1(c: &Config) -> Check {
    // Direction 1: every transient entry has exactly one witness.
    for (&(p1, r), set) in &c.tdirty {
        for &(sp, p2, id) in set {
            if sp != p1 {
                return fail(format_args!(
                    "invariant1: entry {sp:?} stored under {p1:?} for {r:?}"
                ));
            }
            let w = transient_witnesses(c, p1, p2, r, id);
            if w.len() != 1 {
                return fail(format_args!(
                    "invariant1: entry ({p1:?},{p2:?},{id}) for {r:?} has witnesses {w:?}"
                ));
            }
        }
    }
    // Direction 2: every witness corresponds to a transient entry.
    for (&(from, to), msgs) in &c.channels {
        for &m in msgs {
            match m {
                Msg::Copy(r, id)
                    if !c
                        .tdirty
                        .get(&(from, r))
                        .is_some_and(|s| s.contains(&(from, to, id))) =>
                {
                    return fail(format_args!(
                        "invariant1: copy({r:?},{id}) in transit without transient entry"
                    ));
                }
                Msg::CopyAck(r, id)
                    if !c
                        .tdirty
                        .get(&(to, r))
                        .is_some_and(|s| s.contains(&(to, from, id))) =>
                {
                    return fail(format_args!(
                        "invariant1: copy_ack({r:?},{id}) in transit without transient entry"
                    ));
                }
                _ => {}
            }
        }
    }
    for (&(p2, r), set) in &c.blocked {
        for &(id, p1) in set {
            if !c
                .tdirty
                .get(&(p1, r))
                .is_some_and(|s| s.contains(&(p1, p2, id)))
            {
                return fail(format_args!(
                    "invariant1: blocked entry ({id},{p1:?}) at {p2:?} without transient entry"
                ));
            }
        }
    }
    for (&p2, set) in &c.copy_ack_todo {
        for &(id, p1, r) in set {
            if !c
                .tdirty
                .get(&(p1, r))
                .is_some_and(|s| s.contains(&(p1, p2, id)))
            {
                return fail(format_args!(
                    "invariant1: scheduled copy_ack ({id},{p1:?},{r:?}) without transient entry"
                ));
            }
        }
    }
    Ok(())
}

/// Lemma 4: a clean message in transit (or scheduled ack, or ack in
/// transit) implies `rec(p1, r) ∈ {ccit, ccitnil}`; the three witnesses
/// are mutually exclusive.
pub fn lemma4(c: &Config) -> Check {
    for p1 in c.procs() {
        for r in c.refs() {
            let p2 = c.owner(r);
            let clean_in_transit = c
                .channels
                .get(&(p1, p2))
                .is_some_and(|ch| ch.contains(&Msg::Clean(r)));
            let ack_scheduled = c
                .clean_ack_todo
                .get(&p2)
                .is_some_and(|s| s.contains(&(p1, r)));
            let ack_in_transit = c
                .channels
                .get(&(p2, p1))
                .is_some_and(|ch| ch.contains(&Msg::CleanAck(r)));
            let count = [clean_in_transit, ack_scheduled, ack_in_transit]
                .iter()
                .filter(|b| **b)
                .count();
            if count > 1 {
                return fail(format_args!(
                    "lemma4: multiple clean witnesses for ({p1:?},{r:?})"
                ));
            }
            if count == 1 {
                let s = c.rec(p1, r);
                if s != RecState::Ccit && s != RecState::CcitNil {
                    return fail(format_args!(
                        "lemma4: clean activity for ({p1:?},{r:?}) but state {s}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Lemma 5: (a) a scheduled dirty call implies state nil/ccitnil;
/// (b) a dirty or dirty-ack in transit (or scheduled ack) implies nil;
/// (c) the four witnesses are mutually exclusive.
pub fn lemma5(c: &Config) -> Check {
    for p1 in c.procs() {
        for r in c.refs() {
            let p2 = c.owner(r);
            let scheduled = c.dirty_call_todo.get(&p1).is_some_and(|s| s.contains(&r));
            let dirty_in_transit = c
                .channels
                .get(&(p1, p2))
                .is_some_and(|ch| ch.contains(&Msg::Dirty(r)));
            let ack_scheduled = c
                .dirty_ack_todo
                .get(&p2)
                .is_some_and(|s| s.contains(&(p1, r)));
            let ack_in_transit = c
                .channels
                .get(&(p2, p1))
                .is_some_and(|ch| ch.contains(&Msg::DirtyAck(r)));

            let count = [scheduled, dirty_in_transit, ack_scheduled, ack_in_transit]
                .iter()
                .filter(|b| **b)
                .count();
            if count > 1 {
                return fail(format_args!(
                    "lemma5c: multiple dirty witnesses for ({p1:?},{r:?})"
                ));
            }
            let s = c.rec(p1, r);
            if scheduled && s != RecState::Nil && s != RecState::CcitNil {
                return fail(format_args!(
                    "lemma5a: dirty scheduled for ({p1:?},{r:?}) in state {s}"
                ));
            }
            if (dirty_in_transit || ack_scheduled || ack_in_transit) && s != RecState::Nil {
                return fail(format_args!(
                    "lemma5b: dirty in flight for ({p1:?},{r:?}) in state {s}"
                ));
            }
        }
    }
    Ok(())
}

/// Invariant 2 (Lemma 6): for non-owner `p1`,
/// `p1 ∈ pdirty(owner, r) ∨ dirty in transit ∨ dirty scheduled`
/// ⇔ `clean in transit ∨ rec ∈ {OK, nil, ccitnil}`.
pub fn invariant2(c: &Config) -> Check {
    for p1 in c.procs() {
        for r in c.refs() {
            let p2 = c.owner(r);
            if p1 == p2 {
                continue;
            }
            let lhs = c.pdirty.get(&(p2, r)).is_some_and(|s| s.contains(&p1))
                || c.channels
                    .get(&(p1, p2))
                    .is_some_and(|ch| ch.contains(&Msg::Dirty(r)))
                || c.dirty_call_todo.get(&p1).is_some_and(|s| s.contains(&r));
            let s = c.rec(p1, r);
            let rhs = c
                .channels
                .get(&(p1, p2))
                .is_some_and(|ch| ch.contains(&Msg::Clean(r)))
                || matches!(s, RecState::Ok | RecState::Nil | RecState::CcitNil);
            if lhs != rhs {
                return fail(format_args!(
                    "invariant2: mismatch for ({p1:?},{r:?}): lhs={lhs} rhs={rhs} state={s}"
                ));
            }
        }
    }
    Ok(())
}

/// Lemma 7: a transient entry at `p1` implies `rec(p1, r) = OK`.
pub fn lemma7(c: &Config) -> Check {
    for (&(p1, r), set) in &c.tdirty {
        if !set.is_empty() && c.rec(p1, r) != RecState::Ok {
            return fail(format_args!(
                "lemma7: transient entries at ({p1:?},{r:?}) in state {}",
                c.rec(p1, r)
            ));
        }
    }
    Ok(())
}

/// Lemma 8: a not-yet-usable reference with registration in flight has a
/// blocked entry witnessing the copy that delivered it.
pub fn lemma8(c: &Config) -> Check {
    for p1 in c.procs() {
        for r in c.refs() {
            let s = c.rec(p1, r);
            if s != RecState::Nil && s != RecState::CcitNil {
                continue;
            }
            let registering = c
                .channels
                .get(&(p1, c.owner(r)))
                .is_some_and(|ch| ch.contains(&Msg::Dirty(r)))
                || c.dirty_call_todo
                    .get(&p1)
                    .is_some_and(|set| set.contains(&r));
            if registering && !c.blocked.get(&(p1, r)).is_some_and(|set| !set.is_empty()) {
                return fail(format_args!(
                    "lemma8: ({p1:?},{r:?}) registering in state {s} with no blocked entry"
                ));
            }
        }
    }
    Ok(())
}

/// Lemma 19: a blocked entry exists iff a dirty call/ack (or their
/// scheduling) is in flight for the same reference.
pub fn lemma19(c: &Config) -> Check {
    for (&(p2, r), set) in &c.blocked {
        if set.is_empty() {
            continue;
        }
        let owner = c.owner(r);
        let witness = c.dirty_call_todo.get(&p2).is_some_and(|s| s.contains(&r))
            || c.channels
                .get(&(p2, owner))
                .is_some_and(|ch| ch.contains(&Msg::Dirty(r)))
            || c.dirty_ack_todo
                .get(&owner)
                .is_some_and(|s| s.contains(&(p2, r)))
            || c.channels
                .get(&(owner, p2))
                .is_some_and(|ch| ch.contains(&Msg::DirtyAck(r)));
        if !witness {
            return fail(format_args!(
                "lemma19: blocked entries at ({p2:?},{r:?}) with no registration in flight"
            ));
        }
    }
    Ok(())
}

/// Lemma 20: `rec(p, r) = nil` implies a blocked entry exists.
pub fn lemma20(c: &Config) -> Check {
    for (&(p, r), &s) in &c.rec {
        if s == RecState::Nil && !c.blocked.get(&(p, r)).is_some_and(|set| !set.is_empty()) {
            return fail(format_args!(
                "lemma20: ({p:?},{r:?}) is nil with no blocked entry"
            ));
        }
    }
    Ok(())
}

/// The safety requirement (Definition 12): any potentially usable remote
/// reference — state OK/nil/ccitnil at a non-owner, or a copy in transit —
/// implies the owner's dirty tables are non-empty for that reference.
pub fn safety(c: &Config) -> Check {
    for r in c.refs() {
        let owner = c.owner(r);
        let mut threatened = false;
        for p1 in c.procs() {
            if p1 != owner
                && matches!(
                    c.rec(p1, r),
                    RecState::Ok | RecState::Nil | RecState::CcitNil
                )
            {
                threatened = true;
            }
        }
        if c.count_messages(|m| matches!(m, Msg::Copy(rr, _) if *rr == r)) > 0 {
            threatened = true;
        }
        if threatened {
            let pdirty_nonempty = c.pdirty.get(&(owner, r)).is_some_and(|s| !s.is_empty());
            let tdirty_nonempty = c.tdirty.get(&(owner, r)).is_some_and(|s| !s.is_empty());
            if !pdirty_nonempty && !tdirty_nonempty {
                return fail(format_args!(
                    "SAFETY VIOLATION: {r:?} is remotely referenced but owner {owner:?} \
                     has empty dirty tables — the object could be reclaimed"
                ));
            }
        }
    }
    Ok(())
}

/// Runs every invariant; returns the first violation.
pub fn check_all(c: &Config) -> Check {
    lemma1(c)?;
    lemma2(c)?;
    invariant1(c)?;
    lemma4(c)?;
    lemma5(c)?;
    invariant2(c)?;
    lemma7(c)?;
    lemma8(c)?;
    lemma19(c)?;
    lemma20(c)?;
    safety(c)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{apply, Transition};

    #[test]
    fn initial_config_satisfies_all() {
        let c = Config::new(4, &[0, 1, 2]);
        check_all(&c).unwrap();
    }

    #[test]
    fn invariants_hold_through_a_life_cycle() {
        let mut c = Config::new(2, &[0]);
        let steps = [
            Transition::MakeCopy(Proc(0), Proc(1), Ref(0)),
            Transition::ReceiveCopy(Proc(0), Proc(1), Ref(0), 0),
            Transition::DoDirtyCall(Proc(1), Ref(0)),
            Transition::ReceiveDirty(Proc(1), Proc(0), Ref(0)),
            Transition::DoDirtyAck(Proc(0), Proc(1), Ref(0)),
            Transition::ReceiveDirtyAck(Proc(0), Proc(1), Ref(0)),
            Transition::DoCopyAck(Proc(1), Proc(0), Ref(0), 0),
            Transition::ReceiveCopyAck(Proc(1), Proc(0), Ref(0), 0),
        ];
        for t in steps {
            apply(&mut c, t);
            check_all(&c).unwrap_or_else(|e| panic!("after {t:?}: {e}"));
        }
    }

    #[test]
    fn violations_are_detected() {
        // Manufacture a corrupt state: a usable remote reference with no
        // dirty entry at the owner.
        let mut c = Config::new(2, &[0]);
        c.set_rec(Proc(1), Ref(0), RecState::Ok);
        assert!(safety(&c).is_err());
        assert!(invariant2(&c).is_err());
    }

    #[test]
    fn naive_race_outcome_violates_safety() {
        // The Figure-1 scenario outcome under naive counting: p2 holds the
        // reference usable, but the owner's listing is empty because a
        // decrement raced past an increment. Expressed in reference
        // listing terms, the checker must flag it.
        let mut c = Config::new(3, &[0]);
        c.set_rec(Proc(1), Ref(0), RecState::Ok);
        c.set_rec(Proc(2), Ref(0), RecState::Bot);
        // Owner's tables empty.
        let err = safety(&c).unwrap_err();
        assert!(err.contains("SAFETY VIOLATION"), "{err}");
    }

    #[test]
    fn mutual_exclusivity_detected() {
        // A copy and its ack simultaneously in transit for the same id.
        let mut c = Config::new(2, &[0]);
        apply(&mut c, Transition::MakeCopy(Proc(0), Proc(1), Ref(0)));
        // Forge the duplicate witness.
        c.post(Proc(1), Proc(0), Msg::CopyAck(Ref(0), 0));
        assert!(invariant1(&c).is_err());
    }
}
