//! The abstract machine's state space.
//!
//! A configuration is exactly the tuple of the formal specification: per
//! (process, reference) receive states, transient and permanent dirty
//! tables, the blocked table, the five to-do tables, and channels —
//! multisets of messages per ordered process pair.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A process identifier (index into the configuration's process set).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Proc(pub usize);

/// A reference identifier (index into the configuration's reference set).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Ref(pub usize);

/// A copy-message identifier, fresh per transmission.
pub type CopyId = u64;

/// Messages exchanged by the collector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Msg {
    /// A reference copy in transit.
    Copy(Ref, CopyId),
    /// Acknowledges receipt (and registration) of a copy.
    CopyAck(Ref, CopyId),
    /// Registers the sender with the reference's owner.
    Dirty(Ref),
    /// Acknowledges a dirty call.
    DirtyAck(Ref),
    /// Unregisters the sender.
    Clean(Ref),
    /// Acknowledges a clean call.
    CleanAck(Ref),
}

/// The receive-table states (`rec_T`) of a reference at a process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub enum RecState {
    /// `⊥`: pre-existence (or reclaimed).
    #[default]
    Bot,
    /// `nil`: received but not yet registered.
    Nil,
    /// `OK`: usable.
    Ok,
    /// `ccit`: clean call in transit.
    Ccit,
    /// `ccitnil`: clean in transit, but a new copy arrived.
    CcitNil,
}

impl fmt::Display for RecState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecState::Bot => "⊥",
            RecState::Nil => "nil",
            RecState::Ok => "OK",
            RecState::Ccit => "ccit",
            RecState::CcitNil => "ccitnil",
        };
        write!(f, "{s}")
    }
}

/// A transient dirty entry: (sender, receiver, copy id).
pub type TransientEntry = (Proc, Proc, CopyId);

/// A blocked-table entry: (copy id, sender).
pub type BlockedEntry = (CopyId, Proc);

/// A configuration of the abstract machine.
///
/// `BTreeMap`/`BTreeSet` keep iteration deterministic, which matters for
/// reproducible exploration and for hashing states during exhaustive
/// search.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Config {
    /// Number of processes.
    pub nprocs: usize,
    /// Owner of each reference.
    pub owner: Vec<Proc>,
    /// Channels: multiset of messages per ordered pair, encoded as a
    /// sorted vector (bag semantics: duplicates allowed).
    pub channels: BTreeMap<(Proc, Proc), Vec<Msg>>,
    /// `rec_T`.
    pub rec: BTreeMap<(Proc, Ref), RecState>,
    /// `tdirty_T`: transient dirty entries per (process, reference).
    pub tdirty: BTreeMap<(Proc, Ref), BTreeSet<TransientEntry>>,
    /// `pdirty_T`: permanent dirty entries per (owner process, reference).
    pub pdirty: BTreeMap<(Proc, Ref), BTreeSet<Proc>>,
    /// `blocked_T`.
    pub blocked: BTreeMap<(Proc, Ref), BTreeSet<BlockedEntry>>,
    /// `copy_ack_todo_T`: (id, peer, ref) triples per process.
    pub copy_ack_todo: BTreeMap<Proc, BTreeSet<(CopyId, Proc, Ref)>>,
    /// `dirty_ack_todo_T`: (peer, ref) pairs per process.
    pub dirty_ack_todo: BTreeMap<Proc, BTreeSet<(Proc, Ref)>>,
    /// `clean_ack_todo_T`: (peer, ref) pairs per process.
    pub clean_ack_todo: BTreeMap<Proc, BTreeSet<(Proc, Ref)>>,
    /// `dirty_call_todo_T`.
    pub dirty_call_todo: BTreeMap<Proc, BTreeSet<Ref>>,
    /// `clean_call_todo_T`.
    pub clean_call_todo: BTreeMap<Proc, BTreeSet<Ref>>,
    /// The mutator's local-reachability predicate (`locallyLive`),
    /// controlled by the driver, not by collector transitions.
    pub live: BTreeSet<(Proc, Ref)>,
    /// Fresh copy-identifier source.
    pub next_id: CopyId,
}

impl Config {
    /// Builds the initial configuration: empty tables and channels, each
    /// reference usable (and live) at its owner.
    ///
    /// The specification's initial state has `rec_T = ⊥` everywhere, which
    /// taken literally would leave the machine unable to fire any rule; a
    /// computation begins with each owner holding its own reference, so we
    /// initialise `rec_T(owner(r), r) = OK`. (Lemma 9 of the proof
    /// explicitly excludes the owner, confirming this reading.)
    pub fn new(nprocs: usize, owners: &[usize]) -> Config {
        assert!(nprocs >= 1);
        let owner: Vec<Proc> = owners
            .iter()
            .map(|&o| {
                assert!(o < nprocs, "owner index out of range");
                Proc(o)
            })
            .collect();
        let mut rec = BTreeMap::new();
        let mut live = BTreeSet::new();
        for (i, &o) in owner.iter().enumerate() {
            rec.insert((o, Ref(i)), RecState::Ok);
            live.insert((o, Ref(i)));
        }
        Config {
            nprocs,
            owner,
            channels: BTreeMap::new(),
            rec,
            tdirty: BTreeMap::new(),
            pdirty: BTreeMap::new(),
            blocked: BTreeMap::new(),
            copy_ack_todo: BTreeMap::new(),
            dirty_ack_todo: BTreeMap::new(),
            clean_ack_todo: BTreeMap::new(),
            dirty_call_todo: BTreeMap::new(),
            clean_call_todo: BTreeMap::new(),
            live,
            next_id: 0,
        }
    }

    /// All processes.
    pub fn procs(&self) -> impl Iterator<Item = Proc> {
        (0..self.nprocs).map(Proc)
    }

    /// All references.
    pub fn refs(&self) -> impl Iterator<Item = Ref> {
        (0..self.owner.len()).map(Ref)
    }

    /// The owner of `r`.
    pub fn owner(&self, r: Ref) -> Proc {
        self.owner[r.0]
    }

    /// The receive state of `r` at `p` (absent = `⊥`).
    pub fn rec(&self, p: Proc, r: Ref) -> RecState {
        self.rec.get(&(p, r)).copied().unwrap_or(RecState::Bot)
    }

    pub(crate) fn set_rec(&mut self, p: Proc, r: Ref, s: RecState) {
        if s == RecState::Bot {
            self.rec.remove(&(p, r));
        } else {
            self.rec.insert((p, r), s);
        }
    }

    /// Posts a message into the channel `from → to`.
    pub fn post(&mut self, from: Proc, to: Proc, m: Msg) {
        self.channels.entry((from, to)).or_default().push(m);
    }

    /// Removes one instance of `m` from the channel `from → to`.
    ///
    /// Panics if the message is not in transit (rule guards check first).
    pub fn receive(&mut self, from: Proc, to: Proc, m: Msg) {
        let chan = self
            .channels
            .get_mut(&(from, to))
            .expect("receive from empty channel");
        let pos = chan
            .iter()
            .position(|x| *x == m)
            .expect("message not in transit");
        chan.swap_remove(pos);
        if chan.is_empty() {
            self.channels.remove(&(from, to));
        }
        // Keep the bag canonical so Config equality/hash is well defined.
        if let Some(chan) = self.channels.get_mut(&(from, to)) {
            chan.sort_unstable();
        }
    }

    /// Counts messages matching a predicate across all channels.
    pub fn count_messages(&self, f: impl Fn(&Msg) -> bool) -> usize {
        self.channels.values().flatten().filter(|m| f(m)).count()
    }

    /// True if no collector message is in transit and every to-do table is
    /// empty (only mutator transitions could change anything).
    pub fn quiescent(&self) -> bool {
        self.channels.values().all(|c| c.is_empty())
            && self.copy_ack_todo.values().all(|s| s.is_empty())
            && self.dirty_ack_todo.values().all(|s| s.is_empty())
            && self.clean_ack_todo.values().all(|s| s.is_empty())
            && self.dirty_call_todo.values().all(|s| s.is_empty())
            && self.clean_call_todo.values().all(|s| s.is_empty())
    }

    /// Canonicalises channel bags after bulk edits (sorting).
    pub fn normalize(&mut self) {
        for chan in self.channels.values_mut() {
            chan.sort_unstable();
        }
        self.channels.retain(|_, c| !c.is_empty());
    }

    /// Driver action: the mutator drops its local reference (enables the
    /// `finalize` rule once nothing else keeps it live).
    pub fn drop_ref(&mut self, p: Proc, r: Ref) {
        self.live.remove(&(p, r));
    }

    /// Driver action: the mutator (re)uses a reference it holds.
    pub fn mark_live(&mut self, p: Proc, r: Ref) {
        self.live.insert((p, r));
    }

    /// True if the mutator holds `r` live at `p`.
    pub fn is_live(&self, p: Proc, r: Ref) -> bool {
        self.live.contains(&(p, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_config_owner_ok() {
        let c = Config::new(3, &[0, 1]);
        assert_eq!(c.rec(Proc(0), Ref(0)), RecState::Ok);
        assert_eq!(c.rec(Proc(1), Ref(1)), RecState::Ok);
        assert_eq!(c.rec(Proc(2), Ref(0)), RecState::Bot);
        assert!(c.quiescent());
        assert!(c.is_live(Proc(0), Ref(0)));
    }

    #[test]
    fn channels_are_bags() {
        let mut c = Config::new(2, &[0]);
        let m = Msg::Dirty(Ref(0));
        c.post(Proc(0), Proc(1), m);
        c.post(Proc(0), Proc(1), m);
        assert_eq!(c.count_messages(|x| *x == m), 2);
        c.receive(Proc(0), Proc(1), m);
        assert_eq!(c.count_messages(|x| *x == m), 1);
        c.receive(Proc(0), Proc(1), m);
        assert_eq!(c.count_messages(|_| true), 0);
        assert!(c.quiescent());
    }

    #[test]
    #[should_panic(expected = "message not in transit")]
    fn receive_missing_panics() {
        let mut c = Config::new(2, &[0]);
        c.post(Proc(0), Proc(1), Msg::Dirty(Ref(0)));
        c.receive(Proc(0), Proc(1), Msg::Clean(Ref(0)));
    }

    #[test]
    fn config_equality_ignores_bag_order() {
        let mut a = Config::new(2, &[0]);
        a.post(Proc(0), Proc(1), Msg::Clean(Ref(0)));
        a.post(Proc(0), Proc(1), Msg::Dirty(Ref(0)));
        a.normalize();
        let mut b = Config::new(2, &[0]);
        b.post(Proc(0), Proc(1), Msg::Dirty(Ref(0)));
        b.post(Proc(0), Proc(1), Msg::Clean(Ref(0)));
        b.normalize();
        assert_eq!(a, b);
    }
}
