//! The fault-tolerant extension: lossy channels, timeouts, sequence
//! numbers, strong cleans — the "outer cube".
//!
//! The failure-free specification assumes reliable channels. The original
//! system tolerated message loss with three mechanisms, which this module
//! formalises and explores:
//!
//! 1. **Sequence numbers.** Every dirty/clean carries a client-assigned,
//!    strictly increasing number; the owner keeps `seqno(O, P)` — the
//!    largest seen — and applies only newer operations.
//! 2. **Strong cleans.** When a dirty call's acknowledgement does not
//!    arrive, the client cannot know whether the owner heard it. The
//!    remedial action posts a *strong clean* with a fresh (higher) number:
//!    whether the lost dirty arrives before or after, the clean outranks
//!    it. The reference meanwhile sits in the resurrection state
//!    (`ccitnil`): once the clean is acknowledged, registration restarts.
//! 3. **Clean retry.** A clean whose acknowledgement is lost is re-sent
//!    with the *same* number; duplicates are no-ops at the owner.
//!
//! Timeouts are modelled as explicit transitions. With an **accurate**
//! failure detector (a timeout may fire only if the awaited message or
//! its trigger really was dropped), safety is preserved — the exploration
//! tests check the safety predicate at every step of adversarial
//! schedules that drop arbitrary messages. With a **premature** detector
//! (timeouts any time), registration timeouts remain safe (the strong
//! clean makes them so), but *transient-entry* timeouts can violate
//! safety — which is exactly why the runtime bounds sender pins with
//! generous timeouts rather than aggressive ones, and the tests
//! demonstrate the violation.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::state::{CopyId, Proc, Ref};

/// Messages of the fault-tolerant protocol (dirty/clean carry seqnos).
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum FtMsg {
    /// A reference copy.
    Copy(Ref, CopyId),
    /// Acknowledges a copy (after registration).
    CopyAck(Ref, CopyId),
    /// Registration with sequence number.
    Dirty(Ref, u64),
    /// Acknowledges `Dirty` with the same number.
    DirtyAck(Ref, u64),
    /// Unregistration; `bool` marks a strong clean.
    Clean(Ref, u64, bool),
    /// Acknowledges `Clean` with the same number.
    CleanAck(Ref, u64),
}

/// Client-side life-cycle states (inner cube; the detected-failure outer
/// states collapse into these after their remedial action, which is how
/// the paper's own analysis recommends reading them).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FtState {
    /// `⊥`.
    #[default]
    Bot,
    /// `nil`: dirty outstanding.
    Nil,
    /// `OK`.
    Ok,
    /// `ccit`: clean outstanding.
    Ccit,
    /// `ccitnil`: clean outstanding, resurrection wanted.
    CcitNil,
}

/// Per-(process, reference) client slot.
#[derive(Clone, Debug, Default)]
pub struct FtSlot {
    /// Life-cycle state.
    pub state: FtState,
    /// Sequence number of the outstanding dirty (when `Nil`).
    pub await_dirty: Option<u64>,
    /// Sequence number (and strength) of the outstanding clean.
    pub await_clean: Option<(u64, bool)>,
    /// Copy acknowledgements owed once registration completes.
    pub blocked: BTreeSet<(CopyId, Proc)>,
    /// Transient entries for copies this process sent: (receiver, id).
    pub tdirty: BTreeSet<(Proc, CopyId)>,
}

/// A schedulable step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FtStep {
    /// The mutator copies a held reference.
    Copy(Proc, Proc, Ref),
    /// The local collector drops an unreachable reference.
    Finalize(Proc, Ref),
    /// Deliver channel `(from, to)` message at `idx`.
    Deliver(Proc, Proc, usize),
    /// The adversary loses channel `(from, to)` message at `idx`.
    Drop(Proc, Proc, usize),
    /// Registration timeout: remedial strong clean (`nil → ccitnil`).
    TimeoutDirty(Proc, Ref),
    /// Cleanup timeout: re-send the clean with the same number.
    TimeoutClean(Proc, Ref),
    /// Transmission timeout: the sender abandons a transient entry.
    /// Only safe with an accurate detector; see module docs.
    TimeoutTransient(Proc, Ref, Proc, CopyId),
}

/// The fault-tolerant machine.
#[derive(Clone, Debug)]
pub struct FtConfig {
    /// Number of processes.
    pub nprocs: usize,
    /// Owner per reference.
    pub owner: Vec<Proc>,
    /// Channels (unordered bags; loss via [`FtStep::Drop`]).
    pub channels: BTreeMap<(Proc, Proc), Vec<FtMsg>>,
    /// Client slots.
    pub slots: BTreeMap<(Proc, Ref), FtSlot>,
    /// Owner dirty sets.
    pub pdirty: BTreeMap<(Proc, Ref), BTreeSet<Proc>>,
    /// The owner's `seqno(O, P)` floors.
    pub floor: BTreeMap<(Ref, Proc), u64>,
    /// Mutator reachability.
    pub live: BTreeSet<(Proc, Ref)>,
    /// Per-process sequence counters.
    pub next_seq: Vec<u64>,
    /// Fresh copy ids.
    pub next_id: CopyId,
    /// Records which awaited exchanges were hit by a drop, enabling
    /// *accurate* timeout transitions: (process, ref) pairs whose dirty
    /// exchange lost a message…
    pub dirty_broken: BTreeSet<(Proc, Ref)>,
    /// …whose clean exchange lost a message…
    pub clean_broken: BTreeSet<(Proc, Ref)>,
    /// …and transient entries whose copy/copy-ack was lost.
    pub transient_broken: BTreeSet<(Proc, Ref, Proc, CopyId)>,
    /// If true, timeout transitions are enabled even without a recorded
    /// loss (a premature / inaccurate failure detector).
    pub premature_timeouts: bool,
}

impl FtConfig {
    /// Initial configuration (references usable and live at their owner).
    pub fn new(nprocs: usize, owners: &[usize]) -> FtConfig {
        let owner: Vec<Proc> = owners.iter().map(|&o| Proc(o)).collect();
        let mut slots: BTreeMap<(Proc, Ref), FtSlot> = BTreeMap::new();
        let mut live = BTreeSet::new();
        for (i, &o) in owner.iter().enumerate() {
            slots.insert(
                (o, Ref(i)),
                FtSlot {
                    state: FtState::Ok,
                    ..FtSlot::default()
                },
            );
            live.insert((o, Ref(i)));
        }
        FtConfig {
            nprocs,
            owner,
            channels: BTreeMap::new(),
            slots,
            pdirty: BTreeMap::new(),
            floor: BTreeMap::new(),
            live,
            next_seq: vec![1; nprocs],
            next_id: 0,
            dirty_broken: BTreeSet::new(),
            clean_broken: BTreeSet::new(),
            transient_broken: BTreeSet::new(),
            premature_timeouts: false,
        }
    }

    /// The owner of `r`.
    pub fn owner(&self, r: Ref) -> Proc {
        self.owner[r.0]
    }

    fn slot(&mut self, p: Proc, r: Ref) -> &mut FtSlot {
        self.slots.entry((p, r)).or_default()
    }

    fn seq(&mut self, p: Proc) -> u64 {
        let s = self.next_seq[p.0];
        self.next_seq[p.0] += 1;
        s
    }

    fn post(&mut self, from: Proc, to: Proc, m: FtMsg) {
        self.channels.entry((from, to)).or_default().push(m);
    }

    /// Enumerates the enabled steps (mutator copies are driver-chosen and
    /// not listed; everything else is).
    pub fn steps(&self) -> Vec<FtStep> {
        let mut out = Vec::new();
        for (&(from, to), msgs) in &self.channels {
            for idx in 0..msgs.len() {
                out.push(FtStep::Deliver(from, to, idx));
                out.push(FtStep::Drop(from, to, idx));
            }
        }
        for (&(p, r), slot) in &self.slots {
            match slot.state {
                FtState::Nil => {
                    if self.premature_timeouts || self.dirty_broken.contains(&(p, r)) {
                        out.push(FtStep::TimeoutDirty(p, r));
                    }
                }
                FtState::Ccit | FtState::CcitNil => {
                    if self.premature_timeouts || self.clean_broken.contains(&(p, r)) {
                        out.push(FtStep::TimeoutClean(p, r));
                    }
                }
                FtState::Ok => {
                    if p != self.owner(r) && !self.live.contains(&(p, r)) && slot.tdirty.is_empty()
                    {
                        out.push(FtStep::Finalize(p, r));
                    }
                }
                FtState::Bot => {}
            }
            for &(to, id) in &slot.tdirty {
                if self.premature_timeouts || self.transient_broken.contains(&(p, r, to, id)) {
                    out.push(FtStep::TimeoutTransient(p, r, to, id));
                }
            }
        }
        out
    }

    /// Executes one step.
    pub fn step(&mut self, s: FtStep) {
        match s {
            FtStep::Copy(p1, p2, r) => {
                assert!(self
                    .slots
                    .get(&(p1, r))
                    .is_some_and(|s| s.state == FtState::Ok));
                assert!(self.live.contains(&(p1, r)));
                let id = self.next_id;
                self.next_id += 1;
                self.slot(p1, r).tdirty.insert((p2, id));
                self.post(p1, p2, FtMsg::Copy(r, id));
            }
            FtStep::Finalize(p, r) => {
                let owner = self.owner(r);
                assert_ne!(p, owner);
                let seq = self.seq(p);
                let slot = self.slot(p, r);
                assert_eq!(slot.state, FtState::Ok);
                assert!(slot.tdirty.is_empty());
                slot.state = FtState::Ccit;
                slot.await_clean = Some((seq, false));
                self.post(p, owner, FtMsg::Clean(r, seq, false));
            }
            FtStep::Drop(from, to, idx) => {
                let chan = self.channels.get_mut(&(from, to)).expect("channel");
                let m = chan.swap_remove(idx);
                if chan.is_empty() {
                    self.channels.remove(&(from, to));
                }
                // Record which exchange broke, for accurate timeouts.
                match m {
                    FtMsg::Dirty(r, seq) => {
                        if self
                            .slots
                            .get(&(from, r))
                            .is_some_and(|s| s.await_dirty == Some(seq))
                        {
                            self.dirty_broken.insert((from, r));
                        }
                    }
                    FtMsg::DirtyAck(r, seq) => {
                        if self
                            .slots
                            .get(&(to, r))
                            .is_some_and(|s| s.await_dirty == Some(seq))
                        {
                            self.dirty_broken.insert((to, r));
                        }
                    }
                    FtMsg::Clean(r, seq, _) => {
                        if self
                            .slots
                            .get(&(from, r))
                            .is_some_and(|s| s.await_clean.map(|(q, _)| q) == Some(seq))
                        {
                            self.clean_broken.insert((from, r));
                        }
                    }
                    FtMsg::CleanAck(r, seq) => {
                        if self
                            .slots
                            .get(&(to, r))
                            .is_some_and(|s| s.await_clean.map(|(q, _)| q) == Some(seq))
                        {
                            self.clean_broken.insert((to, r));
                        }
                    }
                    FtMsg::Copy(r, id) => {
                        self.transient_broken.insert((from, r, to, id));
                    }
                    FtMsg::CopyAck(r, id) => {
                        self.transient_broken.insert((to, r, from, id));
                    }
                }
            }
            FtStep::Deliver(from, to, idx) => {
                let chan = self.channels.get_mut(&(from, to)).expect("channel");
                let m = chan.swap_remove(idx);
                if chan.is_empty() {
                    self.channels.remove(&(from, to));
                }
                self.deliver(from, to, m);
            }
            FtStep::TimeoutDirty(p, r) => {
                // The remedial action from a suspected-failed dirty: a
                // strong clean with a fresh number, then (via ccitnil)
                // re-registration once it is acknowledged.
                self.dirty_broken.remove(&(p, r));
                let owner = self.owner(r);
                let seq = self.seq(p);
                let slot = self.slot(p, r);
                assert_eq!(slot.state, FtState::Nil);
                slot.state = FtState::CcitNil;
                slot.await_dirty = None;
                slot.await_clean = Some((seq, true));
                self.post(p, owner, FtMsg::Clean(r, seq, true));
            }
            FtStep::TimeoutClean(p, r) => {
                // Re-send the clean with the SAME number ("keeping the
                // same sequence number"); duplicates are no-ops.
                self.clean_broken.remove(&(p, r));
                let owner = self.owner(r);
                let (seq, strong) = self
                    .slots
                    .get(&(p, r))
                    .and_then(|s| s.await_clean)
                    .expect("clean outstanding");
                self.post(p, owner, FtMsg::Clean(r, seq, strong));
            }
            FtStep::TimeoutTransient(p, r, to, id) => {
                self.transient_broken.remove(&(p, r, to, id));
                let slot = self.slot(p, r);
                slot.tdirty.remove(&(to, id));
            }
        }
    }

    fn deliver(&mut self, from: Proc, to: Proc, m: FtMsg) {
        match m {
            FtMsg::Copy(r, id) => {
                let owner = self.owner(r);
                self.live.insert((to, r));
                if to == owner {
                    self.post(to, from, FtMsg::CopyAck(r, id));
                    return;
                }
                let state = self.slot(to, r).state;
                match state {
                    FtState::Bot => {
                        let seq = self.seq(to);
                        let slot = self.slot(to, r);
                        slot.state = FtState::Nil;
                        slot.await_dirty = Some(seq);
                        slot.blocked.insert((id, from));
                        self.post(to, owner, FtMsg::Dirty(r, seq));
                    }
                    FtState::Nil | FtState::CcitNil => {
                        self.slot(to, r).blocked.insert((id, from));
                    }
                    FtState::Ccit => {
                        let slot = self.slot(to, r);
                        slot.state = FtState::CcitNil;
                        slot.blocked.insert((id, from));
                    }
                    FtState::Ok => {
                        self.post(to, from, FtMsg::CopyAck(r, id));
                    }
                }
            }
            FtMsg::CopyAck(r, id) => {
                self.slot(to, r).tdirty.remove(&(from, id));
            }
            FtMsg::Dirty(r, seq) => {
                debug_assert_eq!(self.owner(r), to);
                let floor = self.floor.entry((r, from)).or_insert(0);
                if seq > *floor {
                    *floor = seq;
                    self.pdirty.entry((to, r)).or_default().insert(from);
                }
                // The acknowledgement echoes the number either way; the
                // client ignores stale acks.
                self.post(to, from, FtMsg::DirtyAck(r, seq));
            }
            FtMsg::DirtyAck(r, seq) => {
                let owner = from;
                let released: Vec<(CopyId, Proc)> = {
                    let slot = self.slot(to, r);
                    if slot.await_dirty != Some(seq) {
                        return; // Stale ack for an abandoned exchange.
                    }
                    slot.await_dirty = None;
                    slot.state = FtState::Ok;
                    let b = slot.blocked.iter().copied().collect();
                    slot.blocked.clear();
                    b
                };
                let _ = owner;
                for (id, sender) in released {
                    self.post(to, sender, FtMsg::CopyAck(r, id));
                }
            }
            FtMsg::Clean(r, seq, _strong) => {
                debug_assert_eq!(self.owner(r), to);
                let floor = self.floor.entry((r, from)).or_insert(0);
                if seq > *floor {
                    *floor = seq;
                    if let Some(set) = self.pdirty.get_mut(&(to, r)) {
                        set.remove(&from);
                        if set.is_empty() {
                            self.pdirty.remove(&(to, r));
                        }
                    }
                }
                self.post(to, from, FtMsg::CleanAck(r, seq));
            }
            FtMsg::CleanAck(r, seq) => {
                enum After {
                    Nothing,
                    Redirty,
                }
                let after = {
                    let slot = self.slot(to, r);
                    if slot.await_clean.map(|(q, _)| q) != Some(seq) {
                        After::Nothing // stale ack (e.g. of a retried clean)
                    } else {
                        slot.await_clean = None;
                        match slot.state {
                            FtState::Ccit => {
                                slot.state = FtState::Bot;
                                slot.blocked.clear();
                                After::Nothing
                            }
                            FtState::CcitNil => After::Redirty,
                            _ => After::Nothing,
                        }
                    }
                };
                if let After::Redirty = after {
                    let owner = self.owner(r);
                    let newseq = self.seq(to);
                    let slot = self.slot(to, r);
                    slot.state = FtState::Nil;
                    slot.await_dirty = Some(newseq);
                    self.post(to, owner, FtMsg::Dirty(r, newseq));
                }
            }
        }
    }

    /// The safety predicate: a usable reference at a non-owner, or a copy
    /// in transit, implies the owner's tables still protect the object
    /// (a permanent entry for someone, or an owner-side transient entry).
    pub fn check_safety(&self) -> Result<(), String> {
        for (i, &owner) in self.owner.iter().enumerate() {
            let r = Ref(i);
            let mut threatened = false;
            for (&(p, rr), slot) in &self.slots {
                if rr == r && p != owner && slot.state == FtState::Ok {
                    threatened = true;
                }
            }
            for chan in self.channels.values() {
                if chan
                    .iter()
                    .any(|m| matches!(m, FtMsg::Copy(rr, _) if *rr == r))
                {
                    threatened = true;
                }
            }
            if threatened {
                let pdirty_ok = self.pdirty.get(&(owner, r)).is_some_and(|s| !s.is_empty());
                let towner = self
                    .slots
                    .get(&(owner, r))
                    .is_some_and(|s| !s.tdirty.is_empty());
                if !pdirty_ok && !towner {
                    return Err(format!(
                        "FT SAFETY VIOLATION: {r:?} usable/in transit with empty owner tables"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Liveness check: quiescent (no messages, no pending exchanges) and
    /// all dirty sets empty.
    pub fn check_drained(&self) -> Result<(), String> {
        if self.channels.values().any(|c| !c.is_empty()) {
            return Err("messages in transit".into());
        }
        for (&(p, r), set) in &self.pdirty {
            if !set.is_empty() {
                return Err(format!("leak: pdirty({p:?},{r:?}) = {set:?}"));
            }
        }
        Ok(())
    }
}

/// Adversarial random walk: interleaves mutator activity, deliveries,
/// drops (up to `max_drops`) and timeouts, then stops dropping and drains.
/// Returns `Err` on a safety violation or failed drain.
pub fn walk(
    nprocs: usize,
    nrefs: usize,
    activity: u64,
    max_drops: u32,
    premature: bool,
    seed: u64,
) -> Result<FtConfig, String> {
    let owners: Vec<usize> = (0..nrefs).map(|i| i % nprocs).collect();
    let mut c = FtConfig::new(nprocs, &owners);
    c.premature_timeouts = premature;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut drops = 0u32;

    for _ in 0..activity {
        if rng.gen_bool(0.3) {
            let holders: Vec<(Proc, Ref)> = c
                .slots
                .iter()
                .filter(|(&(p, r), s)| s.state == FtState::Ok && c.live.contains(&(p, r)))
                .map(|(&k, _)| k)
                .collect();
            if let Some(&(p, r)) = holders.as_slice().choose(&mut rng) {
                let others: Vec<Proc> = (0..nprocs).map(Proc).filter(|&q| q != p).collect();
                if let Some(&q) = others.as_slice().choose(&mut rng) {
                    c.step(FtStep::Copy(p, q, r));
                }
            }
        }
        if rng.gen_bool(0.2) {
            let holders: Vec<(Proc, Ref)> = c
                .live
                .iter()
                .copied()
                .filter(|&(p, r)| p != c.owner(r))
                .collect();
            if let Some(&(p, r)) = holders.as_slice().choose(&mut rng) {
                c.live.remove(&(p, r));
            }
        }
        let steps: Vec<FtStep> = c
            .steps()
            .into_iter()
            .filter(|s| !matches!(s, FtStep::Drop(..)) || drops < max_drops)
            .collect();
        if let Some(&s) = steps.as_slice().choose(&mut rng) {
            if matches!(s, FtStep::Drop(..)) {
                drops += 1;
            }
            c.step(s);
        }
        c.check_safety()?;
    }

    // Drain: no more drops, keep dropping mutator liveness, run to
    // quiescence (timeouts handle whatever the adversary broke).
    let mut fuel = 1_000_000u64;
    loop {
        let relive: Vec<(Proc, Ref)> = c
            .live
            .iter()
            .copied()
            .filter(|&(p, r)| p != c.owner(r))
            .collect();
        for (p, r) in relive {
            c.live.remove(&(p, r));
        }
        let steps: Vec<FtStep> = c
            .steps()
            .into_iter()
            .filter(|s| !matches!(s, FtStep::Drop(..)))
            .collect();
        let Some(&s) = steps.as_slice().choose(&mut rng) else {
            break;
        };
        c.step(s);
        c.check_safety()?;
        fuel -= 1;
        if fuel == 0 {
            return Err("drain did not terminate".into());
        }
    }
    c.check_drained()?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_walks_match_base_behaviour() {
        for seed in 0..30 {
            walk(4, 2, 150, 0, false, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn lossy_walks_with_accurate_timeouts_are_safe_and_drain() {
        for seed in 0..100 {
            walk(4, 2, 200, 8, false, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn premature_registration_timeouts_are_still_safe() {
        // Strong cleans make even spurious dirty-timeouts safe: disable
        // transient timeouts by keeping drops at zero (so only the
        // premature dirty/clean timeouts can fire — transients never
        // break), and verify safety plus drain.
        for seed in 0..60 {
            let owners = [0usize];
            let mut c = FtConfig::new(3, &owners);
            c.premature_timeouts = true;
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..200 {
                if rng.gen_bool(0.3) {
                    let holders: Vec<(Proc, Ref)> = c
                        .slots
                        .iter()
                        .filter(|(&(p, r), s)| s.state == FtState::Ok && c.live.contains(&(p, r)))
                        .map(|(&k, _)| k)
                        .collect();
                    if let Some(&(p, r)) = holders.as_slice().choose(&mut rng) {
                        let others: Vec<Proc> = (0..3).map(Proc).filter(|&q| q != p).collect();
                        if let Some(&q) = others.as_slice().choose(&mut rng) {
                            c.step(FtStep::Copy(p, q, r));
                        }
                    }
                }
                let steps: Vec<FtStep> = c
                    .steps()
                    .into_iter()
                    .filter(|s| !matches!(s, FtStep::Drop(..) | FtStep::TimeoutTransient(..)))
                    .collect();
                if let Some(&s) = steps.as_slice().choose(&mut rng) {
                    c.step(s);
                }
                c.check_safety()
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn premature_transient_timeouts_can_violate_safety() {
        // The documented danger: abandoning a transient entry while the
        // copy is still in transit removes the last protection. Construct
        // it directly.
        let mut c = FtConfig::new(2, &[0]);
        c.premature_timeouts = true;
        let (owner, client, r) = (Proc(0), Proc(1), Ref(0));
        c.step(FtStep::Copy(owner, client, r));
        // Copy is in transit; the owner's transient entry protects it.
        c.check_safety().unwrap();
        // A premature transient timeout fires.
        c.step(FtStep::TimeoutTransient(owner, r, client, 0));
        assert!(
            c.check_safety().is_err(),
            "dropping the pin while the copy is in transit must be flagged"
        );
    }

    #[test]
    fn strong_clean_outranks_delayed_dirty() {
        let mut c = FtConfig::new(2, &[0]);
        let (owner, client, r) = (Proc(0), Proc(1), Ref(0));
        // Owner sends the reference; client receives and posts dirty(1).
        c.step(FtStep::Copy(owner, client, r));
        c.step(FtStep::Deliver(owner, client, 0));
        assert_eq!(c.slots[&(client, r)].state, FtState::Nil);

        // The dirty's ACK will be lost: deliver dirty, then drop the ack.
        c.step(FtStep::Deliver(client, owner, 0)); // dirty applied
        assert!(c.pdirty[&(owner, r)].contains(&client));
        c.step(FtStep::Drop(owner, client, 0)); // ack lost
        assert!(c.dirty_broken.contains(&(client, r)));

        // Timeout: strong clean(2) goes out; state ccitnil.
        c.step(FtStep::TimeoutDirty(client, r));
        assert_eq!(c.slots[&(client, r)].state, FtState::CcitNil);
        c.step(FtStep::Deliver(client, owner, 0)); // strong clean applied
        assert!(!c.pdirty.contains_key(&(owner, r)), "listing removed");

        // Clean ack returns; the client re-registers with dirty(3).
        c.step(FtStep::Deliver(owner, client, 0));
        assert_eq!(c.slots[&(client, r)].state, FtState::Nil);
        c.step(FtStep::Deliver(client, owner, 0)); // dirty(3)
        assert!(c.pdirty[&(owner, r)].contains(&client));
        c.step(FtStep::Deliver(owner, client, 0)); // ack(3)
        assert_eq!(c.slots[&(client, r)].state, FtState::Ok);
        // The ack released the deferred copy acknowledgement; flush it so
        // the next delivery below is the clean call.
        c.step(FtStep::Deliver(client, owner, 0));

        // Now a *delayed duplicate* of the old dirty(1) shows up (e.g.
        // a retransmission); the floor (3) must reject it — and, after
        // the client finally drops, the entry must not resurrect.
        c.live.remove(&(client, r));
        c.step(FtStep::Finalize(client, r)); // clean(4)
        c.step(FtStep::Deliver(client, owner, 0));
        assert!(!c.pdirty.contains_key(&(owner, r)));
        // Forge the delayed dirty(1).
        c.post(client, owner, FtMsg::Dirty(r, 1));
        c.step(FtStep::Deliver(client, owner, 0));
        assert!(
            !c.pdirty.contains_key(&(owner, r)),
            "stale dirty must not resurrect the entry"
        );
    }

    #[test]
    fn retried_clean_is_idempotent() {
        let mut c = FtConfig::new(2, &[0]);
        let (owner, client, r) = (Proc(0), Proc(1), Ref(0));
        // Register the client.
        c.step(FtStep::Copy(owner, client, r));
        c.step(FtStep::Deliver(owner, client, 0));
        c.step(FtStep::Deliver(client, owner, 0));
        c.step(FtStep::Deliver(owner, client, 0));
        // Flush the copy ack.
        c.step(FtStep::Deliver(client, owner, 0));
        // Drop + retry the clean twice; the owner must handle all copies.
        c.live.remove(&(client, r));
        c.step(FtStep::Finalize(client, r));
        c.step(FtStep::Drop(client, owner, 0));
        c.step(FtStep::TimeoutClean(client, r)); // resend, same seq
        c.step(FtStep::Deliver(client, owner, 0)); // applied
        c.step(FtStep::TimeoutClean(client, r)); // paranoid resend
        c.step(FtStep::Deliver(client, owner, 0)); // duplicate: no-op
        assert!(!c.pdirty.contains_key(&(owner, r)));
        // Both acks return; the first finishes the slot, the second is
        // stale and ignored.
        c.step(FtStep::Deliver(owner, client, 0));
        c.step(FtStep::Deliver(owner, client, 0));
        assert_eq!(c.slots[&(client, r)].state, FtState::Bot);
        c.check_drained().unwrap();
    }
}
