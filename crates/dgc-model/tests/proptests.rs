//! Property-based checks of the collector model.
//!
//! Every property here corresponds to a theorem of the correctness proof:
//! the invariants (hence safety) hold in every reachable state under
//! arbitrary schedules, the termination measure proves liveness, and the
//! drained machine leaves no dirty entries behind.

use proptest::prelude::*;

use netobj_dgc_model::explore::{assert_drained, random_walk, WalkPolicy};
use netobj_dgc_model::fifo;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Safety + liveness of the base algorithm under random schedules:
    /// `random_walk` panics on any invariant violation and on any
    /// non-decreasing termination-measure step; `assert_drained` is the
    /// liveness requirement.
    #[test]
    fn base_algorithm_safe_and_live(
        seed in any::<u64>(),
        nprocs in 2usize..5,
        nrefs in 1usize..3,
        activity in 20u64..150,
    ) {
        let (config, stats) = random_walk(
            WalkPolicy { nprocs, nrefs, activity, ..WalkPolicy::default() },
            seed,
        );
        assert_drained(&config);
        prop_assert!(stats.steps >= stats.mutator_steps);
    }

    /// The FIFO variant is safe and live on ordered channels.
    #[test]
    fn fifo_variant_safe_on_ordered_channels(
        seed in any::<u64>(),
        nprocs in 2usize..5,
        activity in 20u64..150,
    ) {
        let run = fifo::walk(nprocs, 1, activity, true, seed);
        prop_assert!(run.is_ok(), "violation: {:?}", run.err());
    }

    /// Determinism: identical seeds yield identical walks.
    #[test]
    fn walks_are_deterministic(seed in any::<u64>()) {
        let a = random_walk(WalkPolicy { activity: 50, ..WalkPolicy::default() }, seed);
        let b = random_walk(WalkPolicy { activity: 50, ..WalkPolicy::default() }, seed);
        prop_assert_eq!(a.0, b.0);
    }
}

/// Aggregate statistics sanity: across many seeds, walks must exercise
/// the interesting paths (resurrections require specific interleavings,
/// so we only require they appear somewhere in the batch).
#[test]
fn walk_batch_reaches_interesting_states() {
    let mut total_copies = 0;
    let mut total_drops = 0;
    for seed in 0..40 {
        let (_c, stats) = random_walk(
            WalkPolicy {
                nprocs: 4,
                nrefs: 2,
                activity: 120,
                ..WalkPolicy::default()
            },
            seed,
        );
        total_copies += stats.copies;
        total_drops += stats.drops;
    }
    assert!(total_copies > 100, "copies: {total_copies}");
    assert!(total_drops > 40, "drops: {total_drops}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fault-tolerant extension: any bounded-loss schedule with
    /// accurate timeouts is safe and drains completely.
    #[test]
    fn fault_model_safe_under_bounded_loss(
        seed in any::<u64>(),
        nprocs in 2usize..5,
        drops in 0u32..10,
    ) {
        let run = netobj_dgc_model::faults::walk(nprocs, 1, 150, drops, false, seed);
        prop_assert!(run.is_ok(), "violation: {:?}", run.err());
    }
}

/// The cube derivation is stable: the same projection falls out for any
/// seed budget large enough to cover the diagram.
#[test]
fn cube_projection_is_stable() {
    use netobj_dgc_model::cube;
    let a = cube::derive_edges(400, 400);
    let b = cube::derive_edges(400, 400);
    assert_eq!(a, b);
    assert_eq!(a, cube::figure4_edges());
}
