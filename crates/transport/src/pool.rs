//! Connection pooling.
//!
//! The original runtime cached connections to each address so that repeated
//! calls to the same space reuse a warm connection. [`ConnPool`] does the
//! same: at most one cached connection per endpoint, replaced transparently
//! if it has failed.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::endpoint::Endpoint;
use crate::registry::TransportRegistry;
use crate::{Conn, Result};

/// A cache of one shared connection per remote endpoint.
#[derive(Clone)]
pub struct ConnPool {
    registry: TransportRegistry,
    conns: Arc<Mutex<HashMap<Endpoint, Arc<dyn Conn>>>>,
}

impl ConnPool {
    /// Creates a pool that opens connections through `registry`.
    pub fn new(registry: TransportRegistry) -> ConnPool {
        ConnPool {
            registry,
            conns: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Returns the cached connection to `ep`, opening one if needed.
    pub fn get(&self, ep: &Endpoint) -> Result<Arc<dyn Conn>> {
        if let Some(c) = self.conns.lock().get(ep) {
            return Ok(Arc::clone(c));
        }
        let fresh: Arc<dyn Conn> = Arc::from(self.registry.connect(ep)?);
        let mut conns = self.conns.lock();
        // Double-checked: another thread may have connected concurrently;
        // prefer the existing one so both callers share it.
        if let Some(c) = conns.get(ep) {
            fresh.close();
            return Ok(Arc::clone(c));
        }
        conns.insert(ep.clone(), Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Drops the cached connection to `ep` (e.g. after an error), so the
    /// next [`ConnPool::get`] reconnects.
    pub fn invalidate(&self, ep: &Endpoint) {
        if let Some(c) = self.conns.lock().remove(ep) {
            c.close();
        }
    }

    /// Closes every cached connection.
    pub fn clear(&self) {
        let mut conns = self.conns.lock();
        for (_, c) in conns.drain() {
            c.close();
        }
    }

    /// Number of cached connections.
    pub fn len(&self) -> usize {
        self.conns.lock().len()
    }

    /// True if no connections are cached.
    pub fn is_empty(&self) -> bool {
        self.conns.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::Loopback;
    use crate::Bytes;
    use crate::TransportError;
    use std::time::Duration;

    fn setup() -> (ConnPool, TransportRegistry, Box<dyn crate::Listener>) {
        let reg = TransportRegistry::new();
        reg.register(Arc::new(Loopback::new()));
        let l = reg.listen(&Endpoint::loopback("srv")).unwrap();
        (ConnPool::new(reg.clone()), reg, l)
    }

    #[test]
    fn reuses_connection() {
        let (pool, _reg, _l) = setup();
        let ep = Endpoint::loopback("srv");
        let a = pool.get(&ep).unwrap();
        let b = pool.get(&ep).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn invalidate_reconnects() {
        let (pool, _reg, l) = setup();
        let ep = Endpoint::loopback("srv");
        let a = pool.get(&ep).unwrap();
        let _sa = l.accept().unwrap();
        pool.invalidate(&ep);
        assert!(pool.is_empty());
        let b = pool.get(&ep).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        // The old connection is closed.
        assert_eq!(
            a.send(Bytes::from(vec![1])).unwrap_err(),
            TransportError::Closed
        );
        // The new one works.
        let sb = l.accept().unwrap();
        b.send(Bytes::from(vec![2])).unwrap();
        assert_eq!(sb.recv_timeout(Duration::from_secs(1)).unwrap(), vec![2]);
    }

    #[test]
    fn clear_closes_everything() {
        let (pool, reg, _l) = setup();
        let _l2 = reg.listen(&Endpoint::loopback("srv2")).unwrap();
        let a = pool.get(&Endpoint::loopback("srv")).unwrap();
        let b = pool.get(&Endpoint::loopback("srv2")).unwrap();
        assert_eq!(pool.len(), 2);
        pool.clear();
        assert!(pool.is_empty());
        assert!(a.send(Bytes::from(vec![])).is_err());
        assert!(b.send(Bytes::from(vec![])).is_err());
    }

    #[test]
    fn connect_failure_propagates() {
        let (pool, _reg, _l) = setup();
        assert!(pool.get(&Endpoint::loopback("missing")).is_err());
        assert!(pool.is_empty());
    }
}
