//! The TCP transport: length-prefixed frames over `std::net` streams.
//!
//! Used by the cross-process examples and the loopback-TCP rows of the
//! latency experiments. `TCP_NODELAY` is set, as the original runtime did,
//! because RPC traffic is latency-bound, not throughput-bound.

use std::io::{IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bytes::Bytes;
use netobj_wire::frame::{frame_prefix, FrameDecoder};
use parking_lot::Mutex;

use crate::endpoint::Endpoint;
use crate::error::TransportError;
use crate::{Conn, Listener, Result, Transport};

/// The TCP transport (stateless; connections carry all state).
#[derive(Debug, Default, Clone, Copy)]
pub struct Tcp;

struct TcpConn {
    writer: Mutex<TcpStream>,
    reader: Mutex<(TcpStream, FrameDecoder)>,
    closed: AtomicBool,
    peer: Option<Endpoint>,
}

impl TcpConn {
    fn new(stream: TcpStream, peer: Option<Endpoint>) -> Result<TcpConn> {
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(TcpConn {
            writer: Mutex::new(stream),
            reader: Mutex::new((reader, FrameDecoder::default())),
            closed: AtomicBool::new(false),
            peer,
        })
    }

    fn recv_inner(&self, timeout: Option<Duration>) -> Result<Bytes> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let mut guard = self.reader.lock();
        let (stream, decoder) = &mut *guard;
        stream.set_read_timeout(timeout)?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = decoder.next_frame()? {
                return Ok(frame);
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => decoder.extend(&chunk[..n]),
                Err(e) => return Err(e.into()),
            }
        }
    }
}

impl Conn for TcpConn {
    fn send(&self, frame: Bytes) -> Result<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // Gathered write: length prefix + payload go out in one vectored
        // syscall with no re-assembled buffer. The manual loop keeps both
        // slices in the iovec until the prefix is fully written so NODELAY
        // never flushes a bare 4-byte segment.
        let prefix = frame_prefix(frame.len())?;
        let total = prefix.len() + frame.len();
        let mut w = self.writer.lock();
        let mut written = 0usize;
        while written < total {
            let n = if written < prefix.len() {
                let bufs = [IoSlice::new(&prefix[written..]), IoSlice::new(&frame)];
                w.write_vectored(&bufs)?
            } else {
                w.write(&frame[written - prefix.len()..])?
            };
            if n == 0 {
                return Err(TransportError::Closed);
            }
            written += n;
        }
        Ok(())
    }

    fn recv(&self) -> Result<Bytes> {
        self.recv_inner(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Bytes> {
        self.recv_inner(Some(timeout))
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let w = self.writer.lock();
        let _ = w.shutdown(Shutdown::Both);
    }

    fn peer(&self) -> Option<Endpoint> {
        self.peer.clone()
    }
}

struct TcpAcceptor {
    listener: TcpListener,
    local: Endpoint,
    closed: AtomicBool,
}

impl Listener for TcpAcceptor {
    fn accept(&self) -> Result<Box<dyn Conn>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let (stream, _addr) = self.listener.accept().map_err(|e| {
            if self.closed.load(Ordering::Acquire) {
                TransportError::Closed
            } else {
                TransportError::from(e)
            }
        })?;
        // close() unblocks a pending accept by self-connecting; discard that
        // wake-up connection and report closure.
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        Ok(Box::new(TcpConn::new(stream, None)?))
    }

    fn local_endpoint(&self) -> Endpoint {
        self.local.clone()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // Unblock a pending accept by connecting to ourselves.
        if let Ok(addr) = self.listener.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }
}

impl Transport for Tcp {
    fn scheme(&self) -> &str {
        "tcp"
    }

    fn connect(&self, ep: &Endpoint) -> Result<Box<dyn Conn>> {
        let stream = TcpStream::connect(ep.addr())?;
        Ok(Box::new(TcpConn::new(stream, Some(ep.clone()))?))
    }

    fn listen(&self, ep: &Endpoint) -> Result<Box<dyn Listener>> {
        let listener = TcpListener::bind(ep.addr())?;
        let local = Endpoint::tcp(listener.local_addr()?.to_string());
        Ok(Box::new(TcpAcceptor {
            listener,
            local,
            closed: AtomicBool::new(false),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_pair() -> (Box<dyn Conn>, Box<dyn Conn>) {
        let t = Tcp;
        let l = t.listen(&Endpoint::tcp("127.0.0.1:0")).unwrap();
        let ep = l.local_endpoint();
        let c = t.connect(&ep).unwrap();
        let s = l.accept().unwrap();
        (c, s)
    }

    #[test]
    fn exchange_over_real_sockets() {
        let (c, s) = tcp_pair();
        c.send(Bytes::from(b"hello tcp".to_vec())).unwrap();
        assert_eq!(&s.recv().unwrap()[..], b"hello tcp");
        s.send(Bytes::from(b"back".to_vec())).unwrap();
        assert_eq!(&c.recv().unwrap()[..], b"back");
    }

    #[test]
    fn large_frame_roundtrip() {
        let (c, s) = tcp_pair();
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| i as u8).collect();
        let expect = payload.clone();
        let h = std::thread::spawn(move || c.send(Bytes::from(payload)));
        assert_eq!(s.recv().unwrap(), expect);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn many_small_frames_keep_boundaries() {
        let (c, s) = tcp_pair();
        for i in 0..200u32 {
            c.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        for i in 0..200u32 {
            assert_eq!(&s.recv().unwrap()[..], i.to_le_bytes());
        }
    }

    #[test]
    fn recv_timeout_fires() {
        let (_c, s) = tcp_pair();
        assert_eq!(
            s.recv_timeout(Duration::from_millis(50)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn peer_close_surfaces() {
        let (c, s) = tcp_pair();
        c.close();
        assert_eq!(
            s.recv_timeout(Duration::from_secs(1)).unwrap_err(),
            TransportError::Closed
        );
    }

    #[test]
    fn connect_refused() {
        // Bind-then-drop to find a port that is very likely unused.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        let got = Tcp.connect(&Endpoint::tcp(addr.to_string()));
        assert!(got.is_err());
    }

    #[test]
    fn listener_close_unblocks_accept() {
        let t = Tcp;
        let l = t.listen(&Endpoint::tcp("127.0.0.1:0")).unwrap();
        let l = std::sync::Arc::new(l);
        // Safe: Listener is Send; accept on another thread.
        let l2 = std::sync::Arc::clone(&l);
        let h = std::thread::spawn(move || l2.accept().is_err());
        std::thread::sleep(Duration::from_millis(50));
        l.close();
        assert!(h.join().unwrap());
    }
}
