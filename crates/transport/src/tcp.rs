//! The TCP transport: length-prefixed frames over `std::net` streams.
//!
//! Used by the cross-process examples and the loopback-TCP rows of the
//! latency experiments. `TCP_NODELAY` is set, as the original runtime did,
//! because RPC traffic is latency-bound, not throughput-bound.
//!
//! A `TcpConn` runs in one of two modes:
//!
//! - **Blocking** (the default): `send` writes synchronously, `recv`
//!   blocks on the socket. Clients and tests use this.
//! - **Reactor-managed**: after [`crate::reactor::Pollable::enter_reactor_mode`]
//!   the socket is non-blocking; `send` enqueues the frame on an outbound
//!   queue and wakes the reactor, which flushes many queued frames in one
//!   vectored write (`drive_write`) and pushes inbound frames to the
//!   registered driver (`drive_read`). `recv` is unavailable in this mode.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bytes::Bytes;
use netobj_wire::frame::{frame_prefix, FrameDecoder};
use parking_lot::Mutex;

use crate::endpoint::Endpoint;
use crate::error::TransportError;
use crate::reactor::{AcceptPoll, FlushReport, Pollable, PollableListener, ReadDrive, WriteWaker};
use crate::{Conn, Listener, Result, Transport};

/// The TCP transport (stateless; connections carry all state).
#[derive(Debug, Default, Clone, Copy)]
pub struct Tcp;

/// Cap on queued outbound bytes per reactor-managed connection. A peer
/// that stops reading while replies keep accumulating gets disconnected
/// rather than growing the queue without bound (64 MiB ≈ four max frames).
const OUTBOUND_LIMIT: usize = 64 * 1024 * 1024;

/// One queued outbound frame: its 4-byte length prefix plus the shared
/// payload. Kept separate so flushes can gather both into one iovec list
/// without re-assembling a contiguous buffer.
struct QueuedFrame {
    prefix: [u8; 4],
    frame: Bytes,
}

#[derive(Default)]
struct Outbound {
    queue: VecDeque<QueuedFrame>,
    /// Bytes of the queue head already written by a partial flush.
    head_written: usize,
    /// Total unflushed bytes across the queue (prefixes included).
    bytes: usize,
}

struct TcpConn {
    writer: Mutex<TcpStream>,
    reader: Mutex<(TcpStream, FrameDecoder)>,
    closed: AtomicBool,
    peer: Option<Endpoint>,
    /// True once `enter_reactor_mode` ran; flips `send`/`recv` behaviour.
    reactor_mode: AtomicBool,
    outbound: Mutex<Outbound>,
    waker: Mutex<Option<WriteWaker>>,
}

impl TcpConn {
    fn new(stream: TcpStream, peer: Option<Endpoint>) -> Result<TcpConn> {
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(TcpConn {
            writer: Mutex::new(stream),
            reader: Mutex::new((reader, FrameDecoder::default())),
            closed: AtomicBool::new(false),
            peer,
            reactor_mode: AtomicBool::new(false),
            outbound: Mutex::new(Outbound::default()),
            waker: Mutex::new(None),
        })
    }

    fn recv_inner(&self, timeout: Option<Duration>) -> Result<Bytes> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        if self.reactor_mode.load(Ordering::Acquire) {
            // Frames are pushed to the reactor driver; there is nothing a
            // blocking receiver could wait on.
            return Err(TransportError::Io(
                "connection is reactor-managed; recv is unavailable".into(),
            ));
        }
        let mut guard = self.reader.lock();
        let (stream, decoder) = &mut *guard;
        stream.set_read_timeout(timeout)?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = decoder.next_frame()? {
                return Ok(frame);
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => decoder.extend(&chunk[..n]),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Reactor-mode `send`: queue the frame and, on an empty→non-empty
    /// transition, wake the reactor to schedule a coalesced flush. (While
    /// the queue is non-empty the reactor already has a flush pending or
    /// writable interest armed, so no further wakes are needed.)
    fn send_queued(&self, frame: Bytes) -> Result<()> {
        let prefix = frame_prefix(frame.len())?;
        let wake = {
            let mut ob = self.outbound.lock();
            if ob.bytes + 4 + frame.len() > OUTBOUND_LIMIT {
                drop(ob);
                self.close();
                return Err(TransportError::Closed);
            }
            let was_empty = ob.queue.is_empty();
            ob.bytes += 4 + frame.len();
            ob.queue.push_back(QueuedFrame { prefix, frame });
            was_empty
        };
        if wake {
            if let Some(w) = self.waker.lock().as_ref() {
                w.wake();
            }
        }
        Ok(())
    }
}

impl Conn for TcpConn {
    fn send(&self, frame: Bytes) -> Result<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        if self.reactor_mode.load(Ordering::Acquire) {
            return self.send_queued(frame);
        }
        // Gathered write: length prefix + payload go out in one vectored
        // syscall with no re-assembled buffer. The manual loop keeps both
        // slices in the iovec until the prefix is fully written so NODELAY
        // never flushes a bare 4-byte segment.
        let prefix = frame_prefix(frame.len())?;
        let total = prefix.len() + frame.len();
        let mut w = self.writer.lock();
        let mut written = 0usize;
        while written < total {
            let n = if written < prefix.len() {
                let bufs = [IoSlice::new(&prefix[written..]), IoSlice::new(&frame)];
                w.write_vectored(&bufs)?
            } else {
                w.write(&frame[written - prefix.len()..])?
            };
            if n == 0 {
                return Err(TransportError::Closed);
            }
            written += n;
        }
        Ok(())
    }

    fn recv(&self) -> Result<Bytes> {
        self.recv_inner(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Bytes> {
        self.recv_inner(Some(timeout))
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let w = self.writer.lock();
        let _ = w.shutdown(Shutdown::Both);
    }

    fn peer(&self) -> Option<Endpoint> {
        self.peer.clone()
    }

    fn as_pollable(&self) -> Option<&dyn Pollable> {
        #[cfg(unix)]
        {
            Some(self)
        }
        #[cfg(not(unix))]
        {
            None
        }
    }
}

/// Per-readiness-visit cap on socket reads, so one firehose peer cannot
/// monopolise the reactor thread (8 × 16 KiB per visit, then rearm).
const MAX_READ_CHUNKS_PER_VISIT: usize = 8;

/// Cap on frames gathered into a single vectored write (two iovecs each:
/// prefix + payload). Linux caps an iovec list at 1024 entries; 16 frames
/// per syscall already captures nearly all the coalescing benefit.
const MAX_FRAMES_PER_WRITEV: usize = 16;

#[cfg(unix)]
impl Pollable for TcpConn {
    fn poll_fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        self.writer.lock().as_raw_fd()
    }

    fn enter_reactor_mode(&self, waker: WriteWaker) -> Result<()> {
        // reader and writer are clones of the same socket, so one call
        // flips both directions to non-blocking.
        self.writer.lock().set_nonblocking(true)?;
        *self.waker.lock() = Some(waker);
        self.reactor_mode.store(true, Ordering::Release);
        Ok(())
    }

    fn drive_read(&self, sink: &mut dyn FnMut(Bytes)) -> Result<ReadDrive> {
        if self.closed.load(Ordering::Acquire) {
            return Ok(ReadDrive::Closed);
        }
        let mut guard = self.reader.lock();
        let (stream, decoder) = &mut *guard;
        let mut chunk = [0u8; 16 * 1024];
        for _ in 0..MAX_READ_CHUNKS_PER_VISIT {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // Deliver frames completed before EOF, then report it.
                    while let Some(frame) = decoder.next_frame()? {
                        sink(frame);
                    }
                    return Ok(ReadDrive::Closed);
                }
                Ok(n) => {
                    decoder.extend(&chunk[..n]);
                    while let Some(frame) = decoder.next_frame()? {
                        sink(frame);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadDrive::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Ok(ReadDrive::Closed),
            }
        }
        // Fairness cap hit with the socket possibly still readable; the
        // level-triggered rearm redelivers readiness immediately.
        Ok(ReadDrive::Open)
    }

    fn drive_write(&self) -> Result<FlushReport> {
        let mut ob = self.outbound.lock();
        let mut w = self.writer.lock();
        let mut report = FlushReport::default();
        loop {
            if ob.queue.is_empty() {
                ob.head_written = 0;
                return Ok(report);
            }
            let wrote = {
                // Gather up to MAX_FRAMES_PER_WRITEV frames into one iovec
                // list, skipping whatever earlier partial flushes already
                // pushed out of the head frame.
                let mut bufs: Vec<IoSlice> = Vec::with_capacity(2 * MAX_FRAMES_PER_WRITEV);
                let mut skip = ob.head_written;
                for qf in ob.queue.iter().take(MAX_FRAMES_PER_WRITEV) {
                    if skip < qf.prefix.len() {
                        bufs.push(IoSlice::new(&qf.prefix[skip..]));
                        skip = 0;
                    } else {
                        skip -= qf.prefix.len();
                    }
                    if skip < qf.frame.len() {
                        bufs.push(IoSlice::new(&qf.frame[skip..]));
                        skip = 0;
                    } else {
                        skip -= qf.frame.len();
                    }
                }
                w.write_vectored(&bufs)
            };
            match wrote {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => {
                    report.syscalls += 1;
                    ob.bytes -= n;
                    // Advance the head cursor and retire fully-sent frames.
                    let mut progressed = ob.head_written + n;
                    while let Some(head) = ob.queue.front() {
                        let total = head.prefix.len() + head.frame.len();
                        if progressed >= total {
                            progressed -= total;
                            ob.queue.pop_front();
                            report.frames += 1;
                        } else {
                            break;
                        }
                    }
                    ob.head_written = progressed;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    report.pending = true;
                    return Ok(report);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn has_pending_writes(&self) -> bool {
        !self.outbound.lock().queue.is_empty()
    }
}

struct TcpAcceptor {
    listener: TcpListener,
    local: Endpoint,
    closed: AtomicBool,
}

impl Listener for TcpAcceptor {
    fn accept(&self) -> Result<Box<dyn Conn>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let (stream, _addr) = self.listener.accept().map_err(|e| {
            if self.closed.load(Ordering::Acquire) {
                TransportError::Closed
            } else {
                TransportError::from(e)
            }
        })?;
        // close() unblocks a pending accept by self-connecting; discard that
        // wake-up connection and report closure.
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        Ok(Box::new(TcpConn::new(stream, None)?))
    }

    fn local_endpoint(&self) -> Endpoint {
        self.local.clone()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // Unblock a pending accept by connecting to ourselves.
        if let Ok(addr) = self.listener.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }

    fn as_pollable(&self) -> Option<&dyn PollableListener> {
        #[cfg(unix)]
        {
            Some(self)
        }
        #[cfg(not(unix))]
        {
            None
        }
    }
}

#[cfg(unix)]
impl PollableListener for TcpAcceptor {
    fn poll_fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        self.listener.as_raw_fd()
    }

    fn enter_reactor_mode(&self) -> Result<()> {
        self.listener.set_nonblocking(true)?;
        Ok(())
    }

    fn accept_nonblocking(&self) -> Result<AcceptPoll> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        match self.listener.accept() {
            Ok((stream, _addr)) => {
                if self.closed.load(Ordering::Acquire) {
                    return Err(TransportError::Closed);
                }
                match TcpConn::new(stream, None) {
                    Ok(conn) => Ok(AcceptPoll::Conn(Box::new(conn))),
                    // Setup failed for this one socket (usually fd
                    // exhaustion inside `try_clone`); drop it, keep the
                    // listener alive, back off until the next tick.
                    Err(_) => Ok(AcceptPoll::Retry),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(AcceptPoll::WouldBlock),
            // Transient accept failures (EINTR, ECONNABORTED, EMFILE, …)
            // must not kill the listener — and EMFILE/ENFILE leave the
            // pending connection in the backlog, where it would re-trigger
            // readiness immediately: retry after a tick, not a rearm.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(AcceptPoll::Retry),
            Err(_) => Ok(AcceptPoll::Retry),
        }
    }
}

impl Transport for Tcp {
    fn scheme(&self) -> &str {
        "tcp"
    }

    fn connect(&self, ep: &Endpoint) -> Result<Box<dyn Conn>> {
        let stream = TcpStream::connect(ep.addr())?;
        Ok(Box::new(TcpConn::new(stream, Some(ep.clone()))?))
    }

    fn listen(&self, ep: &Endpoint) -> Result<Box<dyn Listener>> {
        let listener = TcpListener::bind(ep.addr())?;
        let local = Endpoint::tcp(listener.local_addr()?.to_string());
        Ok(Box::new(TcpAcceptor {
            listener,
            local,
            closed: AtomicBool::new(false),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_pair() -> (Box<dyn Conn>, Box<dyn Conn>) {
        let t = Tcp;
        let l = t.listen(&Endpoint::tcp("127.0.0.1:0")).unwrap();
        let ep = l.local_endpoint();
        let c = t.connect(&ep).unwrap();
        let s = l.accept().unwrap();
        (c, s)
    }

    #[test]
    fn exchange_over_real_sockets() {
        let (c, s) = tcp_pair();
        c.send(Bytes::from(b"hello tcp".to_vec())).unwrap();
        assert_eq!(&s.recv().unwrap()[..], b"hello tcp");
        s.send(Bytes::from(b"back".to_vec())).unwrap();
        assert_eq!(&c.recv().unwrap()[..], b"back");
    }

    #[test]
    fn large_frame_roundtrip() {
        let (c, s) = tcp_pair();
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| i as u8).collect();
        let expect = payload.clone();
        let h = std::thread::spawn(move || c.send(Bytes::from(payload)));
        assert_eq!(s.recv().unwrap(), expect);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn many_small_frames_keep_boundaries() {
        let (c, s) = tcp_pair();
        for i in 0..200u32 {
            c.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        for i in 0..200u32 {
            assert_eq!(&s.recv().unwrap()[..], i.to_le_bytes());
        }
    }

    #[test]
    fn recv_timeout_fires() {
        let (_c, s) = tcp_pair();
        assert_eq!(
            s.recv_timeout(Duration::from_millis(50)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn peer_close_surfaces() {
        let (c, s) = tcp_pair();
        c.close();
        assert_eq!(
            s.recv_timeout(Duration::from_secs(1)).unwrap_err(),
            TransportError::Closed
        );
    }

    #[test]
    fn connect_refused() {
        // Bind-then-drop to find a port that is very likely unused.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        let got = Tcp.connect(&Endpoint::tcp(addr.to_string()));
        assert!(got.is_err());
    }

    #[test]
    fn listener_close_unblocks_accept() {
        let t = Tcp;
        let l = t.listen(&Endpoint::tcp("127.0.0.1:0")).unwrap();
        let l = std::sync::Arc::new(l);
        // Safe: Listener is Send; accept on another thread.
        let l2 = std::sync::Arc::clone(&l);
        let h = std::thread::spawn(move || l2.accept().is_err());
        std::thread::sleep(Duration::from_millis(50));
        l.close();
        assert!(h.join().unwrap());
    }
}
