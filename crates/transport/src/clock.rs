//! Time as a capability: real and virtual clocks.
//!
//! Every timer in the runtime — lease renewal, retry backoff, circuit
//! breaker cool-down, the cleanup demon's retry schedule, simulated link
//! latency — reads time through a [`Clock`] rather than calling
//! [`Instant::now`] directly. Production code uses [`SystemClock`] (the
//! identity). Tests install a [`VirtualClock`], under which a scenario
//! that nominally spans seconds of timeouts runs in milliseconds of real
//! time and, crucially, runs *the same way every time*: virtual time only
//! moves when the test advances it or when every participating thread is
//! provably idle.
//!
//! ## Auto-advance
//!
//! Threads that wait on a virtual clock register the virtual deadline they
//! are waiting for. When the whole system has been quiet for a short real
//! grace period (no [`VirtualClock::note_activity`] calls — the simulated
//! network bumps this on every frame it moves), the clock jumps straight
//! to the *earliest* registered deadline. Jumping to the minimum means no
//! pending event is ever skipped over: the frame with the nearest delivery
//! time, or the timer with the nearest expiry, always fires next, exactly
//! as it would have under real time — minus the waiting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::{Condvar, Mutex};

/// A source of monotonic time plus the ability to wait on it.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current instant according to this clock.
    fn now(&self) -> Instant;

    /// Blocks the calling thread for `d` of this clock's time.
    fn sleep(&self, d: Duration);

    /// Downcast hook: `Some` when this clock is a [`VirtualClock`], which
    /// offers richer waiting primitives than the trait can express.
    fn as_virtual(&self) -> Option<&VirtualClock> {
        None
    }
}

/// The real clock: `now` is [`Instant::now`], `sleep` is a thread sleep.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A shareable `Arc<dyn Clock>` with the comparison and default impls the
/// configuration structs need (two handles are equal when they are the
/// same clock object).
#[derive(Clone)]
pub struct ClockHandle(Arc<dyn Clock>);

impl ClockHandle {
    /// Wraps an arbitrary clock.
    pub fn new(clock: Arc<dyn Clock>) -> ClockHandle {
        ClockHandle(clock)
    }

    /// The real system clock.
    pub fn system() -> ClockHandle {
        ClockHandle(Arc::new(SystemClock))
    }

    /// A fresh virtual clock (auto-advance enabled).
    pub fn virtual_clock() -> ClockHandle {
        ClockHandle(Arc::new(VirtualClock::new()))
    }

    /// The current instant.
    pub fn now(&self) -> Instant {
        self.0.now()
    }

    /// Sleeps for `d` of this clock's time.
    pub fn sleep(&self, d: Duration) {
        self.0.sleep(d)
    }

    /// The underlying virtual clock, when there is one.
    pub fn as_virtual(&self) -> Option<&VirtualClock> {
        self.0.as_virtual()
    }

    /// Borrows the underlying trait object.
    pub fn as_dyn(&self) -> &dyn Clock {
        &*self.0
    }
}

impl Default for ClockHandle {
    fn default() -> Self {
        ClockHandle::system()
    }
}

impl PartialEq for ClockHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl std::fmt::Debug for ClockHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Receives from `rx` with a timeout measured on `clock`.
///
/// Under a [`SystemClock`] this is exactly `rx.recv_timeout(timeout)`.
/// Under a [`VirtualClock`] the caller registers as a sleeper so that
/// auto-advance can jump to its deadline, while still waking immediately
/// when a message arrives.
pub fn recv_deadline<T>(
    clock: &dyn Clock,
    rx: &Receiver<T>,
    timeout: Duration,
) -> Result<T, RecvTimeoutError> {
    match clock.as_virtual() {
        None => rx.recv_timeout(timeout),
        Some(vc) => vc.recv_deadline(rx, timeout),
    }
}

/// How long the system must be quiet (in real time) before virtual time
/// auto-advances to the next registered deadline.
const GRACE: Duration = Duration::from_millis(1);

/// Virtual time starts this far after the epoch so that expressions like
/// `clock.now() - lease` can never underflow the underlying `Instant`.
const HEADROOM: Duration = Duration::from_secs(3600);

struct VcInner {
    /// Virtual time elapsed since the epoch (starts at [`HEADROOM`]).
    offset: Duration,
    /// Registered sleeper deadlines (virtual offsets), by token.
    sleepers: BTreeMap<u64, Duration>,
    next_token: u64,
    /// Last observed value of the activity counter, and the real instant
    /// at which it was observed to change.
    seen_activity: u64,
    seen_at: Instant,
}

/// A deterministic clock whose time moves only by [`VirtualClock::advance`]
/// or by auto-advance when every waiter is idle.
pub struct VirtualClock {
    epoch: Instant,
    activity: AtomicU64,
    holds: AtomicU64,
    inner: Mutex<VcInner>,
    tick: Condvar,
}

thread_local! {
    /// Holds owned by the current thread (see [`VirtualClock::hold`]).
    static MY_HOLDS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// RAII guard marking real work in progress (a request being executed, a
/// frame being decoded): while any hold is live, virtual time will not
/// auto-advance, so a caller waiting on the result cannot spuriously time
/// out just because the work is invisible to the clock.
///
/// Holds are owned by the creating thread: if that thread itself blocks on
/// the virtual clock ([`Clock::sleep`] or [`VirtualClock::recv_deadline`]),
/// its holds are suspended for the duration of the wait — it is no longer
/// doing real work, it is waiting for time to pass, and freezing the clock
/// it waits on would deadlock. Create and drop a hold on the same thread.
pub struct ActivityHold<'a> {
    clock: &'a VirtualClock,
}

impl Drop for ActivityHold<'_> {
    fn drop(&mut self) {
        MY_HOLDS.with(|h| h.set(h.get().saturating_sub(1)));
        self.clock.holds.fetch_sub(1, Ordering::Relaxed);
        self.clock.note_activity();
    }
}

/// While alive, the current thread's holds are subtracted from the global
/// hold count (the thread is waiting on the clock, not working).
struct HoldSuspension<'a> {
    clock: &'a VirtualClock,
    n: u64,
}

impl<'a> HoldSuspension<'a> {
    fn begin(clock: &'a VirtualClock) -> HoldSuspension<'a> {
        let n = MY_HOLDS.with(|h| h.get());
        if n > 0 {
            clock.holds.fetch_sub(n, Ordering::Relaxed);
        }
        HoldSuspension { clock, n }
    }
}

impl Drop for HoldSuspension<'_> {
    fn drop(&mut self) {
        if self.n > 0 {
            self.clock.holds.fetch_add(self.n, Ordering::Relaxed);
            self.clock.note_activity();
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualClock")
            .field("elapsed", &self.elapsed())
            .finish()
    }
}

impl VirtualClock {
    /// A fresh virtual clock at virtual time zero.
    pub fn new() -> VirtualClock {
        let epoch = Instant::now();
        VirtualClock {
            epoch,
            activity: AtomicU64::new(0),
            holds: AtomicU64::new(0),
            inner: Mutex::new(VcInner {
                offset: HEADROOM,
                sleepers: BTreeMap::new(),
                next_token: 1,
                seen_activity: 0,
                seen_at: epoch,
            }),
            tick: Condvar::new(),
        }
    }

    /// Virtual time elapsed since the clock was created.
    pub fn elapsed(&self) -> Duration {
        self.inner.lock().offset - HEADROOM
    }

    /// Moves virtual time forward by `d` and wakes every sleeper.
    pub fn advance(&self, d: Duration) {
        let mut inner = self.inner.lock();
        inner.offset += d;
        // An explicit advance counts as activity: auto-advance waits a
        // fresh grace period before jumping again, giving whatever the
        // advance woke a chance to run.
        inner.seen_activity = self.activity.fetch_add(1, Ordering::Relaxed) + 1;
        inner.seen_at = Instant::now();
        self.tick.notify_all();
    }

    /// Records that real work happened (a frame moved, a call completed).
    /// Suppresses auto-advance for the next grace period.
    pub fn note_activity(&self) {
        self.activity.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks real work as *in progress* until the guard drops; suppresses
    /// auto-advance for the whole duration, not just one grace period.
    pub fn hold(&self) -> ActivityHold<'_> {
        MY_HOLDS.with(|h| h.set(h.get() + 1));
        self.holds.fetch_add(1, Ordering::Relaxed);
        ActivityHold { clock: self }
    }

    /// Registers a deadline (an instant on this clock) that some thread is
    /// waiting for; auto-advance will not jump past the earliest one.
    /// Returns a token for [`VirtualClock::deregister`].
    pub fn register_deadline(&self, deadline: Instant) -> u64 {
        let off = deadline.saturating_duration_since(self.epoch);
        let mut inner = self.inner.lock();
        let token = inner.next_token;
        inner.next_token += 1;
        inner.sleepers.insert(token, off);
        token
    }

    /// Removes a previously registered deadline.
    pub fn deregister(&self, token: u64) {
        self.inner.lock().sleepers.remove(&token);
    }

    /// One idle check: if nothing has happened for the grace period, jump
    /// to the earliest registered deadline. Called by waiters between
    /// polls; safe (and useful) to call from a driving test thread too.
    pub fn maybe_auto_advance(&self) {
        let mut inner = self.inner.lock();
        self.auto_advance_locked(&mut inner);
    }

    fn auto_advance_locked(&self, inner: &mut VcInner) {
        let now = Instant::now();
        let a = self.activity.load(Ordering::Relaxed);
        if a != inner.seen_activity || self.holds.load(Ordering::Relaxed) > 0 {
            inner.seen_activity = a;
            inner.seen_at = now;
            return;
        }
        if now.duration_since(inner.seen_at) < GRACE {
            return;
        }
        let Some(&target) = inner.sleepers.values().min() else {
            return;
        };
        if target > inner.offset {
            inner.offset = target;
            inner.seen_activity = self.activity.fetch_add(1, Ordering::Relaxed) + 1;
            inner.seen_at = now;
            self.tick.notify_all();
        }
    }

    fn virtual_now_locked(inner: &VcInner, epoch: Instant) -> Instant {
        epoch + inner.offset
    }

    /// Virtual-clock-aware channel receive; see [`recv_deadline`].
    pub fn recv_deadline<T>(
        &self,
        rx: &Receiver<T>,
        timeout: Duration,
    ) -> Result<T, RecvTimeoutError> {
        let _suspend = HoldSuspension::begin(self);
        let deadline = self.now() + timeout;
        let token = self.register_deadline(deadline);
        let result = loop {
            match rx.recv_timeout(GRACE) {
                Ok(v) => break Ok(v),
                Err(RecvTimeoutError::Disconnected) => break Err(RecvTimeoutError::Disconnected),
                Err(RecvTimeoutError::Timeout) => {
                    if self.now() >= deadline {
                        break Err(RecvTimeoutError::Timeout);
                    }
                    self.maybe_auto_advance();
                }
            }
        };
        self.deregister(token);
        result
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Instant {
        let inner = self.inner.lock();
        Self::virtual_now_locked(&inner, self.epoch)
    }

    fn sleep(&self, d: Duration) {
        let _suspend = HoldSuspension::begin(self);
        let mut inner = self.inner.lock();
        let deadline = inner.offset + d;
        let token = inner.next_token;
        inner.next_token += 1;
        inner.sleepers.insert(token, deadline);
        while inner.offset < deadline {
            let timed_out = self.tick.wait_for(&mut inner, GRACE).timed_out();
            if inner.offset >= deadline {
                break;
            }
            if timed_out {
                self.auto_advance_locked(&mut inner);
            }
        }
        inner.sleepers.remove(&token);
    }

    fn as_virtual(&self) -> Option<&VirtualClock> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn system_clock_is_real_time() {
        let c = SystemClock;
        let t0 = c.now();
        c.sleep(Duration::from_millis(10));
        assert!(c.now() - t0 >= Duration::from_millis(10));
    }

    #[test]
    fn manual_advance_moves_now() {
        let c = VirtualClock::new();
        let t0 = c.now();
        c.advance(Duration::from_secs(5));
        assert_eq!(c.now() - t0, Duration::from_secs(5));
        assert_eq!(c.elapsed(), Duration::from_secs(5));
    }

    #[test]
    fn sleep_wakes_on_advance() {
        let c = Arc::new(VirtualClock::new());
        let woke = Arc::new(AtomicBool::new(false));
        let (c2, woke2) = (Arc::clone(&c), Arc::clone(&woke));
        let h = std::thread::spawn(move || {
            c2.sleep(Duration::from_secs(1000));
            woke2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        c.advance(Duration::from_secs(1000));
        h.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn auto_advance_jumps_to_earliest_deadline() {
        // Two sleepers; when the system goes idle, time must jump to the
        // *earlier* deadline first, then the later — in far less real time
        // than the nominal 3s of virtual waiting.
        let c = Arc::new(VirtualClock::new());
        let t0 = Instant::now();
        let c1 = Arc::clone(&c);
        let h1 = std::thread::spawn(move || c1.sleep(Duration::from_secs(1)));
        let c2 = Arc::clone(&c);
        let h2 = std::thread::spawn(move || c2.sleep(Duration::from_secs(3)));
        h1.join().unwrap();
        assert!(c.elapsed() >= Duration::from_secs(1));
        assert!(c.elapsed() < Duration::from_secs(3));
        h2.join().unwrap();
        assert!(c.elapsed() >= Duration::from_secs(3));
        assert!(t0.elapsed() < Duration::from_secs(2), "virtual, not real");
    }

    #[test]
    fn activity_defers_auto_advance() {
        let c = Arc::new(VirtualClock::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.sleep(Duration::from_secs(1)));
        // Keep the system "busy" for a while: time must not jump.
        for _ in 0..20 {
            c.note_activity();
            std::thread::sleep(Duration::from_micros(300));
        }
        assert!(c.elapsed() < Duration::from_secs(1));
        h.join().unwrap();
        assert!(c.elapsed() >= Duration::from_secs(1));
    }

    #[test]
    fn recv_deadline_times_out_virtually() {
        let (_tx, rx) = crossbeam::channel::unbounded::<u8>();
        let c = VirtualClock::new();
        let t0 = Instant::now();
        let got = c.recv_deadline(&rx, Duration::from_secs(2));
        assert!(matches!(got, Err(RecvTimeoutError::Timeout)));
        assert!(c.elapsed() >= Duration::from_secs(2));
        assert!(t0.elapsed() < Duration::from_secs(1), "virtual, not real");
    }

    #[test]
    fn recv_deadline_delivers_messages() {
        let (tx, rx) = crossbeam::channel::unbounded::<u8>();
        let c = Arc::new(VirtualClock::new());
        // The sender holds the clock while it works: the receiver must not
        // auto-advance to its own 60s deadline in the meantime.
        let hold = c.hold();
        let h = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.recv_deadline(&rx, Duration::from_secs(60)))
        };
        std::thread::sleep(Duration::from_millis(5));
        tx.send(7).unwrap();
        drop(hold);
        assert_eq!(h.join().unwrap().unwrap(), 7);
    }

    #[test]
    fn clock_handles_compare_by_identity() {
        let a = ClockHandle::virtual_clock();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, ClockHandle::virtual_clock());
        assert!(ClockHandle::default().as_virtual().is_none());
    }
}
