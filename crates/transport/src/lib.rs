//! Message transports for the network objects runtime.
//!
//! Network Objects layers its RPC protocol over pluggable transports; the
//! original system shipped TCP and shared-memory transports selected at
//! bind time by address scheme. This crate reproduces that design:
//!
//! - [`Endpoint`]: a parsed `scheme:address` transport address.
//! - [`Conn`] / [`Listener`] / [`Transport`]: the object-level abstraction —
//!   reliable, connection-oriented exchange of discrete frames.
//! - [`loopback`]: an in-process transport with no networking at all,
//!   used for same-machine measurements (paper: "local" case).
//! - [`sim`]: an in-process *simulated network* with configurable latency,
//!   jitter, loss, duplication, reordering and partitions. This is the
//!   testbed substitute for the paper's Ethernet: experiments dial latency
//!   instead of racking hardware, and the fault knobs drive the
//!   fault-tolerance experiments.
//! - [`tcp`]: a real TCP transport (length-prefixed frames, `TCP_NODELAY`).
//! - [`registry`]: maps address schemes to transports, as the original
//!   runtime did when choosing how to contact an address.
//!
//! All transports present *reliable duplex frame pipes* to the layer above;
//! the simulated network's loss/duplication knobs exist to test the RPC
//! layer's and collector's tolerance of misbehaving channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chan;
pub mod clock;
pub mod endpoint;
pub mod error;
pub mod loopback;
pub mod pool;
pub mod reactor;
pub mod registry;
pub mod sim;
pub mod tcp;

pub use bytes::Bytes;
pub use clock::{Clock, ClockHandle, SystemClock, VirtualClock};
pub use endpoint::Endpoint;
pub use error::TransportError;
pub use registry::TransportRegistry;

use std::time::Duration;

/// Result alias for transport operations.
pub type Result<T> = std::result::Result<T, TransportError>;

/// A reliable, bidirectional, frame-oriented connection.
///
/// Frames are discrete byte payloads; the transport preserves their
/// boundaries. All methods take `&self` so a connection can be shared
/// between a sender and a dedicated receiver thread.
///
/// Frames travel as shared [`Bytes`]: in-process transports enqueue the
/// caller's buffer by reference, and stream transports write the length
/// prefix and the payload as separate (gathered) writes — no transport
/// re-assembles a frame into a fresh allocation.
pub trait Conn: Send + Sync {
    /// Sends one frame. Returns an error if the connection is closed.
    fn send(&self, frame: Bytes) -> Result<()>;

    /// Receives the next frame, blocking until one arrives or the
    /// connection closes.
    fn recv(&self) -> Result<Bytes>;

    /// Receives the next frame, waiting at most `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Result<Bytes>;

    /// Closes the connection; pending and future operations fail with
    /// [`TransportError::Closed`].
    fn close(&self);

    /// The remote endpoint this connection talks to, if known.
    fn peer(&self) -> Option<Endpoint>;

    /// The connection's readiness handle, if it can be driven by the
    /// [`reactor::Reactor`] instead of blocking threads. In-process
    /// transports (loopback, SimNet, channels) return `None` and keep the
    /// blocking model — that is what preserves virtual-time determinism.
    fn as_pollable(&self) -> Option<&dyn reactor::Pollable> {
        None
    }
}

/// A passive endpoint accepting incoming connections.
pub trait Listener: Send + Sync {
    /// Accepts the next incoming connection, blocking.
    fn accept(&self) -> Result<Box<dyn Conn>>;

    /// The endpoint peers should connect to.
    fn local_endpoint(&self) -> Endpoint;

    /// Stops listening; a blocked [`Listener::accept`] returns
    /// [`TransportError::Closed`].
    fn close(&self);

    /// The listener's readiness handle, if the [`reactor::Reactor`] can
    /// accept from it without blocking. `None` keeps the blocking
    /// accept-thread model.
    fn as_pollable(&self) -> Option<&dyn reactor::PollableListener> {
        None
    }
}

/// A transport: a way of establishing [`Conn`]s from endpoint addresses.
pub trait Transport: Send + Sync {
    /// The address scheme this transport serves (e.g. `"tcp"`).
    fn scheme(&self) -> &str;

    /// Opens a connection to `ep`.
    fn connect(&self, ep: &Endpoint) -> Result<Box<dyn Conn>>;

    /// Starts listening at `ep` (which may be a wildcard the transport
    /// resolves, e.g. `tcp:127.0.0.1:0`).
    fn listen(&self, ep: &Endpoint) -> Result<Box<dyn Listener>>;
}
