//! The readiness-driven reactor: one thread, many connections.
//!
//! The original runtime (and this reproduction, until the reactor landed)
//! dedicated a reader thread to every accepted connection. That model is
//! simple and keeps slow peers isolated, but it caps a server at a few
//! thousand clients — far short of the "serves millions of users" ambition
//! the paper's successors grew into. The [`Reactor`] replaces those
//! threads with a single event loop over an epoll-style readiness poller
//! (see the vendored `polling` shim): connections register *interest*,
//! the loop wakes when the kernel reports readiness, and per-connection
//! **drivers** (state machines supplied by the layer above) consume
//! decoded frames on the reactor thread.
//!
//! Division of labour:
//!
//! - The transport (this module plus [`crate::tcp`]) owns readiness,
//!   non-blocking reads into each connection's frame decoder, and write
//!   coalescing: replies queued by any thread are flushed in batched
//!   vectored writes — many frames per syscall — when the reactor wakes.
//! - The layer above owns protocol state. It implements [`ConnDriver`]
//!   (frame in → optional replies out via the ordinary [`Conn::send`])
//!   and [`AcceptDriver`] (new connection → its driver).
//!
//! A connection must opt in by implementing [`Pollable`] (today: TCP).
//! Transports without a readiness handle — loopback, SimNet, in-process
//! channels — simply return `None` from [`Conn::as_pollable`] and keep
//! being driven by blocking threads, which is what preserves the
//! virtual-time determinism of the simulation suites: the reactor is an
//! execution substrate for real sockets, not a semantic change.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use polling::{Event, Events, Poller};

use crate::{Conn, Listener, Result};

/// What a [`Pollable::drive_read`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadDrive {
    /// The connection is still open (the kernel buffer is drained, or the
    /// per-visit fairness cap was reached).
    Open,
    /// The peer closed (EOF) or the stream failed; deliver any decoded
    /// frames, then tear the connection down.
    Closed,
}

/// Outcome of one coalesced [`Pollable::drive_write`] flush.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlushReport {
    /// Complete frames fully written by this flush.
    pub frames: usize,
    /// Vectored-write syscalls issued.
    pub syscalls: usize,
    /// True if queued bytes remain (the socket buffer filled); the
    /// reactor then arms writable interest and retries on readiness.
    pub pending: bool,
}

/// A connection that can be driven by the [`Reactor`]: it exposes an OS
/// readiness handle and non-blocking read/write entry points.
///
/// Entering reactor mode redirects [`Conn::send`] into an outbound queue
/// drained by [`Pollable::drive_write`]; `recv` becomes unavailable
/// (frames are pushed to the registered [`ConnDriver`] instead).
pub trait Pollable: Send + Sync {
    /// The raw readiness handle (a file descriptor on unix).
    fn poll_fd(&self) -> i32;

    /// Switches the connection to non-blocking, reactor-managed mode and
    /// installs the waker that `send` uses to schedule a flush.
    fn enter_reactor_mode(&self, waker: WriteWaker) -> Result<()>;

    /// Reads whatever is available without blocking, pushing each complete
    /// decoded frame into `sink`. Framing errors are returned (the caller
    /// drops the connection — a desynchronised stream cannot recover).
    fn drive_read(&self, sink: &mut dyn FnMut(Bytes)) -> Result<ReadDrive>;

    /// Flushes queued outbound frames with coalesced vectored writes.
    fn drive_write(&self) -> Result<FlushReport>;

    /// True if outbound frames are still queued.
    fn has_pending_writes(&self) -> bool;
}

/// A listener that can hand out connections without blocking.
pub trait PollableListener: Send + Sync {
    /// The raw readiness handle (a file descriptor on unix).
    fn poll_fd(&self) -> i32;

    /// Switches the listener to non-blocking mode.
    fn enter_reactor_mode(&self) -> Result<()>;

    /// Accepts one pending connection. The three non-error outcomes are
    /// distinguished because they need different rearm policies (see
    /// [`AcceptPoll`]); an `Err` means the listener itself is dead and is
    /// deregistered.
    fn accept_nonblocking(&self) -> Result<AcceptPoll>;
}

/// Outcome of one [`PollableListener::accept_nonblocking`] attempt.
pub enum AcceptPoll {
    /// A connection was accepted.
    Conn(Box<dyn Conn>),
    /// The backlog is empty: rearm readiness and wait — the fd will not
    /// report readable again until a new connection arrives.
    WouldBlock,
    /// A connection was pending but could not be accepted — fd exhaustion
    /// (EMFILE/ENFILE leaves the backlog entry in place), an aborted
    /// handshake, a per-socket setup failure. The backlog may still be
    /// non-empty, so an immediate rearm would spin the event loop hot;
    /// the reactor retries on its next tick instead.
    Retry,
}

/// Verdict a [`ConnDriver`] returns per delivered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drive {
    /// Keep the connection registered.
    Continue,
    /// Tear the connection down (protocol violation, shutdown, …).
    Close,
}

/// The per-connection protocol state machine the reactor drives.
///
/// All calls arrive on the reactor thread, never concurrently for one
/// connection. Replies go out through the connection's ordinary
/// [`Conn::send`], which in reactor mode enqueues for a coalesced flush.
pub trait ConnDriver: Send {
    /// One decoded inbound frame.
    fn on_frame(&mut self, frame: Bytes) -> Drive;

    /// Periodic housekeeping (ack-expiry sweeps and the like); called
    /// roughly every reactor tick, even when the connection is idle.
    fn on_tick(&mut self) {}

    /// The connection is gone (peer closed, error, or reactor shutdown);
    /// release everything attributed to it.
    fn on_close(&mut self) {}
}

/// Decides what to do with connections a registered listener accepts.
pub trait AcceptDriver: Send {
    /// A new inbound connection. Return its driver to register it with the
    /// reactor, or `None` to drop it on the floor.
    fn on_accept(&mut self, conn: Arc<dyn Conn>) -> Option<Box<dyn ConnDriver>>;
}

/// Point-in-time reactor statistics, for gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorSnapshot {
    /// Connections currently registered with the reactor.
    pub connections: u64,
    /// Readiness events delivered by the most recent poll batch — the
    /// instantaneous depth of the readiness queue.
    pub readiness_depth: u64,
    /// Largest poll batch ever delivered (monotonic high-water mark).
    pub readiness_high_water: u64,
    /// Complete frames written by coalesced flushes (monotonic).
    pub frames_flushed: u64,
    /// Vectored-write syscalls those flushes issued (monotonic);
    /// `frames_flushed / flush_syscalls` is the coalescing ratio.
    pub flush_syscalls: u64,
    /// Times the event loop woke up (readiness, notify, or tick).
    pub wakeups: u64,
    /// Connections accepted through reactor-registered listeners.
    pub accepted: u64,
}

/// Handle a [`Pollable`] connection uses to tell the reactor "I have
/// queued outbound frames; flush me on your next wakeup".
#[derive(Clone)]
pub struct WriteWaker {
    shared: Weak<Shared>,
    token: usize,
}

impl WriteWaker {
    /// Schedules a flush of this connection. Cheap and non-blocking; safe
    /// to call from any thread (typically a worker that just queued a
    /// reply). Calls after the reactor died are ignored.
    pub fn wake(&self) {
        if let Some(shared) = self.shared.upgrade() {
            shared.write_pending.lock().push(self.token);
            let _ = shared.poller.notify();
        }
    }
}

enum Op {
    AddConn {
        conn: Arc<dyn Conn>,
        driver: Box<dyn ConnDriver>,
    },
    AddListener {
        listener: Arc<dyn Listener>,
        driver: Box<dyn AcceptDriver>,
    },
}

struct Shared {
    poller: Poller,
    ops: Mutex<Vec<Op>>,
    /// Tokens whose connections have queued outbound frames.
    write_pending: Mutex<Vec<usize>>,
    shutdown: AtomicBool,
    registered: AtomicUsize,
    accepted: AtomicU64,
    frames_flushed: AtomicU64,
    flush_syscalls: AtomicU64,
    wakeups: AtomicU64,
    readiness_depth: AtomicUsize,
    readiness_high_water: AtomicUsize,
}

/// Accepts at most this many connections per listener readiness visit, so
/// an accept storm cannot starve established connections.
const MAX_ACCEPTS_PER_VISIT: usize = 256;

/// A running readiness event loop.
///
/// Create with [`Reactor::start`]; register listeners and connections;
/// [`Reactor::shutdown`] (or drop) tears everything down, invoking every
/// driver's `on_close`.
pub struct Reactor {
    shared: Arc<Shared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Reactor {
    /// The tick period servers use: matches the 500 ms bounded-recv sweep
    /// cadence of the thread-per-connection path it replaces.
    pub const DEFAULT_TICK: Duration = Duration::from_millis(500);

    /// Starts the event loop on its own thread. Fails where no readiness
    /// backend exists (the caller then falls back to blocking threads).
    pub fn start(tick: Duration) -> Result<Reactor> {
        let poller = Poller::new().map_err(io_err)?;
        let shared = Arc::new(Shared {
            poller,
            ops: Mutex::new(Vec::new()),
            write_pending: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            registered: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            frames_flushed: AtomicU64::new(0),
            flush_syscalls: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            readiness_depth: AtomicUsize::new(0),
            readiness_high_water: AtomicUsize::new(0),
        });
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("netobj-reactor".into())
            .spawn(move || EventLoop::new(loop_shared, tick).run())
            .map_err(io_err)?;
        Ok(Reactor {
            shared,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Registers a connection (which must be [`Pollable`]) under `driver`.
    /// Registration is asynchronous: the event loop integrates it on its
    /// next wakeup.
    pub fn register_conn(&self, conn: Arc<dyn Conn>, driver: Box<dyn ConnDriver>) -> Result<()> {
        if conn.as_pollable().is_none() {
            return Err(crate::TransportError::Io(
                "connection has no readiness handle".into(),
            ));
        }
        self.submit(Op::AddConn { conn, driver })
    }

    /// Registers a listener (which must be [`PollableListener`]); accepted
    /// connections are offered to `driver` and, when it returns a
    /// [`ConnDriver`], registered with this reactor.
    pub fn register_listener(
        &self,
        listener: Arc<dyn Listener>,
        driver: Box<dyn AcceptDriver>,
    ) -> Result<()> {
        if listener.as_pollable().is_none() {
            return Err(crate::TransportError::Io(
                "listener has no readiness handle".into(),
            ));
        }
        self.submit(Op::AddListener { listener, driver })
    }

    fn submit(&self, op: Op) -> Result<()> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(crate::TransportError::Closed);
        }
        self.shared.ops.lock().push(op);
        self.shared.poller.notify().map_err(io_err)?;
        Ok(())
    }

    /// Current statistics (connection count, coalescing counters, …).
    pub fn stats(&self) -> ReactorSnapshot {
        let s = &self.shared;
        ReactorSnapshot {
            connections: s.registered.load(Ordering::Relaxed) as u64,
            readiness_depth: s.readiness_depth.load(Ordering::Relaxed) as u64,
            readiness_high_water: s.readiness_high_water.load(Ordering::Relaxed) as u64,
            frames_flushed: s.frames_flushed.load(Ordering::Relaxed),
            flush_syscalls: s.flush_syscalls.load(Ordering::Relaxed),
            wakeups: s.wakeups.load(Ordering::Relaxed),
            accepted: s.accepted.load(Ordering::Relaxed),
        }
    }

    /// Stops the event loop, closes every registered connection (running
    /// each driver's `on_close`), and joins the thread.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.shared.poller.notify();
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn io_err(e: io::Error) -> crate::TransportError {
    crate::TransportError::Io(e.to_string())
}

struct ConnEntry {
    conn: Arc<dyn Conn>,
    driver: Box<dyn ConnDriver>,
}

struct ListenerEntry {
    listener: Arc<dyn Listener>,
    driver: Box<dyn AcceptDriver>,
}

/// Loop-private state: only the reactor thread touches the registration
/// maps, so drivers run without any lock held and may call back into
/// `Conn::send` (and thus [`WriteWaker::wake`]) freely.
struct EventLoop {
    shared: Arc<Shared>,
    tick: Duration,
    next_token: usize,
    conns: HashMap<usize, ConnEntry>,
    listeners: HashMap<usize, ListenerEntry>,
    /// Scratch buffer reused across reads to collect decoded frames.
    frames: Vec<Bytes>,
    /// Listeners whose last accept hit a transient failure with backlog
    /// possibly still pending ([`AcceptPoll::Retry`]): revisited on the
    /// next tick instead of rearmed immediately, so fd exhaustion cannot
    /// spin the loop hot.
    deferred_accepts: Vec<usize>,
}

impl EventLoop {
    fn new(shared: Arc<Shared>, tick: Duration) -> EventLoop {
        EventLoop {
            shared,
            tick,
            next_token: 0,
            conns: HashMap::new(),
            listeners: HashMap::new(),
            frames: Vec::new(),
            deferred_accepts: Vec::new(),
        }
    }

    fn run(mut self) {
        let mut events = Events::new();
        let mut last_tick = Instant::now();
        loop {
            events.clear();
            let _ = self.shared.poller.wait(&mut events, Some(self.tick));
            self.shared.wakeups.fetch_add(1, Ordering::Relaxed);
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            self.integrate_ops();
            self.flush_scheduled();
            let batch = events.len();
            self.shared.readiness_depth.store(batch, Ordering::Relaxed);
            self.shared
                .readiness_high_water
                .fetch_max(batch, Ordering::Relaxed);
            for ev in events.iter() {
                if self.listeners.contains_key(&ev.key) {
                    self.handle_accept(ev.key);
                } else if self.conns.contains_key(&ev.key) {
                    self.handle_conn(ev.key, ev.readable, ev.writable);
                }
                // Unknown keys: readiness that raced a close. Ignore.
            }
            if last_tick.elapsed() >= self.tick {
                last_tick = Instant::now();
                for entry in self.conns.values_mut() {
                    entry.driver.on_tick();
                }
            }
            // Deferred accepts retry every wakeup (at worst every tick):
            // bounded work, unlike an immediate rearm which would fire
            // again instantly while the transient condition persists.
            for token in std::mem::take(&mut self.deferred_accepts) {
                if self.listeners.contains_key(&token) {
                    self.handle_accept(token);
                }
            }
        }
        // Shutdown: tear everything down deterministically.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
        for (_, entry) in self.listeners.drain() {
            entry.listener.close();
        }
        // Reject registrations that raced shutdown.
        for op in self.shared.ops.lock().drain(..) {
            match op {
                Op::AddConn { conn, mut driver } => {
                    conn.close();
                    driver.on_close();
                }
                Op::AddListener { listener, .. } => listener.close(),
            }
        }
    }

    fn integrate_ops(&mut self) {
        let ops: Vec<Op> = std::mem::take(&mut *self.shared.ops.lock());
        for op in ops {
            match op {
                Op::AddConn { conn, driver } => self.add_conn(conn, driver),
                Op::AddListener { listener, driver } => {
                    let token = self.alloc_token();
                    let ok = listener.as_pollable().is_some_and(|p| {
                        p.enter_reactor_mode().is_ok()
                            && self
                                .shared
                                .poller
                                .add(p.poll_fd(), Event::readable(token))
                                .is_ok()
                    });
                    if ok {
                        self.listeners
                            .insert(token, ListenerEntry { listener, driver });
                    } else {
                        listener.close();
                    }
                }
            }
        }
    }

    fn alloc_token(&mut self) -> usize {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn add_conn(&mut self, conn: Arc<dyn Conn>, mut driver: Box<dyn ConnDriver>) {
        let token = self.alloc_token();
        let waker = WriteWaker {
            shared: Arc::downgrade(&self.shared),
            token,
        };
        let ok = conn.as_pollable().is_some_and(|p| {
            p.enter_reactor_mode(waker).is_ok()
                && self
                    .shared
                    .poller
                    .add(p.poll_fd(), Event::readable(token))
                    .is_ok()
        });
        if ok {
            self.conns.insert(token, ConnEntry { conn, driver });
            self.shared
                .registered
                .store(self.conns.len(), Ordering::Relaxed);
        } else {
            conn.close();
            driver.on_close();
        }
    }

    /// Flushes connections whose senders queued frames since the last
    /// wakeup. One coalesced flush covers every frame queued so far —
    /// this is where "many replies, one syscall" happens for pool replies.
    fn flush_scheduled(&mut self) {
        let pending: Vec<usize> = std::mem::take(&mut *self.shared.write_pending.lock());
        for token in pending {
            if self.conns.contains_key(&token) {
                self.flush_conn(token);
            }
        }
    }

    /// Flushes one connection; closes it on write failure. Returns whether
    /// outbound bytes remain queued.
    fn flush_conn(&mut self, token: usize) -> bool {
        let Some(entry) = self.conns.get(&token) else {
            return false;
        };
        let pollable = entry
            .conn
            .as_pollable()
            .expect("registered conns are pollable");
        match pollable.drive_write() {
            Ok(report) => {
                self.shared
                    .frames_flushed
                    .fetch_add(report.frames as u64, Ordering::Relaxed);
                self.shared
                    .flush_syscalls
                    .fetch_add(report.syscalls as u64, Ordering::Relaxed);
                if report.pending {
                    // Socket buffer full: let readiness re-arm below; the
                    // writable interest is set by the caller's rearm.
                    let _ = self
                        .shared
                        .poller
                        .modify(pollable.poll_fd(), Event::all(token));
                    true
                } else {
                    false
                }
            }
            Err(_) => {
                self.close_conn(token);
                false
            }
        }
    }

    fn handle_accept(&mut self, token: usize) {
        let mut closed = false;
        let mut defer = false;
        for _ in 0..MAX_ACCEPTS_PER_VISIT {
            // Split-borrow dance: accept first, then (separately) register.
            let accepted = {
                let entry = self.listeners.get_mut(&token).expect("listener exists");
                let pollable = entry
                    .listener
                    .as_pollable()
                    .expect("registered listeners are pollable");
                match pollable.accept_nonblocking() {
                    Ok(AcceptPoll::Conn(conn)) => {
                        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                        let conn: Arc<dyn Conn> = Arc::from(conn);
                        entry.driver.on_accept(Arc::clone(&conn)).map(|d| (conn, d))
                    }
                    Ok(AcceptPoll::WouldBlock) => break,
                    Ok(AcceptPoll::Retry) => {
                        defer = true;
                        break;
                    }
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            };
            if let Some((conn, driver)) = accepted {
                self.add_conn(conn, driver);
            }
        }
        if closed {
            if let Some(entry) = self.listeners.remove(&token) {
                let fd = entry.listener.as_pollable().map(|p| p.poll_fd());
                if let Some(fd) = fd {
                    let _ = self.shared.poller.delete(fd);
                }
            }
            return;
        }
        if defer {
            // The backlog may still hold connections we cannot accept right
            // now (e.g. fd exhaustion): rearming readiness would fire again
            // immediately and spin. Park the listener for a tick-paced
            // retry; its fd stays registered but disarmed (oneshot).
            self.deferred_accepts.push(token);
            return;
        }
        let entry = self.listeners.get(&token).expect("listener exists");
        let fd = entry
            .listener
            .as_pollable()
            .expect("registered listeners are pollable")
            .poll_fd();
        if self
            .shared
            .poller
            .modify(fd, Event::readable(token))
            .is_err()
        {
            self.listeners.remove(&token);
        }
    }

    fn handle_conn(&mut self, token: usize, readable: bool, writable: bool) {
        let mut eof = false;
        if readable {
            // Phase 1: drain the socket into decoded frames (no driver
            // involvement, so the pollable borrow stays local).
            let read = {
                let entry = self.conns.get(&token).expect("conn exists");
                let pollable = entry.conn.as_pollable().expect("pollable");
                let frames = &mut self.frames;
                pollable.drive_read(&mut |frame| frames.push(frame))
            };
            match read {
                Ok(ReadDrive::Open) => {}
                Ok(ReadDrive::Closed) | Err(_) => eof = true,
            }
            // Phase 2: deliver frames to the driver. The driver may call
            // `Conn::send` (queuing replies) and `WriteWaker::wake`.
            let mut close_requested = false;
            for frame in self.frames.drain(..) {
                if close_requested {
                    continue; // drain the scratch buffer regardless
                }
                let Some(entry) = self.conns.get_mut(&token) else {
                    continue;
                };
                if entry.driver.on_frame(frame) == Drive::Close {
                    close_requested = true;
                }
            }
            if close_requested {
                // Push out any replies queued for frames handled before
                // the close verdict (e.g. a final error reply), best
                // effort, then drop the connection.
                self.flush_conn(token);
                self.close_conn(token);
                return;
            }
        }
        if !self.conns.contains_key(&token) {
            return;
        }
        // Phase 3: one coalesced flush for everything the driver queued
        // while handling this batch (inline fast-path replies), plus any
        // backlog a full socket buffer left behind (writable readiness).
        let _ = writable; // flush happens unconditionally; cheap when idle
        let write_pending = self.flush_conn(token);
        if eof {
            self.close_conn(token);
            return;
        }
        if !self.conns.contains_key(&token) {
            return; // flush_conn closed it
        }
        let entry = self.conns.get(&token).expect("conn exists");
        let fd = entry.conn.as_pollable().expect("pollable").poll_fd();
        let interest = if write_pending {
            Event::all(token)
        } else {
            Event::readable(token)
        };
        if self.shared.poller.modify(fd, interest).is_err() {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: usize) {
        if let Some(mut entry) = self.conns.remove(&token) {
            if let Some(p) = entry.conn.as_pollable() {
                let _ = self.shared.poller.delete(p.poll_fd());
            }
            entry.conn.close();
            entry.driver.on_close();
            self.shared
                .registered
                .store(self.conns.len(), Ordering::Relaxed);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::endpoint::Endpoint;
    use crate::tcp::Tcp;
    use crate::Transport;

    /// Replies to every frame with the frame itself.
    struct Echo {
        conn: Arc<dyn Conn>,
        closes: Arc<AtomicUsize>,
    }

    impl ConnDriver for Echo {
        fn on_frame(&mut self, frame: Bytes) -> Drive {
            match self.conn.send(frame) {
                Ok(()) => Drive::Continue,
                Err(_) => Drive::Close,
            }
        }

        fn on_close(&mut self) {
            self.closes.fetch_add(1, Ordering::SeqCst);
        }
    }

    struct EchoAccept {
        closes: Arc<AtomicUsize>,
    }

    impl AcceptDriver for EchoAccept {
        fn on_accept(&mut self, conn: Arc<dyn Conn>) -> Option<Box<dyn ConnDriver>> {
            Some(Box::new(Echo {
                conn,
                closes: Arc::clone(&self.closes),
            }))
        }
    }

    fn echo_server() -> (Reactor, Endpoint, Arc<AtomicUsize>) {
        let reactor = Reactor::start(Duration::from_millis(50)).unwrap();
        let listener: Arc<dyn Listener> =
            Arc::from(Tcp.listen(&Endpoint::tcp("127.0.0.1:0")).unwrap());
        let ep = listener.local_endpoint();
        let closes = Arc::new(AtomicUsize::new(0));
        reactor
            .register_listener(
                listener,
                Box::new(EchoAccept {
                    closes: Arc::clone(&closes),
                }),
            )
            .unwrap();
        (reactor, ep, closes)
    }

    fn wait_until(mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "condition not reached in 10s");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn echoes_frames_through_the_reactor() {
        let (reactor, ep, _closes) = echo_server();
        let client = Tcp.connect(&ep).unwrap();
        for i in 0..50u32 {
            client.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
            assert_eq!(&client.recv().unwrap()[..], i.to_le_bytes());
        }
        // Counter updates trail the syscalls that the client's recv
        // observes, so poll rather than assert instantaneously.
        wait_until(|| reactor.stats().frames_flushed >= 50);
        let stats = reactor.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn burst_replies_are_coalesced() {
        let (reactor, ep, _closes) = echo_server();
        let client = Tcp.connect(&ep).unwrap();
        const N: usize = 400;
        for i in 0..N as u32 {
            client.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        for i in 0..N as u32 {
            assert_eq!(&client.recv().unwrap()[..], i.to_le_bytes());
        }
        wait_until(|| reactor.stats().frames_flushed >= N as u64);
        let stats = reactor.stats();
        assert_eq!(stats.frames_flushed, N as u64);
        assert!(stats.flush_syscalls >= 1);
        // The burst outruns the reactor, so several replies must have
        // shared a vectored write. (The bound is loose on purpose: exact
        // batching depends on scheduling.)
        assert!(
            stats.flush_syscalls < stats.frames_flushed,
            "no coalescing: {} frames in {} syscalls",
            stats.frames_flushed,
            stats.flush_syscalls
        );
    }

    #[test]
    fn churned_connections_unregister_and_close_drivers() {
        let (reactor, ep, closes) = echo_server();
        const N: usize = 100;
        for i in 0..N as u32 {
            let client = Tcp.connect(&ep).unwrap();
            client.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
            assert_eq!(&client.recv().unwrap()[..], i.to_le_bytes());
            client.close();
        }
        wait_until(|| reactor.stats().connections == 0);
        wait_until(|| closes.load(Ordering::SeqCst) == N);
        assert_eq!(reactor.stats().accepted, N as u64);
    }

    #[test]
    fn shutdown_closes_registered_connections() {
        let (reactor, ep, closes) = echo_server();
        let client = Tcp.connect(&ep).unwrap();
        client.send(Bytes::from(b"ping".to_vec())).unwrap();
        assert_eq!(&client.recv().unwrap()[..], b"ping");
        reactor.shutdown();
        assert_eq!(closes.load(Ordering::SeqCst), 1);
        assert_eq!(reactor.stats().connections, 0);
        // The peer observes the close.
        assert!(client.recv_timeout(Duration::from_secs(2)).is_err());
    }

    #[test]
    fn large_frame_survives_partial_writes() {
        let (reactor, ep, _closes) = echo_server();
        let client = Tcp.connect(&ep).unwrap();
        // Bigger than any socket buffer: the reactor must make progress
        // across many WouldBlock boundaries with correct head offsets.
        let payload: Vec<u8> = (0..4_000_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        client.send(Bytes::from(payload)).unwrap();
        assert_eq!(client.recv().unwrap(), expect);
        assert!(reactor.stats().frames_flushed >= 1);
    }
}
