//! Error type for transport operations.

use std::fmt;

use netobj_wire::WireError;

/// An error raised by a transport operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The connection (or listener) has been closed.
    Closed,
    /// No peer is listening at the requested endpoint.
    ConnectionRefused(String),
    /// The operation did not complete within its deadline.
    Timeout,
    /// The endpoint string could not be parsed.
    BadEndpoint(String),
    /// No transport is registered for the endpoint's scheme.
    NoTransport(String),
    /// The endpoint name is already in use by a listener.
    AddressInUse(String),
    /// An underlying I/O error (message only: `io::Error` is not `Clone`).
    Io(String),
    /// A framing or encoding error.
    Wire(WireError),
    /// The peer is unreachable because of a simulated partition.
    Partitioned,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::ConnectionRefused(ep) => write!(f, "connection refused: {ep}"),
            TransportError::Timeout => write!(f, "operation timed out"),
            TransportError::BadEndpoint(s) => write!(f, "bad endpoint: {s}"),
            TransportError::NoTransport(s) => write!(f, "no transport for scheme: {s}"),
            TransportError::AddressInUse(s) => write!(f, "address in use: {s}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
            TransportError::Partitioned => write!(f, "peer unreachable (partitioned)"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                TransportError::Timeout
            }
            std::io::ErrorKind::ConnectionRefused => {
                TransportError::ConnectionRefused(e.to_string())
            }
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionAborted => TransportError::Closed,
            _ => TransportError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_mapping() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            TransportError::from(Error::new(ErrorKind::TimedOut, "t")),
            TransportError::Timeout
        );
        assert_eq!(
            TransportError::from(Error::new(ErrorKind::BrokenPipe, "b")),
            TransportError::Closed
        );
        assert!(matches!(
            TransportError::from(Error::new(ErrorKind::ConnectionRefused, "r")),
            TransportError::ConnectionRefused(_)
        ));
        assert!(matches!(
            TransportError::from(Error::other("x")),
            TransportError::Io(_)
        ));
    }

    #[test]
    fn display_strings() {
        assert_eq!(TransportError::Closed.to_string(), "connection closed");
        assert!(TransportError::NoTransport("zz".into())
            .to_string()
            .contains("zz"));
    }
}
