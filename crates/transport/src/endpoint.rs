//! Transport endpoint addresses.
//!
//! An endpoint is written `scheme:address`, e.g. `tcp:10.0.0.7:9321`,
//! `sim:alpha`, or `loop:server-1`. The scheme selects a transport from the
//! [`crate::TransportRegistry`]; the address part is interpreted by that
//! transport. This mirrors the original runtime, where each address prefix
//! named the transport that understood it.

use std::fmt;
use std::str::FromStr;

use netobj_wire::pickle::{Pickle, PickleReader, PickleWriter};

use crate::error::TransportError;

/// A parsed transport address: `scheme:address`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Endpoint {
    scheme: String,
    addr: String,
}

impl Endpoint {
    /// Builds an endpoint from a scheme and transport-specific address.
    pub fn new(scheme: impl Into<String>, addr: impl Into<String>) -> Endpoint {
        Endpoint {
            scheme: scheme.into(),
            addr: addr.into(),
        }
    }

    /// The address scheme (transport selector).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The transport-specific address part.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Shorthand for a TCP endpoint.
    pub fn tcp(addr: impl Into<String>) -> Endpoint {
        Endpoint::new("tcp", addr)
    }

    /// Shorthand for a simulated-network endpoint.
    pub fn sim(name: impl Into<String>) -> Endpoint {
        Endpoint::new("sim", name)
    }

    /// Shorthand for a loopback endpoint.
    pub fn loopback(name: impl Into<String>) -> Endpoint {
        Endpoint::new("loop", name)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.scheme, self.addr)
    }
}

impl FromStr for Endpoint {
    type Err = TransportError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            Some((scheme, addr)) if !scheme.is_empty() && !addr.is_empty() => {
                Ok(Endpoint::new(scheme, addr))
            }
            _ => Err(TransportError::BadEndpoint(s.to_owned())),
        }
    }
}

impl Pickle for Endpoint {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_text(&self.to_string());
    }
    fn unpickle(r: &mut PickleReader<'_>) -> netobj_wire::Result<Self> {
        let s = r.get_text()?;
        s.parse()
            .map_err(|_| netobj_wire::WireError::OutOfRange("malformed endpoint"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let ep: Endpoint = "tcp:127.0.0.1:9000".parse().unwrap();
        assert_eq!(ep.scheme(), "tcp");
        assert_eq!(ep.addr(), "127.0.0.1:9000");
        assert_eq!(ep.to_string(), "tcp:127.0.0.1:9000");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<Endpoint>().is_err());
        assert!("noscheme".parse::<Endpoint>().is_err());
        assert!(":addr".parse::<Endpoint>().is_err());
        assert!("scheme:".parse::<Endpoint>().is_err());
    }

    #[test]
    fn constructors() {
        assert_eq!(Endpoint::tcp("h:1").to_string(), "tcp:h:1");
        assert_eq!(Endpoint::sim("a").to_string(), "sim:a");
        assert_eq!(Endpoint::loopback("x").to_string(), "loop:x");
    }

    #[test]
    fn pickles() {
        let ep = Endpoint::sim("alpha");
        let bytes = ep.to_pickle_bytes();
        assert_eq!(Endpoint::from_pickle_bytes(&bytes).unwrap(), ep);
    }
}
