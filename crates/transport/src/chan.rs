//! Channel-backed in-process connections.
//!
//! Both the loopback transport and the simulated network hand out
//! [`ChanConn`]s: connection halves backed by crossbeam channels. The
//! difference between the two transports is only in what sits between the
//! sender's outbox and the receiver's inbox — nothing (loopback) or the
//! fault-injecting delivery scheduler (sim).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use crate::endpoint::Endpoint;
use crate::error::TransportError;
use crate::{Conn, Result};

/// Shared close flag between the two halves of an in-process connection.
#[derive(Debug, Default)]
pub struct CloseFlag {
    closed: AtomicBool,
}

impl CloseFlag {
    /// Returns true once either side has closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Marks the connection closed.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

/// One half of an in-process duplex connection.
///
/// Sending pushes into the outbox; receiving pops from the inbox. For a
/// loopback pair, A's outbox *is* B's inbox. For a simulated pair, the
/// outbox feeds the sim scheduler which later forwards into the peer inbox.
pub struct ChanConn {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    closed: Arc<CloseFlag>,
    peer: Option<Endpoint>,
}

impl ChanConn {
    /// Builds a connection half from its channel ends.
    pub fn new(
        tx: Sender<Bytes>,
        rx: Receiver<Bytes>,
        closed: Arc<CloseFlag>,
        peer: Option<Endpoint>,
    ) -> ChanConn {
        ChanConn {
            tx,
            rx,
            closed,
            peer,
        }
    }

    /// Creates a directly wired pair of connection halves (no middleman).
    pub fn pair(a_peer: Option<Endpoint>, b_peer: Option<Endpoint>) -> (ChanConn, ChanConn) {
        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        let closed = Arc::new(CloseFlag::default());
        (
            ChanConn::new(a_tx, a_rx, Arc::clone(&closed), a_peer),
            ChanConn::new(b_tx, b_rx, closed, b_peer),
        )
    }
}

impl Conn for ChanConn {
    fn send(&self, frame: Bytes) -> Result<()> {
        if self.closed.is_closed() {
            return Err(TransportError::Closed);
        }
        match self.tx.try_send(frame) {
            Ok(()) => Ok(()),
            Err(TrySendError::Disconnected(_)) => Err(TransportError::Closed),
            Err(TrySendError::Full(_)) => unreachable!("unbounded channel is never full"),
        }
    }

    fn recv(&self) -> Result<Bytes> {
        // Poll with a coarse period so that a close() by the peer wakes us
        // up even though the channel endpoints themselves stay alive.
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(f) => return Ok(f),
                Err(RecvTimeoutError::Timeout) => {
                    if self.closed.is_closed() && self.rx.is_empty() {
                        return Err(TransportError::Closed);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Bytes> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let step = deadline
                .saturating_duration_since(std::time::Instant::now())
                .min(Duration::from_millis(50));
            match self.rx.recv_timeout(step) {
                Ok(f) => return Ok(f),
                Err(RecvTimeoutError::Timeout) => {
                    if self.closed.is_closed() && self.rx.is_empty() {
                        return Err(TransportError::Closed);
                    }
                    if std::time::Instant::now() >= deadline {
                        return Err(TransportError::Timeout);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
            }
        }
    }

    fn close(&self) {
        self.closed.close();
    }

    fn peer(&self) -> Option<Endpoint> {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_exchanges_frames_both_ways() {
        let (a, b) = ChanConn::pair(None, None);
        a.send(Bytes::from(b"ping".to_vec())).unwrap();
        assert_eq!(&b.recv().unwrap()[..], b"ping");
        b.send(Bytes::from(b"pong".to_vec())).unwrap();
        assert_eq!(&a.recv().unwrap()[..], b"pong");
    }

    #[test]
    fn preserves_frame_order() {
        let (a, b) = ChanConn::pair(None, None);
        for i in 0..100u32 {
            a.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(&b.recv().unwrap()[..], i.to_le_bytes());
        }
    }

    #[test]
    fn close_unblocks_receiver() {
        let (a, b) = ChanConn::pair(None, None);
        let h = std::thread::spawn(move || b.recv());
        std::thread::sleep(Duration::from_millis(20));
        a.close();
        assert_eq!(h.join().unwrap(), Err(TransportError::Closed));
    }

    #[test]
    fn send_after_close_fails() {
        let (a, b) = ChanConn::pair(None, None);
        b.close();
        assert_eq!(
            a.send(Bytes::from(vec![1])).unwrap_err(),
            TransportError::Closed
        );
    }

    #[test]
    fn recv_timeout_expires() {
        let (_a, b) = ChanConn::pair(None, None);
        let t0 = std::time::Instant::now();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(60)).unwrap_err(),
            TransportError::Timeout
        );
        assert!(t0.elapsed() >= Duration::from_millis(55));
    }

    #[test]
    fn queued_frames_drain_before_close_reported() {
        let (a, b) = ChanConn::pair(None, None);
        a.send(Bytes::from(vec![1])).unwrap();
        a.send(Bytes::from(vec![2])).unwrap();
        a.close();
        assert_eq!(b.recv().unwrap(), vec![1]);
        assert_eq!(b.recv().unwrap(), vec![2]);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            TransportError::Closed
        );
    }
}
