//! The loopback transport: direct in-process channels, zero overhead.
//!
//! Used for the paper's "same machine" measurements and for unit tests that
//! don't need fault injection. Listeners register under a name; connecting
//! to that name wires a [`ChanConn`] pair directly.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::chan::ChanConn;
use crate::endpoint::Endpoint;
use crate::error::TransportError;
use crate::{Conn, Listener, Result, Transport};

/// A loopback transport instance.
///
/// Each instance has its own namespace of listener names. Clone the `Arc`
/// and register it in multiple registries to share the namespace.
#[derive(Default)]
pub struct Loopback {
    listeners: Mutex<HashMap<String, Sender<Box<dyn Conn>>>>,
}

impl Loopback {
    /// Creates an empty loopback transport.
    pub fn new() -> Arc<Loopback> {
        Arc::new(Loopback::default())
    }
}

struct LoopListener {
    name: String,
    incoming: Receiver<Box<dyn Conn>>,
    owner: Arc<Loopback>,
}

impl Listener for LoopListener {
    fn accept(&self) -> Result<Box<dyn Conn>> {
        self.incoming.recv().map_err(|_| TransportError::Closed)
    }

    fn local_endpoint(&self) -> Endpoint {
        Endpoint::loopback(self.name.clone())
    }

    fn close(&self) {
        self.owner.listeners.lock().remove(&self.name);
    }
}

impl Transport for Arc<Loopback> {
    fn scheme(&self) -> &str {
        "loop"
    }

    fn connect(&self, ep: &Endpoint) -> Result<Box<dyn Conn>> {
        let tx = {
            let listeners = self.listeners.lock();
            listeners
                .get(ep.addr())
                .cloned()
                .ok_or_else(|| TransportError::ConnectionRefused(ep.to_string()))?
        };
        let (client, server) = ChanConn::pair(Some(ep.clone()), None);
        tx.send(Box::new(server))
            .map_err(|_| TransportError::ConnectionRefused(ep.to_string()))?;
        Ok(Box::new(client))
    }

    fn listen(&self, ep: &Endpoint) -> Result<Box<dyn Listener>> {
        let (tx, rx) = unbounded();
        let mut listeners = self.listeners.lock();
        if listeners.contains_key(ep.addr()) {
            return Err(TransportError::AddressInUse(ep.to_string()));
        }
        listeners.insert(ep.addr().to_owned(), tx);
        Ok(Box::new(LoopListener {
            name: ep.addr().to_owned(),
            incoming: rx,
            owner: Arc::clone(self),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn listen_connect_exchange() {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let c = t.connect(&Endpoint::loopback("srv")).unwrap();
        let s = l.accept().unwrap();
        c.send(crate::Bytes::from(b"hi".to_vec())).unwrap();
        assert_eq!(&s.recv().unwrap()[..], b"hi");
        s.send(crate::Bytes::from(b"yo".to_vec())).unwrap();
        assert_eq!(&c.recv().unwrap()[..], b"yo");
    }

    #[test]
    fn connect_to_missing_listener_refused() {
        let t = Loopback::new();
        assert!(matches!(
            t.connect(&Endpoint::loopback("nobody")),
            Err(TransportError::ConnectionRefused(_))
        ));
    }

    #[test]
    fn duplicate_listen_rejected() {
        let t = Loopback::new();
        let _l = t.listen(&Endpoint::loopback("x")).unwrap();
        assert!(matches!(
            t.listen(&Endpoint::loopback("x")),
            Err(TransportError::AddressInUse(_))
        ));
    }

    #[test]
    fn close_listener_frees_name_and_unblocks_accept() {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("x")).unwrap();
        l.close();
        // Name free again.
        let _l2 = t.listen(&Endpoint::loopback("x")).unwrap();
        // Connect to the first (closed) listener's queue fails.
        // (The second listener now owns the name, so connect succeeds.)
        assert!(t.connect(&Endpoint::loopback("x")).is_ok());
    }

    #[test]
    fn multiple_clients_one_server() {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let c1 = t.connect(&Endpoint::loopback("srv")).unwrap();
        let c2 = t.connect(&Endpoint::loopback("srv")).unwrap();
        c1.send(crate::Bytes::from(vec![1])).unwrap();
        c2.send(crate::Bytes::from(vec![2])).unwrap();
        let s1 = l.accept().unwrap();
        let s2 = l.accept().unwrap();
        let a = s1.recv_timeout(Duration::from_secs(1)).unwrap();
        let b = s2.recv_timeout(Duration::from_secs(1)).unwrap();
        let mut got = vec![a[0], b[0]];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
