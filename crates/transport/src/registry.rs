//! The transport registry: scheme → transport dispatch.
//!
//! The original runtime chose how to contact an address by its prefix; a
//! [`TransportRegistry`] does the same. Each space owns a registry; tests
//! and simulations register whichever transports they need.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::endpoint::Endpoint;
use crate::error::TransportError;
use crate::{Conn, Listener, Result, Transport};

/// A thread-safe mapping from address scheme to transport.
#[derive(Default, Clone)]
pub struct TransportRegistry {
    inner: Arc<RwLock<HashMap<String, Arc<dyn Transport>>>>,
}

impl TransportRegistry {
    /// Creates an empty registry.
    pub fn new() -> TransportRegistry {
        TransportRegistry::default()
    }

    /// Registers `transport` under its scheme, replacing any previous one.
    pub fn register(&self, transport: Arc<dyn Transport>) {
        let scheme = transport.scheme().to_owned();
        self.inner.write().insert(scheme, transport);
    }

    /// Returns the transport for `scheme`, if registered.
    pub fn get(&self, scheme: &str) -> Option<Arc<dyn Transport>> {
        self.inner.read().get(scheme).cloned()
    }

    /// Connects to `ep` using the transport its scheme selects.
    pub fn connect(&self, ep: &Endpoint) -> Result<Box<dyn Conn>> {
        self.get(ep.scheme())
            .ok_or_else(|| TransportError::NoTransport(ep.scheme().to_owned()))?
            .connect(ep)
    }

    /// Listens at `ep` using the transport its scheme selects.
    pub fn listen(&self, ep: &Endpoint) -> Result<Box<dyn Listener>> {
        self.get(ep.scheme())
            .ok_or_else(|| TransportError::NoTransport(ep.scheme().to_owned()))?
            .listen(ep)
    }

    /// Registered scheme names, sorted.
    pub fn schemes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().keys().cloned().collect();
        v.sort();
        v
    }
}

/// Wraps a [`Transport`] so that the same instance can serve a different
/// scheme name (used by tests to mount two sim networks side by side).
pub struct Renamed<T> {
    inner: T,
    scheme: String,
}

impl<T: Transport> Renamed<T> {
    /// Mounts `inner` under `scheme`.
    pub fn new(inner: T, scheme: impl Into<String>) -> Renamed<T> {
        Renamed {
            inner,
            scheme: scheme.into(),
        }
    }
}

impl<T: Transport> Transport for Renamed<T> {
    fn scheme(&self) -> &str {
        &self.scheme
    }
    fn connect(&self, ep: &Endpoint) -> Result<Box<dyn Conn>> {
        self.inner.connect(&Endpoint::new(
            self.inner.scheme().to_owned(),
            ep.addr().to_owned(),
        ))
    }
    fn listen(&self, ep: &Endpoint) -> Result<Box<dyn Listener>> {
        self.inner.listen(&Endpoint::new(
            self.inner.scheme().to_owned(),
            ep.addr().to_owned(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::Loopback;
    use crate::sim::SimNet;

    #[test]
    fn dispatches_by_scheme() {
        let reg = TransportRegistry::new();
        reg.register(Arc::new(Loopback::new()));
        reg.register(Arc::new(SimNet::instant()));
        assert_eq!(reg.schemes(), vec!["loop".to_owned(), "sim".to_owned()]);

        let _l = reg.listen(&Endpoint::loopback("x")).unwrap();
        let _c = reg.connect(&Endpoint::loopback("x")).unwrap();
        let _sl = reg.listen(&Endpoint::sim("x")).unwrap();
        let _sc = reg.connect(&Endpoint::sim("x")).unwrap();
    }

    #[test]
    fn unknown_scheme_errors() {
        let reg = TransportRegistry::new();
        assert!(matches!(
            reg.connect(&Endpoint::new("zz", "x")),
            Err(TransportError::NoTransport(_))
        ));
        assert!(matches!(
            reg.listen(&Endpoint::new("zz", "x")),
            Err(TransportError::NoTransport(_))
        ));
    }

    #[test]
    fn re_register_replaces() {
        let reg = TransportRegistry::new();
        let a = Loopback::new();
        let b = Loopback::new();
        reg.register(Arc::new(Arc::clone(&a)));
        let _l = reg.listen(&Endpoint::loopback("only-in-a")).unwrap();
        reg.register(Arc::new(b));
        // The listener namespace changed: connect now fails.
        assert!(reg.connect(&Endpoint::loopback("only-in-a")).is_err());
    }

    #[test]
    fn renamed_transport_serves_alt_scheme() {
        let reg = TransportRegistry::new();
        let net = SimNet::instant();
        reg.register(Arc::new(Renamed::new(Arc::clone(&net), "sim2")));
        let _l = reg.listen(&Endpoint::new("sim2", "host")).unwrap();
        let _c = reg.connect(&Endpoint::new("sim2", "host")).unwrap();
    }
}
