//! The simulated network transport.
//!
//! This is the repository's substitute for the paper's machine-room
//! testbed: an in-process network whose links have configurable one-way
//! latency, jitter, probabilistic loss, duplication and reordering, plus a
//! partition switch per listener. Experiments dial these knobs instead of
//! racking hardware; fault-tolerance tests use loss/partition to exercise
//! the collector's recovery paths.
//!
//! Frames that incur delay pass through a single scheduler thread that
//! holds a time-ordered heap; instantaneous fault-free links bypass the
//! scheduler entirely so that zero-latency benchmarks measure the protocol,
//! not the simulator.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::chan::CloseFlag;
use crate::clock::ClockHandle;
use crate::endpoint::Endpoint;
use crate::error::TransportError;
use crate::{Conn, Listener, Result, Transport};

/// Behaviour of every link in a simulated network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Base one-way latency applied to every frame.
    pub latency: Duration,
    /// Additional uniform random latency in `[0, jitter)`.
    pub jitter: Duration,
    /// Probability that a frame is silently dropped.
    pub loss: f64,
    /// Probability that a frame is delivered twice.
    pub duplicate: f64,
    /// Probability that a frame receives `reorder_extra` additional delay,
    /// letting later frames overtake it (models non-FIFO channels).
    pub reorder: f64,
    /// Maximum extra delay applied to reordered frames.
    pub reorder_extra: Duration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::instant()
    }
}

impl LinkConfig {
    /// A perfect, instantaneous link (the fast path: no scheduler).
    pub const fn instant() -> LinkConfig {
        LinkConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_extra: Duration::ZERO,
        }
    }

    /// A clean link with fixed one-way latency.
    pub const fn with_latency(latency: Duration) -> LinkConfig {
        LinkConfig {
            latency,
            jitter: Duration::ZERO,
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_extra: Duration::ZERO,
        }
    }

    /// True if frames can skip the scheduler thread.
    fn is_instant(&self) -> bool {
        self.latency.is_zero()
            && self.jitter.is_zero()
            && self.loss == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
    }
}

/// A seeded, per-link flake plan: bursty frame loss driven by a private
/// RNG so one link's weather is independent of (and reproducible
/// regardless of) traffic on other links.
///
/// Each frame routed over the link draws from the link's own generator:
/// with probability `loss` it starts a *burst* in which that frame and the
/// following `burst_len - 1` frames are dropped. `burst_len == 1` gives
/// plain independent loss.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlakePlan {
    /// Probability that a frame starts a loss burst.
    pub loss: f64,
    /// Frames dropped per burst (≥ 1).
    pub burst_len: u32,
}

impl FlakePlan {
    /// Independent per-frame loss.
    pub const fn uniform(loss: f64) -> FlakePlan {
        FlakePlan { loss, burst_len: 1 }
    }
}

struct LinkFlake {
    plan: FlakePlan,
    rng: SmallRng,
    /// Frames still to drop in the current burst.
    burst_remaining: u32,
}

impl LinkFlake {
    /// True if this frame should be dropped.
    fn drops(&mut self) -> bool {
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            return true;
        }
        if self.plan.loss > 0.0 && self.rng.gen_bool(self.plan.loss.clamp(0.0, 1.0)) {
            self.burst_remaining = self.plan.burst_len.saturating_sub(1);
            return true;
        }
        false
    }
}

/// Counters describing what the simulated network did to traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Frames handed to `send`.
    pub sent: u64,
    /// Frames delivered to a receiver inbox (duplicates count twice).
    pub delivered: u64,
    /// Frames dropped by the loss knob.
    pub dropped_loss: u64,
    /// Frames dropped because the destination was partitioned.
    pub dropped_partition: u64,
    /// Extra deliveries caused by the duplication knob.
    pub duplicated: u64,
}

#[derive(Debug)]
struct Scheduled {
    due: Instant,
    seq: u64,
    dest: Sender<Bytes>,
    frame: Bytes,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-due first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct SimState {
    listeners: HashMap<String, Sender<Box<dyn Conn>>>,
    config: LinkConfig,
    down: HashMap<String, bool>,
    /// Established connections per listener tag, for [`SimNet::crash`].
    conns: HashMap<String, Vec<Weak<CloseFlag>>>,
    /// Seeded per-link flake schedules, keyed by listener tag.
    flakes: HashMap<String, LinkFlake>,
    rng: SmallRng,
    heap: BinaryHeap<Scheduled>,
    shutdown: bool,
}

/// A simulated network: a namespace of listeners plus a fault model.
pub struct SimNet {
    state: Mutex<SimState>,
    wakeup: Condvar,
    clock: ClockHandle,
    seq: AtomicU64,
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped_loss: AtomicU64,
    dropped_partition: AtomicU64,
    duplicated: AtomicU64,
}

impl SimNet {
    /// Creates a simulated network with the given link behaviour and a
    /// fixed RNG seed (for reproducible fault schedules).
    pub fn with_seed(config: LinkConfig, seed: u64) -> Arc<SimNet> {
        SimNet::with_seed_and_clock(config, seed, ClockHandle::system())
    }

    /// Creates a simulated network running on *virtual time*: frame
    /// delivery delays, and every runtime timer configured with the
    /// returned clock, are measured on a [`VirtualClock`] that advances
    /// via [`SimNet::advance`] or auto-advance-when-idle. Tests built on
    /// this run their nominal seconds of timeouts in milliseconds, and
    /// deterministically.
    pub fn virtual_time(config: LinkConfig, seed: u64) -> Arc<SimNet> {
        SimNet::with_seed_and_clock(config, seed, ClockHandle::virtual_clock())
    }

    /// Creates a simulated network measuring delivery times on `clock`.
    pub fn with_seed_and_clock(config: LinkConfig, seed: u64, clock: ClockHandle) -> Arc<SimNet> {
        let net = Arc::new(SimNet {
            clock,
            state: Mutex::new(SimState {
                listeners: HashMap::new(),
                config,
                down: HashMap::new(),
                conns: HashMap::new(),
                flakes: HashMap::new(),
                rng: SmallRng::seed_from_u64(seed),
                heap: BinaryHeap::new(),
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            seq: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped_loss: AtomicU64::new(0),
            dropped_partition: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
        });
        let for_thread = Arc::clone(&net);
        std::thread::Builder::new()
            .name("simnet-scheduler".into())
            .spawn(move || for_thread.scheduler_loop())
            .expect("spawn simnet scheduler");
        net
    }

    /// Creates a simulated network with a random seed.
    pub fn new(config: LinkConfig) -> Arc<SimNet> {
        SimNet::with_seed(config, rand::random())
    }

    /// A perfect, instantaneous network.
    pub fn instant() -> Arc<SimNet> {
        SimNet::new(LinkConfig::instant())
    }

    /// The clock this network schedules deliveries on. Spaces under test
    /// should put the same handle in their `Options` so that transport
    /// delays and runtime timers share one notion of time.
    pub fn clock(&self) -> ClockHandle {
        self.clock.clone()
    }

    /// Advances virtual time by `d` (no-op under a system clock) and
    /// nudges the scheduler.
    pub fn advance(&self, d: Duration) {
        if let Some(vc) = self.clock.as_virtual() {
            vc.advance(d);
        }
        self.wakeup.notify_all();
    }

    /// Replaces the link behaviour for subsequently sent frames.
    pub fn set_config(&self, config: LinkConfig) {
        self.state.lock().config = config;
    }

    /// Returns the current link behaviour.
    pub fn config(&self) -> LinkConfig {
        self.state.lock().config
    }

    /// Partitions (or heals) the listener named `name`.
    ///
    /// While down, frames in either direction on connections to that
    /// listener are dropped, and new connects are refused — modelling a
    /// crashed or unreachable process.
    pub fn set_down(&self, name: &str, down: bool) {
        self.state.lock().down.insert(name.to_owned(), down);
    }

    /// Crashes the process behind listener `name`: every established
    /// connection to it is dropped (both directions observe `Closed`, not
    /// silence) and new connects are refused until [`SimNet::restart`].
    ///
    /// This is a harsher fault than [`SimNet::set_down`], which leaves
    /// connections up and silently eats frames: a crash is what makes
    /// reconnect paths (rather than timeout paths) fire.
    pub fn crash(&self, name: &str) {
        let flags = {
            let mut state = self.state.lock();
            state.down.insert(name.to_owned(), true);
            state.conns.remove(name).unwrap_or_default()
        };
        for flag in flags {
            if let Some(flag) = flag.upgrade() {
                flag.close();
            }
        }
    }

    /// Heals a [`SimNet::crash`]: new connects to `name` succeed again
    /// (the crashed side must re-listen to accept them — a restarted
    /// process is a new process).
    pub fn restart(&self, name: &str) {
        self.state.lock().down.insert(name.to_owned(), false);
    }

    /// Installs (or clears, with `None`) a seeded flake schedule on the
    /// link to listener `name`. Flake drops are counted in
    /// [`SimStats::dropped_loss`].
    pub fn set_flake(&self, name: &str, plan: Option<FlakePlan>, seed: u64) {
        let mut state = self.state.lock();
        match plan {
            Some(plan) => {
                state.flakes.insert(
                    name.to_owned(),
                    LinkFlake {
                        plan,
                        rng: SmallRng::seed_from_u64(seed),
                        burst_remaining: 0,
                    },
                );
            }
            None => {
                state.flakes.remove(name);
            }
        }
    }

    /// Returns traffic counters.
    pub fn stats(&self) -> SimStats {
        SimStats {
            sent: self.sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped_loss: self.dropped_loss.load(Ordering::Relaxed),
            dropped_partition: self.dropped_partition.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
        }
    }

    /// Stops the scheduler thread. Queued delayed frames are discarded.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.wakeup.notify_all();
    }

    fn scheduler_loop(&self) {
        let mut state = self.state.lock();
        loop {
            if state.shutdown {
                return;
            }
            let now = self.clock.now();
            // Deliver everything due.
            while state.heap.peek().is_some_and(|s| s.due <= now) {
                let s = state.heap.pop().expect("peeked");
                if let Some(vc) = self.clock.as_virtual() {
                    vc.note_activity();
                }
                // Ignore send errors: receiver may be gone.
                if s.dest.send(s.frame).is_ok() {
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                }
            }
            match state.heap.peek() {
                Some(s) => match self.clock.as_virtual() {
                    // Virtual time: register the next delivery as a
                    // deadline so idle auto-advance jumps exactly to it,
                    // and poll at the clock's grace granularity.
                    Some(vc) => {
                        let token = vc.register_deadline(s.due);
                        self.wakeup.wait_for(&mut state, Duration::from_millis(1));
                        vc.deregister(token);
                        vc.maybe_auto_advance();
                    }
                    None => {
                        let wait = s.due.saturating_duration_since(Instant::now());
                        self.wakeup.wait_for(&mut state, wait);
                    }
                },
                None => {
                    self.wakeup.wait(&mut state);
                }
            }
        }
    }

    /// Routes one frame according to the fault model.
    fn route(&self, tag: &str, dest: &Sender<Bytes>, frame: Bytes) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        if let Some(vc) = self.clock.as_virtual() {
            vc.note_activity();
        }
        let mut state = self.state.lock();
        if *state.down.get(tag).unwrap_or(&false) {
            self.dropped_partition.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(flake) = state.flakes.get_mut(tag) {
            if flake.drops() {
                self.dropped_loss.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let config = state.config;
        if config.is_instant() {
            drop(state);
            if dest.send(frame).is_ok() {
                self.delivered.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        if config.loss > 0.0 && state.rng.gen_bool(config.loss.clamp(0.0, 1.0)) {
            self.dropped_loss.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let copies =
            if config.duplicate > 0.0 && state.rng.gen_bool(config.duplicate.clamp(0.0, 1.0)) {
                self.duplicated.fetch_add(1, Ordering::Relaxed);
                2
            } else {
                1
            };
        let now = self.clock.now();
        for _ in 0..copies {
            let mut delay = config.latency;
            if !config.jitter.is_zero() {
                delay += Duration::from_nanos(
                    state
                        .rng
                        .gen_range(0..config.jitter.as_nanos().max(1) as u64),
                );
            }
            if config.reorder > 0.0
                && !config.reorder_extra.is_zero()
                && state.rng.gen_bool(config.reorder.clamp(0.0, 1.0))
            {
                delay += Duration::from_nanos(
                    state
                        .rng
                        .gen_range(0..config.reorder_extra.as_nanos().max(1) as u64),
                );
            }
            let item = Scheduled {
                due: now + delay,
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                dest: dest.clone(),
                frame: frame.clone(),
            };
            state.heap.push(item);
        }
        drop(state);
        self.wakeup.notify_all();
    }
}

/// One half of a simulated connection.
struct SimConn {
    net: Arc<SimNet>,
    /// The listener name this connection was made to; partition tag.
    tag: String,
    peer_tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    closed: Arc<CloseFlag>,
    peer: Option<Endpoint>,
}

impl Conn for SimConn {
    fn send(&self, frame: Bytes) -> Result<()> {
        if self.closed.is_closed() {
            return Err(TransportError::Closed);
        }
        self.net.route(&self.tag, &self.peer_tx, frame);
        Ok(())
    }

    fn recv(&self) -> Result<Bytes> {
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(f) => return Ok(f),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if self.closed.is_closed() && self.rx.is_empty() {
                        return Err(TransportError::Closed);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Closed)
                }
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Bytes> {
        let deadline = Instant::now() + timeout;
        loop {
            let step = deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(50));
            match self.rx.recv_timeout(step) {
                Ok(f) => return Ok(f),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if self.closed.is_closed() && self.rx.is_empty() {
                        return Err(TransportError::Closed);
                    }
                    if Instant::now() >= deadline {
                        return Err(TransportError::Timeout);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Closed)
                }
            }
        }
    }

    fn close(&self) {
        self.closed.close();
    }

    fn peer(&self) -> Option<Endpoint> {
        self.peer.clone()
    }
}

struct SimListener {
    name: String,
    incoming: Receiver<Box<dyn Conn>>,
    net: Arc<SimNet>,
}

impl Listener for SimListener {
    fn accept(&self) -> Result<Box<dyn Conn>> {
        self.incoming.recv().map_err(|_| TransportError::Closed)
    }

    fn local_endpoint(&self) -> Endpoint {
        Endpoint::sim(self.name.clone())
    }

    fn close(&self) {
        self.net.state.lock().listeners.remove(&self.name);
    }
}

impl Transport for Arc<SimNet> {
    fn scheme(&self) -> &str {
        "sim"
    }

    fn connect(&self, ep: &Endpoint) -> Result<Box<dyn Conn>> {
        let name = ep.addr().to_owned();
        let accept_tx = {
            let state = self.state.lock();
            if *state.down.get(&name).unwrap_or(&false) {
                return Err(TransportError::Partitioned);
            }
            state
                .listeners
                .get(&name)
                .cloned()
                .ok_or_else(|| TransportError::ConnectionRefused(ep.to_string()))?
        };
        let (c2s_tx, c2s_rx) = unbounded();
        let (s2c_tx, s2c_rx) = unbounded();
        let closed = Arc::new(CloseFlag::default());
        {
            let mut state = self.state.lock();
            let conns = state.conns.entry(name.clone()).or_default();
            conns.retain(|w| w.upgrade().is_some_and(|f| !f.is_closed()));
            conns.push(Arc::downgrade(&closed));
        }
        let client = SimConn {
            net: Arc::clone(self),
            tag: name.clone(),
            peer_tx: c2s_tx,
            rx: s2c_rx,
            closed: Arc::clone(&closed),
            peer: Some(ep.clone()),
        };
        let server = SimConn {
            net: Arc::clone(self),
            tag: name,
            peer_tx: s2c_tx,
            rx: c2s_rx,
            closed,
            peer: None,
        };
        accept_tx
            .send(Box::new(server))
            .map_err(|_| TransportError::ConnectionRefused(ep.to_string()))?;
        Ok(Box::new(client))
    }

    fn listen(&self, ep: &Endpoint) -> Result<Box<dyn Listener>> {
        let (tx, rx) = unbounded();
        let mut state = self.state.lock();
        if state.listeners.contains_key(ep.addr()) {
            return Err(TransportError::AddressInUse(ep.to_string()));
        }
        state.listeners.insert(ep.addr().to_owned(), tx);
        Ok(Box::new(SimListener {
            name: ep.addr().to_owned(),
            incoming: rx,
            net: Arc::clone(self),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(net: &Arc<SimNet>, name: &str) -> (Box<dyn Conn>, Box<dyn Conn>) {
        let l = net.listen(&Endpoint::sim(name)).unwrap();
        let c = net.connect(&Endpoint::sim(name)).unwrap();
        let s = l.accept().unwrap();
        (c, s)
    }

    #[test]
    fn instant_link_delivers_in_order() {
        let net = SimNet::instant();
        let (c, s) = pair(&net, "a");
        for i in 0..50u32 {
            c.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        for i in 0..50u32 {
            assert_eq!(&s.recv().unwrap()[..], i.to_le_bytes());
        }
        assert_eq!(net.stats().delivered, 50);
    }

    #[test]
    fn latency_delays_delivery() {
        let net = SimNet::new(LinkConfig::with_latency(Duration::from_millis(30)));
        let (c, s) = pair(&net, "a");
        let t0 = Instant::now();
        c.send(Bytes::from(b"x".to_vec())).unwrap();
        let f = s.recv().unwrap();
        assert_eq!(f, b"x");
        assert!(
            t0.elapsed() >= Duration::from_millis(28),
            "{:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn loss_drops_frames() {
        let mut config = LinkConfig::with_latency(Duration::from_micros(10));
        config.loss = 1.0;
        let net = SimNet::with_seed(config, 7);
        let (c, s) = pair(&net, "a");
        c.send(Bytes::from(b"x".to_vec())).unwrap();
        assert_eq!(
            s.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            TransportError::Timeout
        );
        assert_eq!(net.stats().dropped_loss, 1);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut config = LinkConfig::with_latency(Duration::from_micros(10));
        config.duplicate = 1.0;
        let net = SimNet::with_seed(config, 7);
        let (c, s) = pair(&net, "a");
        c.send(Bytes::from(b"x".to_vec())).unwrap();
        assert_eq!(s.recv_timeout(Duration::from_secs(1)).unwrap(), b"x");
        assert_eq!(s.recv_timeout(Duration::from_secs(1)).unwrap(), b"x");
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn reordering_occurs_under_jitter() {
        let mut config = LinkConfig::with_latency(Duration::from_micros(100));
        config.reorder = 0.5;
        config.reorder_extra = Duration::from_millis(5);
        let net = SimNet::with_seed(config, 42);
        let (c, s) = pair(&net, "a");
        let n = 64u32;
        for i in 0..n {
            c.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..n {
            let f = s.recv_timeout(Duration::from_secs(2)).unwrap();
            got.push(u32::from_le_bytes([f[0], f[1], f[2], f[3]]));
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "no frame lost");
        assert_ne!(got, sorted, "expected at least one reordering");
    }

    #[test]
    fn partition_blocks_and_heals() {
        let net = SimNet::instant();
        let (c, s) = pair(&net, "srv");
        net.set_down("srv", true);
        c.send(Bytes::from(b"lost".to_vec())).unwrap();
        assert_eq!(
            s.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            TransportError::Timeout
        );
        assert!(matches!(
            net.connect(&Endpoint::sim("srv")),
            Err(TransportError::Partitioned)
        ));
        net.set_down("srv", false);
        c.send(Bytes::from(b"ok".to_vec())).unwrap();
        assert_eq!(s.recv_timeout(Duration::from_secs(1)).unwrap(), b"ok");
        assert_eq!(net.stats().dropped_partition, 1);
    }

    #[test]
    fn partition_blocks_replies_too() {
        let net = SimNet::instant();
        let (c, s) = pair(&net, "srv");
        net.set_down("srv", true);
        s.send(Bytes::from(b"reply".to_vec())).unwrap();
        assert_eq!(
            c.recv_timeout(Duration::from_millis(80)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn crash_closes_established_connections() {
        let net = SimNet::instant();
        let l = net.listen(&Endpoint::sim("srv")).unwrap();
        let c = net.connect(&Endpoint::sim("srv")).unwrap();
        let s = l.accept().unwrap();
        net.crash("srv");
        // Both halves observe Closed — not silence, as under set_down.
        assert_eq!(
            c.send(Bytes::from(b"x".to_vec())).unwrap_err(),
            TransportError::Closed
        );
        assert_eq!(
            s.recv_timeout(Duration::from_millis(200)).unwrap_err(),
            TransportError::Closed
        );
        assert!(matches!(
            net.connect(&Endpoint::sim("srv")),
            Err(TransportError::Partitioned)
        ));
        // After restart (and a fresh listen, here the old listener still
        // stands in) connects succeed again.
        net.restart("srv");
        let c2 = net.connect(&Endpoint::sim("srv")).unwrap();
        c2.send(Bytes::from(b"y".to_vec())).unwrap();
    }

    #[test]
    fn crash_spares_other_listeners() {
        let net = SimNet::instant();
        let (c_a, s_a) = pair(&net, "a");
        let (c_b, s_b) = pair(&net, "b");
        net.crash("a");
        assert!(c_a.send(Bytes::from(b"x".to_vec())).is_err());
        let _ = s_a;
        c_b.send(Bytes::from(b"ok".to_vec())).unwrap();
        assert_eq!(s_b.recv_timeout(Duration::from_secs(1)).unwrap(), b"ok");
    }

    #[test]
    fn flake_schedule_is_seeded_and_per_link() {
        let observed: Vec<u64> = (0..2)
            .map(|_| {
                let net = SimNet::instant();
                let (c_a, _s_a) = pair(&net, "a");
                let (c_b, s_b) = pair(&net, "b");
                net.set_flake("a", Some(FlakePlan::uniform(0.5)), 77);
                for _ in 0..100 {
                    c_a.send(Bytes::from(vec![1])).unwrap();
                    c_b.send(Bytes::from(vec![2])).unwrap();
                }
                // The clean link is untouched by "a"'s weather.
                for _ in 0..100 {
                    assert_eq!(s_b.recv_timeout(Duration::from_secs(1)).unwrap(), vec![2]);
                }
                net.stats().dropped_loss
            })
            .collect();
        assert_eq!(observed[0], observed[1], "same seed, same drops");
        assert!(observed[0] > 20 && observed[0] < 80);
    }

    #[test]
    fn flake_bursts_drop_consecutive_frames() {
        let net = SimNet::instant();
        let (c, s) = pair(&net, "a");
        net.set_flake(
            "a",
            Some(FlakePlan {
                loss: 1.0,
                burst_len: 3,
            }),
            1,
        );
        for i in 0..3u8 {
            c.send(Bytes::from(vec![i])).unwrap();
        }
        assert_eq!(net.stats().dropped_loss, 3);
        net.set_flake("a", None, 0);
        c.send(Bytes::from(b"through".to_vec())).unwrap();
        assert_eq!(s.recv_timeout(Duration::from_secs(1)).unwrap(), b"through");
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let observed: Vec<u64> = (0..2)
            .map(|_| {
                let mut config = LinkConfig::with_latency(Duration::from_micros(10));
                config.loss = 0.5;
                let net = SimNet::with_seed(config, 1234);
                let (c, _s) = pair(&net, "a");
                for _ in 0..100 {
                    c.send(Bytes::from(vec![0])).unwrap();
                }
                // Wait for routing to settle.
                std::thread::sleep(Duration::from_millis(50));
                net.stats().dropped_loss
            })
            .collect();
        assert_eq!(observed[0], observed[1]);
        assert!(observed[0] > 20 && observed[0] < 80);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::{Endpoint, Transport};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Under jitter (but no loss), every frame is delivered exactly
        /// once, in some order.
        #[test]
        fn jitter_preserves_exactly_once(seed in any::<u64>(), n in 1usize..40) {
            let mut config = LinkConfig::with_latency(Duration::from_micros(50));
            config.jitter = Duration::from_micros(300);
            config.reorder = 0.3;
            config.reorder_extra = Duration::from_micros(500);
            let net = SimNet::with_seed(config, seed);
            let l = net.listen(&Endpoint::sim("p")).unwrap();
            let c = net.connect(&Endpoint::sim("p")).unwrap();
            let s = l.accept().unwrap();
            for i in 0..n {
                c.send(Bytes::from(vec![i as u8])).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..n {
                got.push(s.recv_timeout(Duration::from_secs(2)).unwrap()[0]);
            }
            got.sort_unstable();
            prop_assert_eq!(got, (0..n as u8).collect::<Vec<_>>());
            prop_assert_eq!(
                s.recv_timeout(Duration::from_millis(30)).unwrap_err(),
                crate::TransportError::Timeout
            );
        }
    }
}
