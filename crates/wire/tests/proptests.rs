//! Property-based tests for the pickle format.
//!
//! The central properties: every value round-trips bit-exactly; decoding is
//! total (arbitrary bytes never panic); and the reference scanner finds
//! exactly the references that were written.

use proptest::prelude::*;

use netobj_wire::pickle::{scan_refs, Pickle, Value};
use netobj_wire::{ObjIx, SpaceId, WireRep};

fn arb_wirerep() -> impl Strategy<Value = WireRep> {
    (any::<u128>(), any::<u64>()).prop_map(|(s, ix)| WireRep::new(SpaceId::from_raw(s), ObjIx(ix)))
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::UInt),
        // NaN breaks PartialEq-based roundtrip comparison; use finite floats
        // here and test NaN bit-patterns separately below.
        (-1e300f64..1e300).prop_map(Value::Float),
        ".*".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        arb_wirerep().prop_map(Value::Ref),
        Just(Value::Opt(None)),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Seq),
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Record),
            proptest::collection::vec((inner.clone(), inner.clone()), 0..4).prop_map(Value::Map),
            inner.clone().prop_map(|v| Value::Opt(Some(Box::new(v)))),
            (any::<u64>(), inner).prop_map(|(d, v)| Value::Variant(d, Box::new(v))),
        ]
    })
}

proptest! {
    #[test]
    fn value_roundtrip(v in arb_value()) {
        let bytes = v.to_pickle_bytes();
        let back = Value::from_pickle_bytes(&bytes).expect("roundtrip decode");
        prop_assert_eq!(v, back);
    }

    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must never panic; errors are fine.
        let _ = Value::from_pickle_bytes(&bytes);
        let _ = scan_refs(&bytes);
    }

    #[test]
    fn scan_finds_exactly_written_refs(
        refs in proptest::collection::vec(arb_wirerep(), 0..8),
        pad in proptest::collection::vec(any::<i64>(), 0..8),
    ) {
        // Interleave refs and integer padding inside a record.
        let mut fields = Vec::new();
        for (i, r) in refs.iter().enumerate() {
            fields.push(Value::Ref(*r));
            if let Some(p) = pad.get(i) {
                fields.push(Value::Int(*p));
            }
        }
        let v = Value::Record(fields);
        let bytes = v.to_pickle_bytes();
        let found = scan_refs(&bytes).expect("scan");
        prop_assert_eq!(found, refs);
    }

    #[test]
    fn integer_roundtrip_all_widths(v in any::<i64>()) {
        let bytes = v.to_pickle_bytes();
        prop_assert_eq!(i64::from_pickle_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn string_roundtrip(s in ".*") {
        let bytes = s.to_pickle_bytes();
        prop_assert_eq!(String::from_pickle_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn nested_vec_roundtrip(v in proptest::collection::vec(
        proptest::collection::vec(any::<u32>(), 0..8), 0..8)
    ) {
        let bytes = v.to_pickle_bytes();
        prop_assert_eq!(Vec::<Vec<u32>>::from_pickle_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn tuple_roundtrip(a in any::<i32>(), b in ".*", c in any::<bool>()) {
        let v = (a, b.clone(), c);
        let bytes = v.to_pickle_bytes();
        prop_assert_eq!(<(i32, String, bool)>::from_pickle_bytes(&bytes).unwrap(), v);
    }
}

#[test]
fn float_bit_patterns_roundtrip() {
    for bits in [
        0u64,
        f64::NAN.to_bits(),
        f64::INFINITY.to_bits(),
        1u64,
        u64::MAX,
    ] {
        let v = f64::from_bits(bits);
        let bytes = v.to_pickle_bytes();
        let back = f64::from_pickle_bytes(&bytes).unwrap();
        // Compare representations: NaN != NaN under PartialEq.
        assert_eq!(back.to_bits(), v.to_bits());
    }
}

mod framing {
    use bytes::BytesMut;
    use netobj_wire::frame::{encode_frame, FrameDecoder};
    use proptest::prelude::*;

    proptest! {
        /// Any sequence of frames survives any re-chunking of the byte
        /// stream (the property TCP delivery depends on).
        #[test]
        fn frames_survive_fixed_chunking(
            frames in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..128), 0..8),
            chunk in 1usize..17,
        ) {
            let mut stream = BytesMut::new();
            for f in &frames {
                encode_frame(&mut stream, f).unwrap();
            }
            let mut decoder = FrameDecoder::default();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for piece in stream.chunks(chunk) {
                decoder.extend(piece);
                while let Some(f) = decoder.next_frame().unwrap() {
                    got.push(f.to_vec());
                }
            }
            prop_assert_eq!(got, frames);
        }

        /// The same byte stream split at *arbitrary* boundaries (a random
        /// cut set, not a fixed chunk size) yields an identical frame
        /// sequence — and one identical to feeding the stream whole. This
        /// pins down the zero-copy decoder's buffer bookkeeping: split
        /// points may land inside the length prefix, inside a payload, or
        /// exactly between frames.
        #[test]
        fn frames_survive_arbitrary_split_points(
            frames in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..96), 1..8),
            cuts in proptest::collection::vec(any::<usize>(), 0..24),
        ) {
            let mut stream = BytesMut::new();
            for f in &frames {
                encode_frame(&mut stream, f).unwrap();
            }
            let bytes = stream.to_vec();

            // Reference: decode in one feed.
            let mut whole = FrameDecoder::default();
            whole.extend(&bytes);
            let mut expect: Vec<Vec<u8>> = Vec::new();
            while let Some(f) = whole.next_frame().unwrap() {
                expect.push(f.to_vec());
            }
            prop_assert_eq!(&expect, &frames);

            // Candidate: decode across random split points, draining after
            // every piece so yielded frames and buffered bytes interleave.
            let mut points: Vec<usize> = cuts.iter().map(|i| i % (bytes.len() + 1)).collect();
            points.push(0);
            points.push(bytes.len());
            points.sort_unstable();
            points.dedup();
            let mut decoder = FrameDecoder::default();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for w in points.windows(2) {
                decoder.extend(&bytes[w[0]..w[1]]);
                while let Some(f) = decoder.next_frame().unwrap() {
                    got.push(f.to_vec());
                }
            }
            prop_assert_eq!(got, expect);
            prop_assert_eq!(decoder.buffered(), 0);
        }

        /// Arbitrary garbage never panics the decoder; it either yields
        /// frames or errors on an oversized length.
        #[test]
        fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut decoder = FrameDecoder::new(1024);
            decoder.extend(&bytes);
            while let Ok(Some(_)) = decoder.next_frame() {}
        }
    }
}

mod trace {
    use netobj_wire::pickle::{Pickle, PickleWriter};
    use netobj_wire::{ObjIx, SpaceId, TraceEvent, TraceKind, WireRep};
    use proptest::prelude::*;

    fn arb_space() -> impl Strategy<Value = SpaceId> {
        any::<u128>().prop_map(SpaceId::from_raw)
    }

    fn arb_rep() -> impl Strategy<Value = WireRep> {
        (any::<u128>(), any::<u64>())
            .prop_map(|(s, ix)| WireRep::new(SpaceId::from_raw(s), ObjIx(ix)))
    }

    /// Every one of the 22 trace kinds, with arbitrary identities.
    fn arb_kind() -> impl Strategy<Value = TraceKind> {
        prop_oneof![
            (arb_space(), arb_space(), arb_rep(), any::<u64>()).prop_map(
                |(client, owner, target, seqno)| TraceKind::DirtySent {
                    client,
                    owner,
                    target,
                    seqno
                }
            ),
            (arb_space(), arb_space(), arb_rep(), any::<u64>()).prop_map(
                |(owner, client, target, seqno)| TraceKind::DirtyApplied {
                    owner,
                    client,
                    target,
                    seqno
                }
            ),
            (arb_space(), arb_space(), arb_rep(), any::<u64>()).prop_map(
                |(owner, client, target, seqno)| TraceKind::DirtyStale {
                    owner,
                    client,
                    target,
                    seqno
                }
            ),
            (arb_space(), arb_space(), arb_rep(), any::<u64>()).prop_map(
                |(owner, client, target, seqno)| TraceKind::DirtyRefused {
                    owner,
                    client,
                    target,
                    seqno
                }
            ),
            (
                (arb_space(), arb_space(), arb_rep()),
                (any::<u64>(), any::<bool>())
            )
                .prop_map(|((client, owner, target), (seqno, ok))| {
                    TraceKind::DirtyAcked {
                        client,
                        owner,
                        target,
                        seqno,
                        ok,
                    }
                }),
            (
                (arb_space(), arb_space(), arb_rep()),
                (any::<u64>(), any::<bool>(), any::<bool>())
            )
                .prop_map(|((client, owner, target), (seqno, strong, batched))| {
                    TraceKind::CleanSent {
                        client,
                        owner,
                        target,
                        seqno,
                        strong,
                        batched,
                    }
                }),
            (
                (arb_space(), arb_space(), arb_rep()),
                (any::<u64>(), any::<bool>())
            )
                .prop_map(|((owner, client, target), (seqno, strong))| {
                    TraceKind::CleanApplied {
                        owner,
                        client,
                        target,
                        seqno,
                        strong,
                    }
                }),
            (arb_space(), arb_space(), arb_rep(), any::<u64>()).prop_map(
                |(owner, client, target, seqno)| TraceKind::CleanStale {
                    owner,
                    client,
                    target,
                    seqno
                }
            ),
            (arb_space(), arb_space(), arb_rep(), any::<u64>()).prop_map(
                |(client, owner, target, seqno)| TraceKind::CleanAcked {
                    client,
                    owner,
                    target,
                    seqno
                }
            ),
            (arb_space(), arb_rep(), any::<u64>()).prop_map(|(client, target, epoch)| {
                TraceKind::SurrogateCreated {
                    client,
                    target,
                    epoch,
                }
            }),
            (arb_space(), arb_rep(), any::<u64>()).prop_map(|(client, target, epoch)| {
                TraceKind::SurrogateResurrecting {
                    client,
                    target,
                    epoch,
                }
            }),
            (arb_space(), arb_rep(), any::<u64>()).prop_map(|(client, target, epoch)| {
                TraceKind::SurrogateDropped {
                    client,
                    target,
                    epoch,
                }
            }),
            (arb_space(), arb_rep(), any::<u64>()).prop_map(|(owner, target, pin)| {
                TraceKind::TransientPinned { owner, target, pin }
            }),
            (arb_space(), arb_rep(), any::<u64>()).prop_map(|(owner, target, pin)| {
                TraceKind::TransientReleased { owner, target, pin }
            }),
            (arb_space(), arb_rep())
                .prop_map(|(owner, target)| TraceKind::ExportCreated { owner, target }),
            (arb_space(), arb_rep())
                .prop_map(|(owner, target)| TraceKind::ExportCollected { owner, target }),
            (arb_space(), arb_space())
                .prop_map(|(owner, client)| TraceKind::PingSent { owner, client }),
            (arb_space(), arb_space())
                .prop_map(|(space, from)| TraceKind::PingReceived { space, from }),
            (arb_space(), any::<u64>())
                .prop_map(|(owner, expired)| TraceKind::LeaseExpired { owner, expired }),
            (arb_space(), arb_space())
                .prop_map(|(owner, client)| TraceKind::ClientPurged { owner, client }),
            (arb_space(), arb_space())
                .prop_map(|(client, owner)| TraceKind::OwnerDead { client, owner }),
            arb_space().prop_map(|space| TraceKind::SpaceCrashed { space }),
        ]
    }

    proptest! {
        /// Every trace event — all 22 kinds, arbitrary identities —
        /// survives the pickle encoding bit-exactly.
        #[test]
        fn trace_events_roundtrip(
            seq in any::<u64>(),
            at_micros in any::<u64>(),
            kind in arb_kind(),
        ) {
            let ev = TraceEvent { seq, at_micros, kind };
            let bytes = ev.to_pickle_bytes();
            prop_assert_eq!(TraceEvent::from_pickle_bytes(&bytes).unwrap(), ev);
        }

        /// Arbitrary bytes never panic the trace decoder.
        #[test]
        fn trace_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = TraceEvent::from_pickle_bytes(&bytes);
        }

        /// The CLEAN_BATCH payload — a vector of `(ix, seqno, strong)`
        /// intents — round-trips at every length, including empty and
        /// far larger than any real batch.
        #[test]
        fn clean_batch_roundtrip(
            batch in proptest::collection::vec(
                (any::<u64>(), any::<u64>(), any::<bool>()), 0..300),
        ) {
            let bytes = batch.to_pickle_bytes();
            let back = Vec::<(u64, u64, bool)>::from_pickle_bytes(&bytes).unwrap();
            prop_assert_eq!(back, batch);
        }

        /// Truncating a clean batch anywhere yields an error or a shorter
        /// prefix-decode failure — never a panic.
        #[test]
        fn clean_batch_truncation_never_panics(
            batch in proptest::collection::vec(
                (any::<u64>(), any::<u64>(), any::<bool>()), 0..16),
            cut in any::<u16>(),
        ) {
            let bytes = batch.to_pickle_bytes();
            let cut = (cut as usize) % (bytes.len() + 1);
            let _ = Vec::<(u64, u64, bool)>::from_pickle_bytes(&bytes[..cut]);
        }

        /// An adversarial length prefix (a batch claiming up to 2^64
        /// elements with no bytes behind it) errors cleanly instead of
        /// allocating or panicking.
        #[test]
        fn clean_batch_hostile_length_is_rejected(
            claimed in 16u64..u64::MAX,
            junk in 0u64..4,
        ) {
            let mut w = PickleWriter::new();
            w.put_u64(claimed);
            for i in 0..junk {
                w.put_u64(i);
            }
            let bytes = w.into_bytes();
            prop_assert!(Vec::<(u64, u64, bool)>::from_pickle_bytes(&bytes).is_err());
        }
    }
}

mod endpoints {
    use netobj_wire::pickle::Pickle;
    use proptest::prelude::*;

    proptest! {
        /// Well-formed endpoints round-trip through display+parse and
        /// through the pickle format (exercised via the transport crate's
        /// `Endpoint` in its own tests; here we check the typecode list).
        #[test]
        fn typelists_roundtrip(names in proptest::collection::vec("[a-z.]{1,20}", 0..6)) {
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let l = netobj_wire::TypeList::from_names(&refs);
            let bytes = l.to_pickle_bytes();
            let back = netobj_wire::TypeList::from_pickle_bytes(&bytes).unwrap();
            prop_assert_eq!(l, back);
        }

        /// Fingerprints are stable across calls and distinct for distinct
        /// names (no collisions in practice for reasonable name sets).
        #[test]
        fn typecodes_deterministic(name in "[a-zA-Z0-9._-]{1,40}") {
            let a = netobj_wire::TypeCode::of_name(&name);
            let b = netobj_wire::TypeCode::of_name(&name);
            prop_assert_eq!(a, b);
        }
    }
}
