//! Wire-level building blocks for the network objects runtime.
//!
//! This crate contains everything both ends of a connection must agree on:
//!
//! - [`SpaceId`], [`ObjIx`] and [`WireRep`]: the globally unique name of a
//!   network object (the pair of its owner's space identifier and its index
//!   in the owner's object table), exactly as in the Network Objects paper.
//! - [`TypeCode`] and [`TypeList`]: type fingerprints used to pick the
//!   *narrowest* surrogate type known to an importing space.
//! - The *pickle* format ([`pickle`]): a compact, self-describing binary
//!   encoding for method arguments and results, including embedded network
//!   object references.
//! - [`frame`]: length-prefixed message framing used by every transport.
//!
//! Nothing in this crate performs I/O or knows about processes; it is pure
//! data representation, shared by the transport, RPC and runtime layers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frame;
pub mod ids;
pub mod pickle;
pub mod span;
pub mod trace;
pub mod typecode;

pub use error::WireError;
pub use ids::{ObjIx, SpaceId, WireRep};
pub use pickle::{Pickle, PickleReader, PickleWriter, Value};
pub use span::{SpanKind, SpanOutcome, SpanRecord};
pub use trace::{TraceEvent, TraceKind};
pub use typecode::{TypeCode, TypeList};

/// Result alias used throughout the wire layer.
pub type Result<T> = std::result::Result<T, WireError>;
