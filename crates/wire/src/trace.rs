//! Typed collector trace events.
//!
//! Every collector-relevant action in the runtime — dirty and clean calls
//! sent, received and acknowledged; surrogates created, resurrected and
//! dropped; transient pins taken and released; exports created and
//! collected; pings, lease expiries and death verdicts — is recorded as a
//! [`TraceEvent`] in the emitting space's trace ring. The conformance
//! oracle (`netobj-dgc-model`'s `replay` module) merges the rings of all
//! spaces in a scenario and folds the events back onto the formal model's
//! transitions, checking every invariant after every step.
//!
//! Events live in this crate (rather than in `netobj`) so that both the
//! runtime and the model crate can speak the type without a dependency
//! cycle, and so that traces can be pickled for the flake-detector dumps
//! the CI job diffs across runs.

use crate::error::WireError;
use crate::ids::SpaceId;
use crate::pickle::{Pickle, PickleReader, PickleWriter};
use crate::{Result, WireRep};

macro_rules! trace_kinds {
    ($( $disc:literal => $name:ident { $( $field:ident : $ty:ty ),* $(,)? } ),* $(,)?) => {
        /// One kind of collector action, with the identities involved.
        ///
        /// `client` is always the space holding (or acquiring) the
        /// surrogate; `owner` the space holding the concrete object;
        /// `target` the wireRep of the object the action concerns.
        /// Variants mirror the message and state-change vocabulary of the
        /// collector: see the module docs of `netobj::dgc` for the
        /// protocol itself.
        #[allow(missing_docs)]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub enum TraceKind {
            $( $name { $( $field : $ty ),* } ),*
        }

        impl TraceKind {
            /// Stable numeric discriminant used by the pickle encoding.
            pub fn disc(&self) -> u64 {
                match self { $( TraceKind::$name { .. } => $disc ),* }
            }
        }

        impl Pickle for TraceKind {
            fn pickle(&self, w: &mut PickleWriter) {
                w.put_u64(self.disc());
                match self {
                    $( TraceKind::$name { $( $field ),* } => { $( $field.pickle(w); )* } ),*
                }
            }

            fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
                let disc = r.get_u64()?;
                Ok(match disc {
                    $( $disc => TraceKind::$name {
                        $( $field: <$ty as Pickle>::unpickle(r)? ),*
                    }, )*
                    _ => return Err(WireError::OutOfRange("unknown trace kind")),
                })
            }
        }
    };
}

trace_kinds! {
    // Registration (dirty) exchange.
    0 => DirtySent { client: SpaceId, owner: SpaceId, target: WireRep, seqno: u64 },
    1 => DirtyApplied { owner: SpaceId, client: SpaceId, target: WireRep, seqno: u64 },
    2 => DirtyStale { owner: SpaceId, client: SpaceId, target: WireRep, seqno: u64 },
    3 => DirtyRefused { owner: SpaceId, client: SpaceId, target: WireRep, seqno: u64 },
    4 => DirtyAcked { client: SpaceId, owner: SpaceId, target: WireRep, seqno: u64, ok: bool },
    // Unregistration (clean) exchange.
    5 => CleanSent {
        client: SpaceId, owner: SpaceId, target: WireRep,
        seqno: u64, strong: bool, batched: bool,
    },
    6 => CleanApplied {
        owner: SpaceId, client: SpaceId, target: WireRep, seqno: u64, strong: bool,
    },
    7 => CleanStale { owner: SpaceId, client: SpaceId, target: WireRep, seqno: u64 },
    8 => CleanAcked { client: SpaceId, owner: SpaceId, target: WireRep, seqno: u64 },
    // Surrogate life cycle at the client.
    9 => SurrogateCreated { client: SpaceId, target: WireRep, epoch: u64 },
    10 => SurrogateResurrecting { client: SpaceId, target: WireRep, epoch: u64 },
    11 => SurrogateDropped { client: SpaceId, target: WireRep, epoch: u64 },
    // Transmission protection at the owner.
    12 => TransientPinned { owner: SpaceId, target: WireRep, pin: u64 },
    13 => TransientReleased { owner: SpaceId, target: WireRep, pin: u64 },
    // Concrete-entry life cycle at the owner.
    14 => ExportCreated { owner: SpaceId, target: WireRep },
    15 => ExportCollected { owner: SpaceId, target: WireRep },
    // Termination detection.
    16 => PingSent { owner: SpaceId, client: SpaceId },
    17 => PingReceived { space: SpaceId, from: SpaceId },
    18 => LeaseExpired { owner: SpaceId, expired: u64 },
    19 => ClientPurged { owner: SpaceId, client: SpaceId },
    20 => OwnerDead { client: SpaceId, owner: SpaceId },
    21 => SpaceCrashed { space: SpaceId },
}

/// One recorded collector action: what happened, where, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Emitting space's sequence number (dense, per-space).
    pub seq: u64,
    /// Microseconds since the emitting space's trace epoch, measured on
    /// the space's configured clock (virtual time under a virtual clock).
    pub at_micros: u64,
    /// What happened.
    pub kind: TraceKind,
}

impl Pickle for TraceEvent {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_u64(self.seq);
        w.put_u64(self.at_micros);
        self.kind.pickle(w);
    }

    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        Ok(TraceEvent {
            seq: r.get_u64()?,
            at_micros: r.get_u64()?,
            kind: TraceKind::unpickle(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjIx;

    fn rep(owner: u128, ix: u64) -> WireRep {
        WireRep::new(SpaceId::from_raw(owner), ObjIx(ix))
    }

    #[test]
    fn events_roundtrip() {
        let cases = vec![
            TraceKind::DirtySent {
                client: SpaceId::from_raw(1),
                owner: SpaceId::from_raw(2),
                target: rep(2, 7),
                seqno: 42,
            },
            TraceKind::CleanSent {
                client: SpaceId::from_raw(1),
                owner: SpaceId::from_raw(2),
                target: rep(2, 7),
                seqno: 43,
                strong: true,
                batched: false,
            },
            TraceKind::ExportCollected {
                owner: SpaceId::from_raw(2),
                target: rep(2, 7),
            },
            TraceKind::SpaceCrashed {
                space: SpaceId::from_raw(9),
            },
        ];
        for (i, kind) in cases.into_iter().enumerate() {
            let ev = TraceEvent {
                seq: i as u64,
                at_micros: 1_000 * i as u64,
                kind,
            };
            let bytes = ev.to_pickle_bytes();
            assert_eq!(TraceEvent::from_pickle_bytes(&bytes).unwrap(), ev);
        }
    }

    #[test]
    fn unknown_discriminant_is_an_error() {
        let mut w = PickleWriter::new();
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(9999);
        let bytes = w.into_bytes();
        assert!(TraceEvent::from_pickle_bytes(&bytes).is_err());
    }
}
