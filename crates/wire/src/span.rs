//! Causal call spans.
//!
//! Every remote invocation is recorded twice: once by the caller (a
//! *client* span covering marshal → call → unmarshal) and once by the
//! callee (a *server* span covering queue wait → dispatch). Both carry the
//! same `trace_id` — allocated at the root caller of a call chain and
//! propagated unchanged through every fan-out hop in the request header —
//! so merging the span rings of several spaces reconstructs the causal
//! shape of a distributed call without any global coordination.
//!
//! Spans live in this crate (like [`crate::trace::TraceEvent`]) so the
//! runtime, the bench harness and the `netobj-top` reporter can all speak
//! the type without a dependency cycle, and so rings can be pickled and
//! shipped through the `Introspect` built-in object.

use crate::error::WireError;
use crate::ids::SpaceId;
use crate::pickle::{Pickle, PickleReader, PickleWriter};
use crate::{Result, WireRep};

/// Which side of a call a span was recorded on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Recorded by the caller: covers the whole remote invocation as the
    /// application observed it (marshal, transmission, retries, unmarshal).
    Client,
    /// Recorded by the callee: covers queue wait plus dispatch.
    Server,
}

impl Pickle for SpanKind {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_u64(match self {
            SpanKind::Client => 0,
            SpanKind::Server => 1,
        });
    }

    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        match r.get_u64()? {
            0 => Ok(SpanKind::Client),
            1 => Ok(SpanKind::Server),
            _ => Err(WireError::OutOfRange("span kind")),
        }
    }
}

/// How a call ended, from the recording side's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The call completed and returned a result.
    Ok,
    /// The callee executed the method but it returned an error.
    AppError,
    /// The call failed at the invocation layer (timeout, connection loss,
    /// retries exhausted) — the method may or may not have executed.
    Failed,
    /// The call was refused without being attempted: open circuit breaker,
    /// known-dead owner, or (server side) no such object.
    Rejected,
}

impl Pickle for SpanOutcome {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_u64(match self {
            SpanOutcome::Ok => 0,
            SpanOutcome::AppError => 1,
            SpanOutcome::Failed => 2,
            SpanOutcome::Rejected => 3,
        });
    }

    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        match r.get_u64()? {
            0 => Ok(SpanOutcome::Ok),
            1 => Ok(SpanOutcome::AppError),
            2 => Ok(SpanOutcome::Failed),
            3 => Ok(SpanOutcome::Rejected),
            _ => Err(WireError::OutOfRange("span outcome")),
        }
    }
}

impl SpanOutcome {
    /// Short lowercase name, used as a metrics label.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::AppError => "app_error",
            SpanOutcome::Failed => "failed",
            SpanOutcome::Rejected => "rejected",
        }
    }
}

/// One recorded call span.
///
/// Times are microseconds; durations are measured on the recording space's
/// configured clock (virtual time under a virtual clock), `start_micros`
/// relative to that space's span-ring epoch. Fields that only one side can
/// know are zero on the other side (`queue_wait_micros` and
/// `service_micros` on client spans; `retries` and `breaker_open` on
/// server spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Recording space's dense per-ring sequence number.
    pub seq: u64,
    /// Trace this span belongs to (shared across the whole call chain).
    pub trace_id: u64,
    /// This span's own identifier, unique within the trace.
    pub span_id: u64,
    /// The span id of the call that caused this one, or 0 at the root.
    ///
    /// On a server span this is the client span of the same hop; on a
    /// client span issued *during* a dispatch it is the enclosing server
    /// span, which is how fan-out calls chain causally.
    pub parent_span: u64,
    /// Which side recorded the span.
    pub kind: SpanKind,
    /// The recording space.
    pub space: SpaceId,
    /// The space at the other end of the hop.
    pub peer: SpaceId,
    /// The object invoked.
    pub target: WireRep,
    /// Method index within the target's interface.
    pub method: u32,
    /// Human-readable method label (`"interface/method"`) when the typed
    /// stub layer knows it; empty for raw or collector calls.
    pub label: String,
    /// Start of the span, microseconds since the recording ring's epoch.
    pub start_micros: u64,
    /// Total observed duration of the span.
    pub duration_micros: u64,
    /// Server only: time the request waited in the worker queue.
    pub queue_wait_micros: u64,
    /// Server only: time spent inside the object's dispatcher.
    pub service_micros: u64,
    /// Bytes of pickled arguments sent (client) or received (server).
    pub marshal_bytes: u64,
    /// Bytes of pickled result received (client) or sent (server).
    pub unmarshal_bytes: u64,
    /// Client only: retry attempts beyond the first.
    pub retries: u32,
    /// Client only: true if the peer's circuit breaker was open or
    /// half-open when the call was issued.
    pub breaker_open: bool,
    /// How the call ended.
    pub outcome: SpanOutcome,
}

impl Pickle for SpanRecord {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_u64(self.seq);
        w.put_u64(self.trace_id);
        w.put_u64(self.span_id);
        w.put_u64(self.parent_span);
        self.kind.pickle(w);
        self.space.pickle(w);
        self.peer.pickle(w);
        self.target.pickle(w);
        self.method.pickle(w);
        self.label.pickle(w);
        w.put_u64(self.start_micros);
        w.put_u64(self.duration_micros);
        w.put_u64(self.queue_wait_micros);
        w.put_u64(self.service_micros);
        w.put_u64(self.marshal_bytes);
        w.put_u64(self.unmarshal_bytes);
        self.retries.pickle(w);
        self.breaker_open.pickle(w);
        self.outcome.pickle(w);
    }

    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        Ok(SpanRecord {
            seq: r.get_u64()?,
            trace_id: r.get_u64()?,
            span_id: r.get_u64()?,
            parent_span: r.get_u64()?,
            kind: SpanKind::unpickle(r)?,
            space: SpaceId::unpickle(r)?,
            peer: SpaceId::unpickle(r)?,
            target: WireRep::unpickle(r)?,
            method: u32::unpickle(r)?,
            label: String::unpickle(r)?,
            start_micros: r.get_u64()?,
            duration_micros: r.get_u64()?,
            queue_wait_micros: r.get_u64()?,
            service_micros: r.get_u64()?,
            marshal_bytes: r.get_u64()?,
            unmarshal_bytes: r.get_u64()?,
            retries: u32::unpickle(r)?,
            breaker_open: bool::unpickle(r)?,
            outcome: SpanOutcome::unpickle(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjIx;

    fn sample(kind: SpanKind, outcome: SpanOutcome) -> SpanRecord {
        SpanRecord {
            seq: 5,
            trace_id: 0xABCD,
            span_id: 17,
            parent_span: 3,
            kind,
            space: SpaceId::from_raw(1),
            peer: SpaceId::from_raw(2),
            target: WireRep::new(SpaceId::from_raw(2), ObjIx(4)),
            method: 1,
            label: "bench.Counter/add".to_string(),
            start_micros: 1_000,
            duration_micros: 250,
            queue_wait_micros: 40,
            service_micros: 200,
            marshal_bytes: 16,
            unmarshal_bytes: 9,
            retries: 2,
            breaker_open: true,
            outcome,
        }
    }

    #[test]
    fn spans_roundtrip() {
        for kind in [SpanKind::Client, SpanKind::Server] {
            for outcome in [
                SpanOutcome::Ok,
                SpanOutcome::AppError,
                SpanOutcome::Failed,
                SpanOutcome::Rejected,
            ] {
                let s = sample(kind, outcome);
                let bytes = s.to_pickle_bytes();
                assert_eq!(SpanRecord::from_pickle_bytes(&bytes).unwrap(), s);
            }
        }
    }

    #[test]
    fn bad_kind_and_outcome_rejected() {
        let mut w = PickleWriter::new();
        w.put_u64(7);
        assert!(SpanKind::from_pickle_bytes(w.as_bytes()).is_err());
        assert!(SpanOutcome::from_pickle_bytes(w.as_bytes()).is_err());
    }
}
