//! Identifiers for spaces and network objects.
//!
//! A *space* is the Network Objects term for a participating process (an
//! address space). Every space draws a [`SpaceId`] that is unique across the
//! distributed computation. An exported object is named by its [`WireRep`]:
//! the pair of its owner's `SpaceId` and the object's index ([`ObjIx`]) in
//! the owner's object table. A wireRep is what actually travels in messages
//! when a network object reference is marshaled.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::WireError;

/// Globally unique identifier of a space (a participating process).
///
/// The paper requires "a unique identifier for the owner process". We use a
/// 128-bit random value: collisions are negligible, and no coordination is
/// needed to allocate one. A small monotonic counter is mixed in so that two
/// spaces created in the same process during tests are distinguishable even
/// under a deterministic RNG seed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpaceId(u128);

static LOCAL_SEQ: AtomicU64 = AtomicU64::new(1);

impl SpaceId {
    /// Creates a fresh, globally unique space identifier.
    pub fn fresh() -> SpaceId {
        let hi: u64 = rand::random();
        let lo: u64 = rand::random::<u64>() ^ LOCAL_SEQ.fetch_add(1, Ordering::Relaxed);
        SpaceId(((hi as u128) << 64) | lo as u128)
    }

    /// Creates a space identifier from a raw value.
    ///
    /// Intended for tests and for deterministic simulations; production code
    /// should use [`SpaceId::fresh`].
    pub const fn from_raw(raw: u128) -> SpaceId {
        SpaceId(raw)
    }

    /// Returns the raw 128-bit value.
    pub const fn as_raw(self) -> u128 {
        self.0
    }

    /// Returns a short human-readable form used in logs (last 4 hex digits).
    pub fn short(self) -> String {
        format!("{:04x}", self.0 & 0xffff)
    }
}

impl fmt::Debug for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpaceId({:032x})", self.0)
    }
}

impl fmt::Display for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for SpaceId {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u128::from_str_radix(s, 16)
            .map(SpaceId)
            .map_err(|_| WireError::OutOfRange("space id must be 1..=32 hex digits"))
    }
}

/// Index of an object within its owner's object table.
///
/// Indices `0`, `1` and `2` are reserved in every space: `0` is the
/// collector service object (the target of dirty, clean and ping calls),
/// `1` is the agent (name service) if the space runs one, and `2` is the
/// introspection object exposing the space's stats, metrics and span ring.
/// User exports start at [`ObjIx::FIRST_USER`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjIx(pub u64);

impl ObjIx {
    /// The reserved index of the collector service object in every space.
    pub const GC_SERVICE: ObjIx = ObjIx(0);
    /// The reserved index of the agent (name service) object.
    pub const AGENT: ObjIx = ObjIx(1);
    /// The reserved index of the introspection (observability) object.
    pub const INTROSPECT: ObjIx = ObjIx(2);
    /// The first index handed out to user exports.
    pub const FIRST_USER: ObjIx = ObjIx(3);

    /// Returns true if this index names one of the per-space builtin objects.
    pub const fn is_reserved(self) -> bool {
        self.0 < Self::FIRST_USER.0
    }
}

impl fmt::Display for ObjIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The wire representation of a network object: owner space + object index.
///
/// "A network object is marshaled by transmitting its wireRep, which
/// consists of a unique identifier for the owner process, plus the index of
/// the object at the owner."
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WireRep {
    /// The owner's space identifier.
    pub space: SpaceId,
    /// The object's index in the owner's object table.
    pub ix: ObjIx,
}

impl WireRep {
    /// Builds a wireRep from its parts.
    pub const fn new(space: SpaceId, ix: ObjIx) -> WireRep {
        WireRep { space, ix }
    }

    /// The wireRep of a space's collector service object.
    pub const fn gc_service(space: SpaceId) -> WireRep {
        WireRep::new(space, ObjIx::GC_SERVICE)
    }

    /// The wireRep of a space's agent object.
    pub const fn agent(space: SpaceId) -> WireRep {
        WireRep::new(space, ObjIx::AGENT)
    }

    /// The wireRep of a space's introspection object.
    pub const fn introspect(space: SpaceId) -> WireRep {
        WireRep::new(space, ObjIx::INTROSPECT)
    }
}

impl fmt::Display for WireRep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.space.short(), self.ix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_space_ids_are_distinct() {
        let ids: HashSet<SpaceId> = (0..1000).map(|_| SpaceId::fresh()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn space_id_roundtrips_through_display() {
        let id = SpaceId::fresh();
        let parsed: SpaceId = id.to_string().parse().expect("parse");
        assert_eq!(id, parsed);
    }

    #[test]
    fn space_id_parse_rejects_garbage() {
        assert!("not-hex".parse::<SpaceId>().is_err());
        assert!("".parse::<SpaceId>().is_err());
    }

    #[test]
    fn reserved_indices() {
        assert!(ObjIx::GC_SERVICE.is_reserved());
        assert!(ObjIx::AGENT.is_reserved());
        assert!(ObjIx::INTROSPECT.is_reserved());
        assert!(!ObjIx::FIRST_USER.is_reserved());
        assert!(!ObjIx(100).is_reserved());
    }

    #[test]
    fn wirerep_equality_and_display() {
        let s = SpaceId::from_raw(0xabcd);
        let a = WireRep::new(s, ObjIx(7));
        let b = WireRep::new(s, ObjIx(7));
        let c = WireRep::new(s, ObjIx(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "abcd.7");
    }

    #[test]
    fn builtin_wirereps() {
        let s = SpaceId::from_raw(1);
        assert_eq!(WireRep::gc_service(s).ix, ObjIx::GC_SERVICE);
        assert_eq!(WireRep::agent(s).ix, ObjIx::AGENT);
        assert_eq!(WireRep::introspect(s).ix, ObjIx::INTROSPECT);
    }

    #[test]
    fn short_form_is_stable() {
        let s = SpaceId::from_raw(0x1234_5678);
        assert_eq!(s.short(), "5678");
    }
}
