//! Length-prefixed message framing.
//!
//! Every transport in this system carries discrete messages ("frames"), not
//! byte streams. Stream transports such as TCP use the helpers here to
//! delimit frames with a 4-byte little-endian length prefix. Datagram-like
//! transports (the in-process simulator) carry frames natively and only use
//! the size limit check.
//!
//! The decoder yields [`Bytes`] views of its internal buffer: a complete
//! frame is split off by refcount, not copied, so the payload handed to the
//! RPC layer is the same allocation the transport read into.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::WireError;
use crate::Result;

/// Default maximum frame size accepted by a decoder (16 MiB).
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Largest payload expressible in the 4-byte length prefix.
pub const MAX_WIRE_FRAME: usize = u32::MAX as usize;

/// Encodes one frame (length prefix + payload) onto `out`.
///
/// Fails with [`WireError::FrameTooLarge`] if the payload cannot be
/// represented in the prefix — truncating the length would desynchronise
/// the stream for every later frame.
pub fn encode_frame(out: &mut BytesMut, payload: &[u8]) -> Result<()> {
    let prefix = frame_prefix(payload.len())?;
    out.reserve(4 + payload.len());
    out.put_slice(&prefix);
    out.put_slice(payload);
    Ok(())
}

/// Encodes just the length prefix for a payload of `payload_len` bytes.
///
/// Stream transports use this to write prefix and payload as separate
/// (gathered) writes instead of assembling them into one buffer.
pub fn frame_prefix(payload_len: usize) -> Result<[u8; 4]> {
    if payload_len > MAX_WIRE_FRAME {
        return Err(WireError::FrameTooLarge {
            declared: payload_len,
            limit: MAX_WIRE_FRAME,
        });
    }
    Ok((payload_len as u32).to_le_bytes())
}

/// Returns the encoded size of a frame carrying `payload_len` bytes.
pub const fn frame_overhead() -> usize {
    4
}

/// Incremental frame decoder for stream transports.
///
/// Feed bytes in with [`FrameDecoder::extend`]; pull complete frames out
/// with [`FrameDecoder::next_frame`]. Partial frames are buffered until the
/// rest arrives.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: BytesMut,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new(DEFAULT_MAX_FRAME)
    }
}

impl FrameDecoder {
    /// Creates a decoder that rejects frames larger than `max_frame`.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: BytesMut::new(),
            max_frame,
        }
    }

    /// Appends newly received bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet yielded as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to extract the next complete frame.
    ///
    /// Returns `Ok(None)` if more bytes are needed, `Ok(Some(payload))` for
    /// a complete frame, or an error if the declared length exceeds the
    /// maximum (the connection should then be dropped). The payload shares
    /// the decoder's buffer — no copy.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&self.buf[..4]);
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > self.max_frame {
            return Err(WireError::FrameTooLarge {
                declared: len,
                limit: self.max_frame,
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to_bytes(len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_then_decode_one_frame() {
        let mut out = BytesMut::new();
        encode_frame(&mut out, b"hello").unwrap();
        let mut d = FrameDecoder::default();
        d.extend(&out);
        assert_eq!(&d.next_frame().unwrap().unwrap()[..], b"hello");
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn decode_across_partial_feeds() {
        let mut out = BytesMut::new();
        encode_frame(&mut out, b"abcdef").unwrap();
        let bytes = out.to_vec();
        let mut d = FrameDecoder::default();
        for b in &bytes {
            assert!(matches!(d.next_frame(), Ok(None) | Ok(Some(_))));
            d.extend(std::slice::from_ref(b));
        }
        assert_eq!(&d.next_frame().unwrap().unwrap()[..], b"abcdef");
    }

    #[test]
    fn multiple_frames_in_one_feed() {
        let mut out = BytesMut::new();
        encode_frame(&mut out, b"one").unwrap();
        encode_frame(&mut out, b"").unwrap();
        encode_frame(&mut out, b"three").unwrap();
        let mut d = FrameDecoder::default();
        d.extend(&out);
        assert_eq!(&d.next_frame().unwrap().unwrap()[..], b"one");
        assert_eq!(&d.next_frame().unwrap().unwrap()[..], b"");
        assert_eq!(&d.next_frame().unwrap().unwrap()[..], b"three");
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut d = FrameDecoder::new(8);
        let mut out = BytesMut::new();
        encode_frame(&mut out, &[0u8; 64]).unwrap();
        d.extend(&out);
        assert!(matches!(
            d.next_frame(),
            Err(WireError::FrameTooLarge {
                declared: 64,
                limit: 8
            })
        ));
    }

    #[test]
    fn empty_frame_roundtrip() {
        let mut out = BytesMut::new();
        encode_frame(&mut out, b"").unwrap();
        assert_eq!(out.len(), frame_overhead());
        let mut d = FrameDecoder::default();
        d.extend(&out);
        assert_eq!(d.next_frame().unwrap().unwrap().len(), 0);
    }

    #[test]
    fn yielded_frames_survive_later_feeds() {
        // The zero-copy split must not let later buffer writes clobber a
        // frame already handed out.
        let mut out = BytesMut::new();
        encode_frame(&mut out, b"first").unwrap();
        let mut d = FrameDecoder::default();
        d.extend(&out);
        let first = d.next_frame().unwrap().unwrap();
        let mut out2 = BytesMut::new();
        encode_frame(&mut out2, b"second-longer-frame").unwrap();
        d.extend(&out2);
        let second = d.next_frame().unwrap().unwrap();
        assert_eq!(&first[..], b"first");
        assert_eq!(&second[..], b"second-longer-frame");
    }

    // The length prefix is 32-bit: a payload longer than u32::MAX must be
    // refused, not silently truncated. Allocating 4 GiB in a unit test is
    // not realistic, so this exercises the prefix helper directly.
    #[test]
    fn oversize_payload_refused_at_encode() {
        assert!(frame_prefix(MAX_WIRE_FRAME).is_ok());
        assert!(matches!(
            frame_prefix(MAX_WIRE_FRAME + 1),
            Err(WireError::FrameTooLarge { .. })
        ));
    }
}
