//! Error type for wire-level encoding and decoding.

use std::fmt;

/// An error raised while encoding or decoding wire data.
///
/// Decoding is fully defensive: malformed input from the network must never
/// panic, so every decoder returns `Result<_, WireError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a complete value was read.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A tag byte did not denote the expected kind of value.
    BadTag {
        /// The tag found in the input.
        found: u8,
        /// A human-readable description of what was expected.
        expected: &'static str,
    },
    /// A varint ran over its maximum permitted width.
    VarintOverflow,
    /// A text value was not valid UTF-8.
    InvalidUtf8,
    /// A declared length exceeded the decoder's sanity limit.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// The maximum the decoder accepts.
        limit: u64,
    },
    /// Bytes remained after a top-level decode that should consume all input.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A frame was larger than the configured maximum.
    FrameTooLarge {
        /// Size declared by the frame header.
        declared: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// A value was structurally valid but semantically out of range.
    OutOfRange(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} more byte(s), {remaining} remaining"
            ),
            WireError::BadTag { found, expected } => {
                write!(f, "bad tag {found:#04x}: expected {expected}")
            }
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::InvalidUtf8 => write!(f, "text value is not valid UTF-8"),
            WireError::LengthOverflow { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after complete value")
            }
            WireError::FrameTooLarge { declared, limit } => {
                write!(f, "frame of {declared} bytes exceeds limit of {limit}")
            }
            WireError::OutOfRange(what) => write!(f, "value out of range: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::UnexpectedEof {
            needed: 4,
            remaining: 1,
        };
        let s = e.to_string();
        assert!(s.contains("needed 4"));
        assert!(s.contains("1 remaining"));

        let e = WireError::BadTag {
            found: 0x2a,
            expected: "text",
        };
        assert!(e.to_string().contains("0x2a"));

        let e = WireError::LengthOverflow {
            declared: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(WireError::VarintOverflow, WireError::VarintOverflow);
        assert_ne!(
            WireError::VarintOverflow,
            WireError::TrailingBytes { count: 1 }
        );
    }
}
