//! The *pickle* marshaling format.
//!
//! Network Objects marshals method arguments and results as *pickles*: a
//! compact, self-describing binary encoding. This module provides:
//!
//! - [`PickleWriter`] / [`PickleReader`]: streaming encoder and decoder.
//! - [`Pickle`]: a trait implemented by every marshalable type.
//! - [`Value`]: a dynamically typed pickle value, useful for generic tools
//!   and for property-testing the format.
//!
//! # Encoding
//!
//! Every value starts with a one-byte tag followed by a tag-specific body.
//! Integers use LEB128 varints (zigzag for signed), lengths use unsigned
//! varints, and floats are 8-byte little-endian IEEE-754. Network object
//! references travel as their [`WireRep`] under a dedicated tag so that the
//! runtime can locate embedded references while unmarshaling (this is how
//! surrogates get created and dirty calls get issued).
//!
//! The format is byte-order independent and has no alignment requirements.
//! Decoders are fully defensive: any byte sequence either decodes or fails
//! with a [`WireError`]; malformed input never panics.

use std::collections::BTreeMap;

use crate::error::WireError;
use crate::ids::{ObjIx, SpaceId, WireRep};
use crate::typecode::{TypeCode, TypeList};
use crate::Result;

/// Tags identifying each pickled value kind.
///
/// Kept in a module rather than an enum so that readers can match on raw
/// bytes without a fallible conversion step in the hot path.
pub mod tag {
    /// The unit value.
    pub const UNIT: u8 = 0x00;
    /// Boolean false.
    pub const FALSE: u8 = 0x01;
    /// Boolean true.
    pub const TRUE: u8 = 0x02;
    /// Signed integer (zigzag varint).
    pub const INT: u8 = 0x03;
    /// Unsigned integer (varint).
    pub const UINT: u8 = 0x04;
    /// 64-bit float, little-endian.
    pub const FLOAT: u8 = 0x05;
    /// UTF-8 text: varint length + bytes.
    pub const TEXT: u8 = 0x06;
    /// Raw bytes: varint length + bytes.
    pub const BYTES: u8 = 0x07;
    /// Sequence: varint count + that many values.
    pub const SEQ: u8 = 0x08;
    /// Map: varint count + that many (key, value) pairs.
    pub const MAP: u8 = 0x09;
    /// Option: `NONE` stands alone.
    pub const NONE: u8 = 0x0a;
    /// Option: `SOME` followed by the contained value.
    pub const SOME: u8 = 0x0b;
    /// A network object reference: 16-byte space id + varint object index.
    pub const WIREREP: u8 = 0x0c;
    /// A type fingerprint: 8 bytes.
    pub const TYPECODE: u8 = 0x0d;
    /// A record: varint field count + fields in declaration order.
    pub const RECORD: u8 = 0x0e;
    /// An enum variant: varint discriminant + payload value.
    pub const VARIANT: u8 = 0x0f;
}

/// Default sanity limit on declared lengths (64 MiB).
///
/// Real deployments negotiate message limits at the transport layer; this
/// guard only prevents a hostile length prefix from provoking a huge
/// allocation during decoding.
pub const MAX_DECODE_LEN: u64 = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming pickle encoder.
///
/// A writer owns a byte buffer; [`PickleWriter::into_bytes`] yields the
/// finished pickle. Writers are cheap to create and may be reused via
/// [`PickleWriter::clear`] to amortise allocation in hot paths.
#[derive(Debug, Default)]
pub struct PickleWriter {
    buf: Vec<u8>,
}

impl PickleWriter {
    /// Creates an empty writer.
    pub fn new() -> PickleWriter {
        PickleWriter::default()
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> PickleWriter {
        PickleWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Creates a writer over a recycled buffer, clearing its contents but
    /// keeping the allocation — pairs with [`bytes::Bytes::try_reclaim`]
    /// to reuse a send buffer once the transport has released it.
    pub fn from_vec(mut buf: Vec<u8>) -> PickleWriter {
        buf.clear();
        PickleWriter { buf }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Returns the bytes encoded so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Clears the buffer for reuse, keeping its allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    // -- raw primitives ----------------------------------------------------

    /// Appends a raw byte.
    pub fn put_raw_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends raw bytes verbatim.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends an unsigned LEB128 varint.
    pub fn put_varu64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a signed integer using zigzag + LEB128.
    pub fn put_vari64(&mut self, v: i64) {
        self.put_varu64(zigzag_encode(v));
    }

    // -- tagged values -----------------------------------------------------

    /// Writes the unit value.
    pub fn put_unit(&mut self) {
        self.put_raw_u8(tag::UNIT);
    }

    /// Writes a boolean.
    pub fn put_bool(&mut self, v: bool) {
        self.put_raw_u8(if v { tag::TRUE } else { tag::FALSE });
    }

    /// Writes a signed integer.
    pub fn put_i64(&mut self, v: i64) {
        self.put_raw_u8(tag::INT);
        self.put_vari64(v);
    }

    /// Writes an unsigned integer.
    pub fn put_u64(&mut self, v: u64) {
        self.put_raw_u8(tag::UINT);
        self.put_varu64(v);
    }

    /// Writes a 64-bit float.
    pub fn put_f64(&mut self, v: f64) {
        self.put_raw_u8(tag::FLOAT);
        self.put_raw(&v.to_le_bytes());
    }

    /// Writes a text value.
    pub fn put_text(&mut self, v: &str) {
        self.put_raw_u8(tag::TEXT);
        self.put_varu64(v.len() as u64);
        self.put_raw(v.as_bytes());
    }

    /// Writes a raw byte-string value.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_raw_u8(tag::BYTES);
        self.put_varu64(v.len() as u64);
        self.put_raw(v);
    }

    /// Writes a sequence header; the caller then writes `count` values.
    pub fn begin_seq(&mut self, count: usize) {
        self.put_raw_u8(tag::SEQ);
        self.put_varu64(count as u64);
    }

    /// Writes a map header; the caller then writes `count` key/value pairs.
    pub fn begin_map(&mut self, count: usize) {
        self.put_raw_u8(tag::MAP);
        self.put_varu64(count as u64);
    }

    /// Writes a record header; the caller then writes `fields` values.
    pub fn begin_record(&mut self, fields: usize) {
        self.put_raw_u8(tag::RECORD);
        self.put_varu64(fields as u64);
    }

    /// Writes an enum-variant header; the caller then writes the payload.
    pub fn begin_variant(&mut self, discriminant: u64) {
        self.put_raw_u8(tag::VARIANT);
        self.put_varu64(discriminant);
    }

    /// Writes `None`.
    pub fn put_none(&mut self) {
        self.put_raw_u8(tag::NONE);
    }

    /// Writes the `Some` tag; the caller then writes the contained value.
    pub fn begin_some(&mut self) {
        self.put_raw_u8(tag::SOME);
    }

    /// Writes a network object reference.
    pub fn put_wirerep(&mut self, w: WireRep) {
        self.put_raw_u8(tag::WIREREP);
        self.put_raw(&w.space.as_raw().to_le_bytes());
        self.put_varu64(w.ix.0);
    }

    /// Writes a type fingerprint.
    pub fn put_typecode(&mut self, t: TypeCode) {
        self.put_raw_u8(tag::TYPECODE);
        self.put_raw(&t.as_raw().to_le_bytes());
    }
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Streaming pickle decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct PickleReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PickleReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> PickleReader<'a> {
        PickleReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns an error if any input remains.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    // -- raw primitives ----------------------------------------------------

    /// Reads one raw byte.
    pub fn get_raw_u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or(WireError::UnexpectedEof {
            needed: 1,
            remaining: 0,
        })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Peeks at the next tag byte without consuming it.
    pub fn peek_tag(&self) -> Result<u8> {
        self.buf
            .get(self.pos)
            .copied()
            .ok_or(WireError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            })
    }

    /// Reads an unsigned LEB128 varint.
    pub fn get_varu64(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_raw_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads a signed zigzag varint.
    pub fn get_vari64(&mut self) -> Result<i64> {
        Ok(zigzag_decode(self.get_varu64()?))
    }

    fn get_len(&mut self) -> Result<usize> {
        let n = self.get_varu64()?;
        if n > MAX_DECODE_LEN {
            return Err(WireError::LengthOverflow {
                declared: n,
                limit: MAX_DECODE_LEN,
            });
        }
        Ok(n as usize)
    }

    fn expect_tag(&mut self, want: u8, what: &'static str) -> Result<()> {
        let t = self.get_raw_u8()?;
        if t == want {
            Ok(())
        } else {
            Err(WireError::BadTag {
                found: t,
                expected: what,
            })
        }
    }

    // -- tagged values -----------------------------------------------------

    /// Reads the unit value.
    pub fn get_unit(&mut self) -> Result<()> {
        self.expect_tag(tag::UNIT, "unit")
    }

    /// Reads a boolean.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_raw_u8()? {
            tag::FALSE => Ok(false),
            tag::TRUE => Ok(true),
            t => Err(WireError::BadTag {
                found: t,
                expected: "bool",
            }),
        }
    }

    /// Reads a signed integer.
    pub fn get_i64(&mut self) -> Result<i64> {
        match self.get_raw_u8()? {
            tag::INT => self.get_vari64(),
            // Allow a non-negative UINT where an INT is expected; writers for
            // unsigned Rust types use UINT and readers for `i64` may see it.
            tag::UINT => {
                let v = self.get_varu64()?;
                i64::try_from(v).map_err(|_| WireError::OutOfRange("uint does not fit in i64"))
            }
            t => Err(WireError::BadTag {
                found: t,
                expected: "int",
            }),
        }
    }

    /// Reads an unsigned integer.
    pub fn get_u64(&mut self) -> Result<u64> {
        match self.get_raw_u8()? {
            tag::UINT => self.get_varu64(),
            tag::INT => {
                let v = self.get_vari64()?;
                u64::try_from(v)
                    .map_err(|_| WireError::OutOfRange("negative int where uint expected"))
            }
            t => Err(WireError::BadTag {
                found: t,
                expected: "uint",
            }),
        }
    }

    /// Reads a 64-bit float.
    pub fn get_f64(&mut self) -> Result<f64> {
        self.expect_tag(tag::FLOAT, "float")?;
        let raw = self.get_raw(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(f64::from_le_bytes(b))
    }

    /// Reads a text value.
    pub fn get_text(&mut self) -> Result<&'a str> {
        self.expect_tag(tag::TEXT, "text")?;
        let n = self.get_len()?;
        let raw = self.get_raw(n)?;
        std::str::from_utf8(raw).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a byte-string value.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        self.expect_tag(tag::BYTES, "bytes")?;
        let n = self.get_len()?;
        self.get_raw(n)
    }

    /// Reads a byte-string value as a shared slice of `src` — the reader's
    /// `Bytes` mode. `src` must be the same buffer this reader decodes
    /// (typically the received frame); the returned [`bytes::Bytes`] shares
    /// its storage, so large payloads cross the decode boundary without a
    /// copy.
    pub fn get_bytes_shared(&mut self, src: &bytes::Bytes) -> Result<bytes::Bytes> {
        let raw = self.get_bytes()?;
        Ok(src.slice_ref(raw))
    }

    /// Reads a sequence header, returning the element count.
    pub fn begin_seq(&mut self) -> Result<usize> {
        self.expect_tag(tag::SEQ, "seq")?;
        self.get_len()
    }

    /// Reads a map header, returning the entry count.
    pub fn begin_map(&mut self) -> Result<usize> {
        self.expect_tag(tag::MAP, "map")?;
        self.get_len()
    }

    /// Reads a record header, returning the field count.
    pub fn begin_record(&mut self) -> Result<usize> {
        self.expect_tag(tag::RECORD, "record")?;
        self.get_len()
    }

    /// Reads a record header and checks the field count.
    pub fn expect_record(&mut self, fields: usize) -> Result<()> {
        let n = self.begin_record()?;
        if n == fields {
            Ok(())
        } else {
            Err(WireError::OutOfRange("record field count mismatch"))
        }
    }

    /// Reads an enum-variant header, returning the discriminant.
    pub fn begin_variant(&mut self) -> Result<u64> {
        self.expect_tag(tag::VARIANT, "variant")?;
        self.get_varu64()
    }

    /// Reads an option header: `Ok(true)` for `Some`, `Ok(false)` for `None`.
    pub fn begin_option(&mut self) -> Result<bool> {
        match self.get_raw_u8()? {
            tag::NONE => Ok(false),
            tag::SOME => Ok(true),
            t => Err(WireError::BadTag {
                found: t,
                expected: "option",
            }),
        }
    }

    /// Reads a network object reference.
    pub fn get_wirerep(&mut self) -> Result<WireRep> {
        self.expect_tag(tag::WIREREP, "wirerep")?;
        let raw = self.get_raw(16)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(raw);
        let space = SpaceId::from_raw(u128::from_le_bytes(b));
        let ix = ObjIx(self.get_varu64()?);
        Ok(WireRep { space, ix })
    }

    /// Reads a type fingerprint.
    pub fn get_typecode(&mut self) -> Result<TypeCode> {
        self.expect_tag(tag::TYPECODE, "typecode")?;
        let raw = self.get_raw(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(TypeCode::from_raw(u64::from_le_bytes(b)))
    }
}

// ---------------------------------------------------------------------------
// The Pickle trait
// ---------------------------------------------------------------------------

/// A type that can be marshaled to and from the pickle format.
///
/// All method arguments and results of network object methods must implement
/// `Pickle`. Implementations must be *total* on the decode side: any byte
/// input either decodes or returns an error.
pub trait Pickle: Sized {
    /// Encodes `self` onto the writer.
    fn pickle(&self, w: &mut PickleWriter);

    /// Decodes a value from the reader.
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self>;

    /// Convenience: encodes `self` into a fresh byte vector.
    fn to_pickle_bytes(&self) -> Vec<u8> {
        let mut w = PickleWriter::new();
        self.pickle(&mut w);
        w.into_bytes()
    }

    /// Convenience: decodes a value that must consume the whole input.
    fn from_pickle_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = PickleReader::new(bytes);
        let v = Self::unpickle(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

impl Pickle for () {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_unit();
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        r.get_unit()
    }
}

impl Pickle for bool {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_bool(*self);
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        r.get_bool()
    }
}

macro_rules! impl_pickle_signed {
    ($($t:ty),*) => {$(
        impl Pickle for $t {
            fn pickle(&self, w: &mut PickleWriter) {
                w.put_i64(*self as i64);
            }
            fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
                let v = r.get_i64()?;
                <$t>::try_from(v).map_err(|_| WireError::OutOfRange(stringify!($t)))
            }
        }
    )*};
}

macro_rules! impl_pickle_unsigned {
    ($($t:ty),*) => {$(
        impl Pickle for $t {
            fn pickle(&self, w: &mut PickleWriter) {
                w.put_u64(*self as u64);
            }
            fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
                let v = r.get_u64()?;
                <$t>::try_from(v).map_err(|_| WireError::OutOfRange(stringify!($t)))
            }
        }
    )*};
}

impl_pickle_signed!(i8, i16, i32, i64, isize);
impl_pickle_unsigned!(u8, u16, u32, u64, usize);

impl Pickle for f64 {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_f64(*self);
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        r.get_f64()
    }
}

impl Pickle for f32 {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_f64(f64::from(*self));
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        Ok(r.get_f64()? as f32)
    }
}

impl Pickle for String {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_text(self);
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        Ok(r.get_text()?.to_owned())
    }
}

impl Pickle for char {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_u64(u64::from(u32::from(*self)));
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        let v = r.get_u64()?;
        u32::try_from(v)
            .ok()
            .and_then(char::from_u32)
            .ok_or(WireError::OutOfRange("char"))
    }
}

impl<T: Pickle> Pickle for Option<T> {
    fn pickle(&self, w: &mut PickleWriter) {
        match self {
            None => w.put_none(),
            Some(v) => {
                w.begin_some();
                v.pickle(w);
            }
        }
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        if r.begin_option()? {
            Ok(Some(T::unpickle(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Pickle> Pickle for Vec<T> {
    fn pickle(&self, w: &mut PickleWriter) {
        w.begin_seq(self.len());
        for v in self {
            v.pickle(w);
        }
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        let n = r.begin_seq()?;
        // Guard against a hostile count: cap the pre-allocation, let the
        // decode loop fail naturally on EOF instead.
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::unpickle(r)?);
        }
        Ok(out)
    }
}

impl<K: Pickle + Ord, V: Pickle> Pickle for BTreeMap<K, V> {
    fn pickle(&self, w: &mut PickleWriter) {
        w.begin_map(self.len());
        for (k, v) in self {
            k.pickle(w);
            v.pickle(w);
        }
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        let n = r.begin_map()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::unpickle(r)?;
            let v = V::unpickle(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! impl_pickle_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Pickle),+> Pickle for ($($name,)+) {
            fn pickle(&self, w: &mut PickleWriter) {
                $(self.$idx.pickle(w);)+
            }
            fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
                Ok(($($name::unpickle(r)?,)+))
            }
        }
    };
}

impl_pickle_tuple!(A: 0);
impl_pickle_tuple!(A: 0, B: 1);
impl_pickle_tuple!(A: 0, B: 1, C: 2);
impl_pickle_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_pickle_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_pickle_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A byte string that pickles under the compact `BYTES` tag.
///
/// `Vec<u8>` uses the generic sequence encoding (one tag per element) for
/// uniformity; bulk payloads should use `Blob`, which encodes as a single
/// length-prefixed byte run — the representation the paper's data-transfer
/// measurements assume.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Blob(pub Vec<u8>);

impl Pickle for Blob {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_bytes(&self.0);
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        Ok(Blob(r.get_bytes()?.to_vec()))
    }
}

impl From<Vec<u8>> for Blob {
    fn from(v: Vec<u8>) -> Blob {
        Blob(v)
    }
}

impl Pickle for WireRep {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_wirerep(*self);
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        r.get_wirerep()
    }
}

impl Pickle for SpaceId {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_bytes(&self.as_raw().to_le_bytes());
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        let raw = r.get_bytes()?;
        if raw.len() != 16 {
            return Err(WireError::OutOfRange("space id must be 16 bytes"));
        }
        let mut b = [0u8; 16];
        b.copy_from_slice(raw);
        Ok(SpaceId::from_raw(u128::from_le_bytes(b)))
    }
}

impl Pickle for TypeCode {
    fn pickle(&self, w: &mut PickleWriter) {
        w.put_typecode(*self);
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        r.get_typecode()
    }
}

impl Pickle for TypeList {
    fn pickle(&self, w: &mut PickleWriter) {
        w.begin_seq(self.codes().len());
        for c in self.codes() {
            w.put_typecode(*c);
        }
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        let n = r.begin_seq()?;
        let mut codes = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            codes.push(r.get_typecode()?);
        }
        Ok(TypeList::from_codes(codes))
    }
}

// ---------------------------------------------------------------------------
// Dynamic values
// ---------------------------------------------------------------------------

/// A dynamically typed pickle value.
///
/// `Value` can represent anything the format can encode; it is the basis for
/// generic tooling (tracing, fuzzing, property tests) and for the runtime's
/// reference scanner, which must find every [`WireRep`] embedded in an
/// argument pickle regardless of the static types involved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// A raw byte string.
    Bytes(Vec<u8>),
    /// A sequence of values.
    Seq(Vec<Value>),
    /// An ordered map of values.
    Map(Vec<(Value, Value)>),
    /// An optional value.
    Opt(Option<Box<Value>>),
    /// A network object reference.
    Ref(WireRep),
    /// A type fingerprint.
    Type(TypeCode),
    /// A record of fields.
    Record(Vec<Value>),
    /// An enum variant with a payload.
    Variant(u64, Box<Value>),
}

impl Value {
    /// Collects every [`WireRep`] embedded anywhere in this value.
    ///
    /// The runtime uses this to find the network object references inside an
    /// argument pickle so that surrogates can be created and dirty calls
    /// issued before the call proceeds.
    pub fn collect_refs(&self, out: &mut Vec<WireRep>) {
        match self {
            Value::Ref(w) => out.push(*w),
            Value::Seq(vs) | Value::Record(vs) => {
                for v in vs {
                    v.collect_refs(out);
                }
            }
            Value::Map(kvs) => {
                for (k, v) in kvs {
                    k.collect_refs(out);
                    v.collect_refs(out);
                }
            }
            Value::Opt(Some(v)) => v.collect_refs(out),
            Value::Variant(_, v) => v.collect_refs(out),
            _ => {}
        }
    }

    /// Decodes a single `Value` without requiring end-of-input.
    pub fn decode(r: &mut PickleReader<'_>) -> Result<Value> {
        Self::decode_depth(r, 0)
    }

    /// Maximum nesting depth accepted when decoding dynamic values.
    pub const MAX_DEPTH: usize = 128;

    fn decode_depth(r: &mut PickleReader<'_>, depth: usize) -> Result<Value> {
        if depth > Self::MAX_DEPTH {
            return Err(WireError::OutOfRange("value nesting too deep"));
        }
        let t = r.peek_tag()?;
        Ok(match t {
            tag::UNIT => {
                r.get_unit()?;
                Value::Unit
            }
            tag::FALSE | tag::TRUE => Value::Bool(r.get_bool()?),
            tag::INT => Value::Int(r.get_i64()?),
            tag::UINT => Value::UInt(r.get_u64()?),
            tag::FLOAT => Value::Float(r.get_f64()?),
            tag::TEXT => Value::Text(r.get_text()?.to_owned()),
            tag::BYTES => Value::Bytes(r.get_bytes()?.to_vec()),
            tag::SEQ => {
                let n = r.begin_seq()?;
                let mut vs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    vs.push(Self::decode_depth(r, depth + 1)?);
                }
                Value::Seq(vs)
            }
            tag::RECORD => {
                let n = r.begin_record()?;
                let mut vs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    vs.push(Self::decode_depth(r, depth + 1)?);
                }
                Value::Record(vs)
            }
            tag::MAP => {
                let n = r.begin_map()?;
                let mut kvs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let k = Self::decode_depth(r, depth + 1)?;
                    let v = Self::decode_depth(r, depth + 1)?;
                    kvs.push((k, v));
                }
                Value::Map(kvs)
            }
            tag::NONE | tag::SOME => {
                if r.begin_option()? {
                    Value::Opt(Some(Box::new(Self::decode_depth(r, depth + 1)?)))
                } else {
                    Value::Opt(None)
                }
            }
            tag::WIREREP => Value::Ref(r.get_wirerep()?),
            tag::TYPECODE => Value::Type(r.get_typecode()?),
            tag::VARIANT => {
                let d = r.begin_variant()?;
                Value::Variant(d, Box::new(Self::decode_depth(r, depth + 1)?))
            }
            other => {
                return Err(WireError::BadTag {
                    found: other,
                    expected: "any value",
                })
            }
        })
    }

    /// Encodes this value onto a writer.
    pub fn encode(&self, w: &mut PickleWriter) {
        match self {
            Value::Unit => w.put_unit(),
            Value::Bool(v) => w.put_bool(*v),
            Value::Int(v) => w.put_i64(*v),
            Value::UInt(v) => w.put_u64(*v),
            Value::Float(v) => w.put_f64(*v),
            Value::Text(v) => w.put_text(v),
            Value::Bytes(v) => w.put_bytes(v),
            Value::Seq(vs) => {
                w.begin_seq(vs.len());
                for v in vs {
                    v.encode(w);
                }
            }
            Value::Record(vs) => {
                w.begin_record(vs.len());
                for v in vs {
                    v.encode(w);
                }
            }
            Value::Map(kvs) => {
                w.begin_map(kvs.len());
                for (k, v) in kvs {
                    k.encode(w);
                    v.encode(w);
                }
            }
            Value::Opt(None) => w.put_none(),
            Value::Opt(Some(v)) => {
                w.begin_some();
                v.encode(w);
            }
            Value::Ref(r) => w.put_wirerep(*r),
            Value::Type(t) => w.put_typecode(*t),
            Value::Variant(d, v) => {
                w.begin_variant(*d);
                v.encode(w);
            }
        }
    }
}

impl Pickle for Value {
    fn pickle(&self, w: &mut PickleWriter) {
        self.encode(w);
    }
    fn unpickle(r: &mut PickleReader<'_>) -> Result<Self> {
        Value::decode(r)
    }
}

/// Scans a pickle byte buffer and returns every embedded [`WireRep`].
///
/// This is the hook used by the runtime's marshaling layer: before a message
/// carrying arguments leaves a space, the references inside it must be
/// protected by transient dirty entries, and upon receipt each one must be
/// bound to a local surrogate or concrete object.
pub fn scan_refs(bytes: &[u8]) -> Result<Vec<WireRep>> {
    let mut r = PickleReader::new(bytes);
    let mut out = Vec::new();
    while r.remaining() > 0 {
        let v = Value::decode(&mut r)?;
        v.collect_refs(&mut out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Pickle + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_pickle_bytes();
        let back = T::from_pickle_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(());
        roundtrip(true);
        roundtrip(false);
        roundtrip(0i64);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(u64::MAX);
        roundtrip(42u8);
        roundtrip(-42i8);
        roundtrip(3.5f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip('x');
        roundtrip('\u{1F600}');
        roundtrip(String::from("hello, pickles"));
        roundtrip(String::new());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(Some(7i32));
        roundtrip(Option::<i32>::None);
        roundtrip((1u8, String::from("two"), 3.0f64));
        let mut m = BTreeMap::new();
        m.insert(String::from("a"), 1u64);
        m.insert(String::from("b"), 2u64);
        roundtrip(m);
        roundtrip(vec![vec![vec![1i16]]]);
    }

    #[test]
    fn wirerep_roundtrip() {
        let w = WireRep::new(SpaceId::from_raw(0xdead_beef_cafe), ObjIx(17));
        roundtrip(w);
    }

    #[test]
    fn zigzag_is_correct() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, 1 << 40, -(1 << 40)] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn varint_edge_widths() {
        let mut w = PickleWriter::new();
        w.put_varu64(u64::MAX);
        assert_eq!(w.len(), 10);
        let mut r = PickleReader::new(w.as_bytes());
        assert_eq!(r.get_varu64().unwrap(), u64::MAX);

        let mut w = PickleWriter::new();
        w.put_varu64(127);
        assert_eq!(w.len(), 1);
        let mut w2 = PickleWriter::new();
        w2.put_varu64(128);
        assert_eq!(w2.len(), 2);
    }

    #[test]
    fn varint_overflow_is_detected() {
        // Eleven continuation bytes cannot be a valid u64 varint.
        let bytes = [0xffu8; 11];
        let mut r = PickleReader::new(&bytes);
        assert_eq!(r.get_varu64(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn truncated_input_errors() {
        let v = String::from("hello");
        let bytes = v.to_pickle_bytes();
        for cut in 0..bytes.len() {
            let r = String::from_pickle_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u32.to_pickle_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_pickle_bytes(&bytes),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn wrong_tag_rejected() {
        let bytes = true.to_pickle_bytes();
        assert!(matches!(
            String::from_pickle_bytes(&bytes),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn narrowing_out_of_range() {
        let bytes = 300u64.to_pickle_bytes();
        assert!(matches!(
            u8::from_pickle_bytes(&bytes),
            Err(WireError::OutOfRange(_))
        ));
        let bytes = (-5i64).to_pickle_bytes();
        assert!(u64::from_pickle_bytes(&bytes).is_err());
    }

    #[test]
    fn cross_width_int_compat() {
        // A u32 pickles as UINT; reading it as i64 must work.
        let bytes = 7u32.to_pickle_bytes();
        assert_eq!(i64::from_pickle_bytes(&bytes).unwrap(), 7);
        // An i32 pickles as INT; reading it as u64 must work when
        // non-negative.
        let bytes = 7i32.to_pickle_bytes();
        assert_eq!(u64::from_pickle_bytes(&bytes).unwrap(), 7);
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut w = PickleWriter::new();
        w.put_raw_u8(tag::BYTES);
        w.put_varu64(u64::MAX / 2);
        let got = Blob::from_pickle_bytes(w.as_bytes());
        assert!(matches!(got, Err(WireError::LengthOverflow { .. })));
    }

    #[test]
    fn hostile_seq_count_does_not_overallocate() {
        // Declares 1M elements but provides none: must fail with EOF, not
        // allocate gigabytes.
        let mut w = PickleWriter::new();
        w.begin_seq(1_000_000);
        let got = Vec::<u64>::from_pickle_bytes(w.as_bytes());
        assert!(matches!(got, Err(WireError::UnexpectedEof { .. })));
    }

    #[test]
    fn value_roundtrip_and_ref_scan() {
        let w1 = WireRep::new(SpaceId::from_raw(1), ObjIx(2));
        let w2 = WireRep::new(SpaceId::from_raw(3), ObjIx(4));
        let v = Value::Record(vec![
            Value::Text("x".into()),
            Value::Seq(vec![Value::Ref(w1), Value::Int(-9)]),
            Value::Map(vec![(Value::UInt(1), Value::Ref(w2))]),
            Value::Opt(Some(Box::new(Value::Variant(3, Box::new(Value::Ref(w1)))))),
        ]);
        let bytes = v.to_pickle_bytes();
        let back = Value::from_pickle_bytes(&bytes).unwrap();
        assert_eq!(v, back);
        let refs = scan_refs(&bytes).unwrap();
        assert_eq!(refs, vec![w1, w2, w1]);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut bytes = vec![tag::SOME; Value::MAX_DEPTH + 10];
        bytes.push(tag::UNIT);
        let got = Value::from_pickle_bytes(&bytes);
        assert!(got.is_err());
    }

    #[test]
    fn pathological_container_nesting_errors_without_overflow() {
        // 10 000 nested container headers — far past MAX_DEPTH, and far
        // past what a recursive decoder without a depth check survives.
        // Each level is a header (tag + varint count 1) announcing a
        // single child; the innermost payload never arrives.
        const DEEP: usize = 10_000;
        for t in [tag::SEQ, tag::RECORD] {
            let mut bytes = Vec::with_capacity(2 * DEEP + 1);
            for _ in 0..DEEP {
                bytes.push(t);
                bytes.push(1); // varint count: one element
            }
            bytes.push(tag::UNIT);
            assert_eq!(
                Value::from_pickle_bytes(&bytes),
                Err(WireError::OutOfRange("value nesting too deep")),
                "tag {t:#04x} must hit the depth limit"
            );
            // The runtime's receive path scans every argument pickle for
            // references before dispatch; it must be bounded too.
            assert!(scan_refs(&bytes).is_err());
        }
        // Maps nest through both keys and values; nest through the key.
        let mut bytes = Vec::with_capacity(2 * DEEP + 3);
        for _ in 0..DEEP {
            bytes.push(tag::MAP);
            bytes.push(1); // one key/value pair
        }
        bytes.push(tag::UNIT); // innermost key
        bytes.push(tag::UNIT); // innermost value
        assert_eq!(
            Value::from_pickle_bytes(&bytes),
            Err(WireError::OutOfRange("value nesting too deep"))
        );
        assert!(scan_refs(&bytes).is_err());
    }

    #[test]
    fn nesting_at_the_depth_limit_still_decodes() {
        // MAX_DEPTH itself is legal — only one past it errors.
        let mut bytes = Vec::new();
        for _ in 0..Value::MAX_DEPTH {
            bytes.push(tag::SEQ);
            bytes.push(1);
        }
        bytes.push(tag::UNIT);
        let v = Value::from_pickle_bytes(&bytes).expect("depth exactly at limit decodes");
        let mut depth = 0;
        let mut cur = &v;
        while let Value::Seq(inner) = cur {
            depth += 1;
            cur = &inner[0];
        }
        assert_eq!(depth, Value::MAX_DEPTH);
    }

    #[test]
    fn writer_reuse() {
        let mut w = PickleWriter::with_capacity(64);
        w.put_text("one");
        let first = w.as_bytes().to_vec();
        w.clear();
        assert!(w.is_empty());
        w.put_text("one");
        assert_eq!(w.as_bytes(), &first[..]);
    }
}

// ---------------------------------------------------------------------------
// Pretty-printing
// ---------------------------------------------------------------------------

impl Value {
    /// Renders the value as indented, human-readable text — the debugging
    /// view of a pickle (`netobj`'s answer to a wire sniffer).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self {
            Value::Unit => {
                let _ = writeln!(out, "{pad}unit");
            }
            Value::Bool(v) => {
                let _ = writeln!(out, "{pad}bool {v}");
            }
            Value::Int(v) => {
                let _ = writeln!(out, "{pad}int {v}");
            }
            Value::UInt(v) => {
                let _ = writeln!(out, "{pad}uint {v}");
            }
            Value::Float(v) => {
                let _ = writeln!(out, "{pad}float {v}");
            }
            Value::Text(v) => {
                let shown: String = v.chars().take(48).collect();
                let ellipsis = if v.chars().count() > 48 { "…" } else { "" };
                let _ = writeln!(out, "{pad}text {shown:?}{ellipsis}");
            }
            Value::Bytes(v) => {
                let _ = writeln!(out, "{pad}bytes[{}]", v.len());
            }
            Value::Seq(vs) => {
                let _ = writeln!(out, "{pad}seq[{}]", vs.len());
                for v in vs {
                    v.render_into(out, depth + 1);
                }
            }
            Value::Record(vs) => {
                let _ = writeln!(out, "{pad}record[{}]", vs.len());
                for v in vs {
                    v.render_into(out, depth + 1);
                }
            }
            Value::Map(kvs) => {
                let _ = writeln!(out, "{pad}map[{}]", kvs.len());
                for (k, v) in kvs {
                    k.render_into(out, depth + 1);
                    v.render_into(out, depth + 2);
                }
            }
            Value::Opt(None) => {
                let _ = writeln!(out, "{pad}none");
            }
            Value::Opt(Some(v)) => {
                let _ = writeln!(out, "{pad}some");
                v.render_into(out, depth + 1);
            }
            Value::Ref(w) => {
                let _ = writeln!(out, "{pad}ref {w}");
            }
            Value::Type(t) => {
                let _ = writeln!(out, "{pad}typecode {t}");
            }
            Value::Variant(d, v) => {
                let _ = writeln!(out, "{pad}variant#{d}");
                v.render_into(out, depth + 1);
            }
        }
    }
}

/// Renders a pickle byte buffer for debugging: each top-level value on its
/// own indented block, or an error description for malformed input.
pub fn render_pickle(bytes: &[u8]) -> String {
    let mut r = PickleReader::new(bytes);
    let mut out = String::new();
    while r.remaining() > 0 {
        match Value::decode(&mut r) {
            Ok(v) => out.push_str(&v.render()),
            Err(e) => {
                out.push_str(&format!("<malformed at byte {}: {e}>\n", r.position()));
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod render_tests {
    use super::*;

    #[test]
    fn render_shows_structure() {
        let w = WireRep::new(SpaceId::from_raw(0xabcd), ObjIx(3));
        let v = Value::Record(vec![
            Value::Text("hello".into()),
            Value::Ref(w),
            Value::Seq(vec![Value::Int(-1), Value::UInt(2)]),
            Value::Opt(Some(Box::new(Value::Bytes(vec![0; 10])))),
        ]);
        let s = v.render();
        assert!(s.contains("record[4]"));
        assert!(s.contains("text \"hello\""));
        assert!(s.contains("ref abcd.3"));
        assert!(s.contains("seq[2]"));
        assert!(s.contains("bytes[10]"));
    }

    #[test]
    fn render_pickle_handles_malformed() {
        let good = Value::Int(42).to_pickle_bytes();
        assert!(render_pickle(&good).contains("int 42"));
        let s = render_pickle(&[0xff, 0x00]);
        assert!(s.contains("malformed"));
    }

    #[test]
    fn long_text_is_truncated() {
        let v = Value::Text("x".repeat(100));
        assert!(v.render().contains('…'));
    }
}
