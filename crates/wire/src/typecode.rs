//! Type fingerprints and the narrowest-surrogate computation.
//!
//! Network Objects sends, along with a marshaled object reference, the list
//! of fingerprints of the object's type and all its supertypes, ordered from
//! most to least derived. The importing space creates a surrogate of the
//! *narrowest* (most derived) type it knows about; at worst it falls back to
//! the root network object type, for which every space has a stub.

use std::collections::HashSet;
use std::fmt;

/// A 64-bit fingerprint identifying a network object interface type.
///
/// Fingerprints are derived from the fully qualified interface name (and, by
/// convention, a version suffix) via FNV-1a. Both sides of a connection must
/// derive fingerprints the same way — which they do, because the computation
/// lives here, in the shared wire crate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeCode(u64);

impl TypeCode {
    /// The fingerprint of the root network object type.
    ///
    /// Every space knows this type; it is the fallback surrogate type when
    /// no narrower match exists.
    pub const ROOT: TypeCode = TypeCode::of_name("netobj.Root");

    /// Computes the fingerprint of an interface name (FNV-1a, 64-bit).
    pub const fn of_name(name: &str) -> TypeCode {
        let bytes = name.as_bytes();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        TypeCode(hash)
    }

    /// Builds a fingerprint from its raw value (wire decoding).
    pub const fn from_raw(raw: u64) -> TypeCode {
        TypeCode(raw)
    }

    /// Returns the raw 64-bit fingerprint.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TypeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeCode({:016x})", self.0)
    }
}

impl fmt::Display for TypeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The ordered type ancestry of an exported object.
///
/// Index 0 is the object's concrete interface type; subsequent entries are
/// progressively wider supertypes; the final entry is always
/// [`TypeCode::ROOT`]. The exporter transmits this list with the wireRep so
/// that the importer can pick the narrowest type it has a stub for.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeList {
    codes: Vec<TypeCode>,
}

impl TypeList {
    /// Builds a type list from interface names, most-derived first.
    ///
    /// [`TypeCode::ROOT`] is appended automatically if absent.
    pub fn from_names(names: &[&str]) -> TypeList {
        let mut codes: Vec<TypeCode> = names.iter().map(|n| TypeCode::of_name(n)).collect();
        if codes.last() != Some(&TypeCode::ROOT) {
            codes.push(TypeCode::ROOT);
        }
        TypeList { codes }
    }

    /// Builds a type list from raw codes (wire decoding).
    ///
    /// The root code is appended if absent, so that a surrogate can always
    /// be constructed.
    pub fn from_codes(mut codes: Vec<TypeCode>) -> TypeList {
        if codes.last() != Some(&TypeCode::ROOT) {
            codes.push(TypeCode::ROOT);
        }
        TypeList { codes }
    }

    /// A list containing only the root type.
    pub fn root_only() -> TypeList {
        TypeList {
            codes: vec![TypeCode::ROOT],
        }
    }

    /// The ordered fingerprints, most-derived first.
    pub fn codes(&self) -> &[TypeCode] {
        &self.codes
    }

    /// The most-derived type in the list.
    pub fn narrowest(&self) -> TypeCode {
        self.codes[0]
    }

    /// Picks the narrowest type in this list that the importer knows.
    ///
    /// `known` is the set of fingerprints the importing space has stubs for.
    /// Returns the first (most-derived) known code; since the root type is
    /// always present and always known by a conforming space, this returns
    /// `None` only if `known` omits the root type, which indicates a
    /// misconfigured space.
    pub fn narrowest_known(&self, known: &HashSet<TypeCode>) -> Option<TypeCode> {
        self.codes.iter().find(|c| known.contains(c)).copied()
    }

    /// True if `code` appears anywhere in the ancestry.
    pub fn includes(&self, code: TypeCode) -> bool {
        self.codes.contains(&code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_deterministic_and_distinct() {
        let a = TypeCode::of_name("bank.Account.v1");
        let b = TypeCode::of_name("bank.Account.v1");
        let c = TypeCode::of_name("bank.Account.v2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, TypeCode::ROOT);
    }

    #[test]
    fn root_is_always_appended() {
        let l = TypeList::from_names(&["x.Derived", "x.Base"]);
        assert_eq!(l.codes().len(), 3);
        assert_eq!(*l.codes().last().unwrap(), TypeCode::ROOT);
        // Already ends in root: not duplicated.
        let l2 = TypeList::from_codes(l.codes().to_vec());
        assert_eq!(l2.codes().len(), 3);
    }

    #[test]
    fn narrowest_known_picks_most_derived() {
        let l = TypeList::from_names(&["x.Derived", "x.Base"]);
        let derived = TypeCode::of_name("x.Derived");
        let base = TypeCode::of_name("x.Base");

        let mut known = HashSet::new();
        known.insert(TypeCode::ROOT);
        assert_eq!(l.narrowest_known(&known), Some(TypeCode::ROOT));

        known.insert(base);
        assert_eq!(l.narrowest_known(&known), Some(base));

        known.insert(derived);
        assert_eq!(l.narrowest_known(&known), Some(derived));
    }

    #[test]
    fn narrowest_known_empty_set() {
        let l = TypeList::root_only();
        assert_eq!(l.narrowest_known(&HashSet::new()), None);
    }

    #[test]
    fn includes_checks_ancestry() {
        let l = TypeList::from_names(&["a.A"]);
        assert!(l.includes(TypeCode::of_name("a.A")));
        assert!(l.includes(TypeCode::ROOT));
        assert!(!l.includes(TypeCode::of_name("b.B")));
    }

    #[test]
    fn narrowest_is_first() {
        let l = TypeList::from_names(&["m.Narrow", "m.Wide"]);
        assert_eq!(l.narrowest(), TypeCode::of_name("m.Narrow"));
    }
}
