//! Per-client resource budgets and fair admission control.
//!
//! The original runtime assumed cooperating address spaces: one global
//! queue limit protected the server as a whole, but nothing stopped a
//! single chatty peer from filling that queue and starving everyone else.
//! This module hardens the serving side against such peers:
//!
//! - [`ResourceBudget`] is the per-client limit set (queue share,
//!   in-flight calls, connections, and — enforced by the collector layer
//!   above — dirty entries and export slots). Over-budget requests are
//!   rejected with the non-retryable `QuotaExceeded` remote error.
//! - [`FairPool`] replaces the single global job queue with one queue per
//!   client and a deficit-style (round-robin over equal-cost jobs) pick
//!   order, so service capacity is divided fairly among active clients.
//!   When the aggregate queue is full, the *largest* backlog sheds first:
//!   a newcomer below its fair share displaces the newest job of the
//!   biggest hog instead of being rejected itself.
//!
//! Identity is the `caller` space id each request carries. A client can
//! of course mint fresh ids to dodge its budget; the budget defends
//! capacity against *greedy* peers and bounds the damage of buggy ones —
//! Sybil resistance needs authentication below this layer (see
//! DESIGN.md, "Threat model & admission control").

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use netobj_wire::SpaceId;
use parking_lot::{Condvar, Mutex};

use crate::pool::Job;

/// Per-client resource limits enforced by a serving space at every
/// untrusted entry point. `None` disables the corresponding limit.
///
/// The queue/in-flight/connection limits are enforced here in the RPC
/// server; the export-slot and dirty-entry limits are enforced by the
/// collector entry points in `netobj-core`, which carries this struct in
/// its `Options`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Maximum distinct exported objects one client may hold dirty
    /// registrations on (export slots kept alive by that client).
    pub max_export_slots: Option<usize>,
    /// Maximum collector bookkeeping entries — dirty registrations plus
    /// retained sequence-number floors — one client may occupy. Bounds
    /// the memory a peer can pin with dirty/clean churn across many
    /// objects; must be at least `max_export_slots` to be meaningful.
    pub max_dirty_entries: Option<usize>,
    /// Maximum requests from one client admitted at once (queued plus
    /// executing).
    pub max_inflight: Option<usize>,
    /// Maximum requests from one client waiting in the server queue.
    pub max_queue_share: Option<usize>,
    /// Maximum concurrent connections attributed to one client. A
    /// connection is attributed when its first request is decoded (the
    /// transport accept path does not know the peer's identity yet).
    pub max_connections: Option<usize>,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget::unlimited()
    }
}

impl ResourceBudget {
    /// No per-client limits (the pre-hardening behaviour); the global
    /// queue limit and fair pick order still apply.
    pub fn unlimited() -> ResourceBudget {
        ResourceBudget {
            max_export_slots: None,
            max_dirty_entries: None,
            max_inflight: None,
            max_queue_share: None,
            max_connections: None,
        }
    }

    /// Finite limits sized for a public-facing space: generous for honest
    /// clients, tight enough that one abusive peer cannot exhaust the
    /// server.
    pub fn standard() -> ResourceBudget {
        ResourceBudget {
            max_export_slots: Some(4096),
            max_dirty_entries: Some(8192),
            max_inflight: Some(256),
            max_queue_share: Some(128),
            max_connections: Some(32),
        }
    }

    /// True if every limit is disabled.
    pub fn is_unlimited(&self) -> bool {
        *self == ResourceBudget::unlimited()
    }
}

/// The outcome of offering a job to a [`FairPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FairAdmit {
    /// The job was queued (possibly after displacing a hog's newest job).
    Queued,
    /// The aggregate queue is full and the client is at or above its fair
    /// share; the job was rejected without running. Retryable.
    Saturated,
    /// The client exceeded its own budget (queue share or in-flight
    /// limit); the job was rejected without running. Not retryable until
    /// the client drains its backlog.
    OverQuota,
    /// The pool has shut down; the job was rejected without running.
    ShutDown,
}

/// A point-in-time snapshot of one client's resource usage, for quota
/// gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientUsage {
    /// Requests waiting in this client's queue.
    pub queued: u64,
    /// Requests admitted and not yet completed (queued plus executing).
    pub inflight: u64,
    /// Connections attributed to this client.
    pub connections: u64,
    /// Requests shed because this client exceeded its own budget.
    pub shed_quota: u64,
}

/// One admitted job plus the rejection path to run if it is displaced by
/// fair shedding before a worker picks it up.
struct FairEntry {
    run: Job,
    shed: Job,
}

#[derive(Default)]
struct ClientQueue {
    jobs: VecDeque<FairEntry>,
    active: usize,
    connections: usize,
    shed_quota: u64,
}

impl ClientQueue {
    fn idle(&self) -> bool {
        self.jobs.is_empty() && self.active == 0 && self.connections == 0
    }
}

struct FairState {
    // Keyed by an attacker-chosen id: std's SipHash map on purpose, NOT
    // the FibHasher used elsewhere in this crate (see lib.rs).
    clients: HashMap<SpaceId, ClientQueue>,
    /// Round-robin ring of clients with at least one queued job; each such
    /// client appears exactly once.
    ring: VecDeque<SpaceId>,
    total_queued: usize,
    shutdown: bool,
}

/// Shared pool internals: worker threads hold this (not the pool itself,
/// which would cycle the refcount and leak the workers).
struct FairInner {
    state: Mutex<FairState>,
    cv: Condvar,
    capacity: usize,
    budget: ResourceBudget,
    high_water: AtomicUsize,
    evicted: AtomicU64,
    shed_quota_total: AtomicU64,
}

/// A worker pool with one queue per client and a fair pick order.
///
/// Replaces the single bounded channel of `ThreadPool` on the server's
/// request path. `queued()` is exact (counted under the queue lock), and
/// the high-water mark records the deepest backlog ever reached.
pub struct FairPool {
    inner: std::sync::Arc<FairInner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl FairPool {
    /// Spawns a pool with `workers` threads (at least one). `capacity`
    /// bounds the *aggregate* queue; `None` means unbounded. `budget`
    /// supplies the per-client limits.
    pub fn new(
        workers: usize,
        name: &str,
        capacity: Option<usize>,
        budget: ResourceBudget,
    ) -> std::sync::Arc<FairPool> {
        let inner = std::sync::Arc::new(FairInner {
            state: Mutex::new(FairState {
                clients: HashMap::new(),
                ring: VecDeque::new(),
                total_queued: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.map_or(usize::MAX, |c| c.max(1)),
            budget,
            high_water: AtomicUsize::new(0),
            evicted: AtomicU64::new(0),
            shed_quota_total: AtomicU64::new(0),
        });
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|i| {
                let inner = std::sync::Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn pool worker")
            })
            .collect();
        std::sync::Arc::new(FairPool {
            inner,
            handles: Mutex::new(handles),
        })
    }
}

impl FairInner {
    fn worker_loop(&self) {
        loop {
            let (client, entry) = {
                let mut st = self.state.lock();
                loop {
                    if let Some(client) = st.ring.pop_front() {
                        let q = st.clients.get_mut(&client).expect("ring client exists");
                        let entry = q.jobs.pop_front().expect("ring client has a job");
                        q.active += 1;
                        let requeue = !q.jobs.is_empty();
                        st.total_queued -= 1;
                        if requeue {
                            st.ring.push_back(client);
                        }
                        break (client, entry);
                    }
                    if st.shutdown {
                        return;
                    }
                    self.cv.wait(&mut st);
                }
            };
            (entry.run)();
            let mut st = self.state.lock();
            if let Some(q) = st.clients.get_mut(&client) {
                q.active -= 1;
                if q.idle() {
                    st.clients.remove(&client);
                }
            }
        }
    }

    /// Offers `run` on behalf of `client`. On [`FairAdmit::Queued`] the
    /// job will execute (or, if later displaced by fair shedding, its
    /// `shed` closure runs instead — exactly one of the two is called).
    /// On any rejection neither closure is called.
    pub fn try_execute(&self, client: SpaceId, run: Job, shed: Job) -> FairAdmit {
        let displaced = {
            let mut st = self.state.lock();
            if st.shutdown {
                return FairAdmit::ShutDown;
            }
            // Only admission creates a client record: rejected offers from
            // never-seen ids must not grow the map, or the quota table
            // itself becomes a memory-exhaustion target.
            let (queued_here, active_here) = st
                .clients
                .get(&client)
                .map_or((0, 0), |q| (q.jobs.len(), q.active));
            let over_quota = self
                .budget
                .max_inflight
                .is_some_and(|cap| queued_here + active_here >= cap)
                || self
                    .budget
                    .max_queue_share
                    .is_some_and(|cap| queued_here >= cap);
            if over_quota {
                self.shed_quota_total.fetch_add(1, Ordering::Relaxed);
                if let Some(q) = st.clients.get_mut(&client) {
                    q.shed_quota += 1;
                }
                return FairAdmit::OverQuota;
            }
            let mut displaced = None;
            if st.total_queued >= self.capacity {
                // Aggregate queue full: shed the largest backlog, not the
                // newcomer — unless the newcomer *is* (one of) the
                // largest, in which case it sheds itself.
                let hog = st
                    .clients
                    .iter()
                    .filter(|(_, cq)| !cq.jobs.is_empty())
                    .max_by_key(|(_, cq)| cq.jobs.len())
                    .map(|(id, cq)| (*id, cq.jobs.len()));
                match hog {
                    Some((hog_id, hog_len)) if hog_len > queued_here => {
                        let hq = st.clients.get_mut(&hog_id).expect("hog exists");
                        let entry = hq.jobs.pop_back().expect("hog has a job");
                        st.total_queued -= 1;
                        if st.clients.get(&hog_id).is_some_and(|cq| cq.jobs.is_empty()) {
                            st.ring.retain(|id| *id != hog_id);
                        }
                        self.evicted.fetch_add(1, Ordering::Relaxed);
                        displaced = Some(entry);
                    }
                    _ => return FairAdmit::Saturated,
                }
            }
            let q = st.clients.entry(client).or_default();
            let was_empty = q.jobs.is_empty();
            q.jobs.push_back(FairEntry { run, shed });
            if was_empty {
                st.ring.push_back(client);
            }
            st.total_queued += 1;
            self.high_water
                .fetch_max(st.total_queued, Ordering::Relaxed);
            self.cv.notify_one();
            displaced
        };
        if let Some(entry) = displaced {
            (entry.shed)();
        }
        FairAdmit::Queued
    }

    /// Attributes a connection to `client`; false if the client is at its
    /// connection limit (the connection should then be refused).
    pub fn register_conn(&self, client: SpaceId) -> bool {
        let mut st = self.state.lock();
        if st.shutdown {
            return false;
        }
        let held = st.clients.get(&client).map_or(0, |q| q.connections);
        if self.budget.max_connections.is_some_and(|cap| held >= cap) {
            self.shed_quota_total.fetch_add(1, Ordering::Relaxed);
            if let Some(q) = st.clients.get_mut(&client) {
                q.shed_quota += 1;
            }
            return false;
        }
        st.clients.entry(client).or_default().connections += 1;
        true
    }

    /// Releases a connection previously attributed with
    /// [`FairPool::register_conn`].
    pub fn unregister_conn(&self, client: SpaceId) {
        let mut st = self.state.lock();
        if let Some(q) = st.clients.get_mut(&client) {
            q.connections = q.connections.saturating_sub(1);
            if q.idle() {
                st.clients.remove(&client);
            }
        }
    }

    /// Exact number of jobs waiting in queues (counted under the lock).
    pub fn queued(&self) -> usize {
        self.state.lock().total_queued
    }

    /// Number of jobs currently executing.
    pub fn active(&self) -> usize {
        self.state.lock().clients.values().map(|q| q.active).sum()
    }

    /// Deepest aggregate backlog ever reached (monotonic).
    pub fn queue_high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Jobs displaced from the queue by fair shedding (monotonic).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Total offers rejected for exceeding a per-client budget, across
    /// all clients including ones whose records have since been dropped
    /// (monotonic).
    pub fn shed_quota_total(&self) -> u64 {
        self.shed_quota_total.load(Ordering::Relaxed)
    }

    /// The budget this pool enforces.
    pub fn budget(&self) -> &ResourceBudget {
        &self.budget
    }

    /// Snapshot of per-client usage, sorted by client id so downstream
    /// renderings are deterministic. Idle clients (no queue, no work, no
    /// connections) are dropped eagerly and will not appear.
    pub fn per_client(&self) -> Vec<(SpaceId, ClientUsage)> {
        let st = self.state.lock();
        let mut out: Vec<(SpaceId, ClientUsage)> = st
            .clients
            .iter()
            .map(|(id, q)| {
                (
                    *id,
                    ClientUsage {
                        queued: q.jobs.len() as u64,
                        inflight: (q.jobs.len() + q.active) as u64,
                        connections: q.connections as u64,
                        shed_quota: q.shed_quota,
                    },
                )
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    fn request_shutdown(&self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        self.cv.notify_all();
    }
}

impl FairPool {
    /// Offers `run` on behalf of `client`. On [`FairAdmit::Queued`] the
    /// job will execute (or, if later displaced by fair shedding, its
    /// `shed` closure runs instead — exactly one of the two is called).
    /// On any rejection neither closure is called.
    pub fn try_execute(&self, client: SpaceId, run: Job, shed: Job) -> FairAdmit {
        self.inner.try_execute(client, run, shed)
    }

    /// Attributes a connection to `client`; false if the client is at its
    /// connection limit (the connection should then be refused).
    pub fn register_conn(&self, client: SpaceId) -> bool {
        self.inner.register_conn(client)
    }

    /// Releases a connection previously attributed with
    /// [`FairPool::register_conn`].
    pub fn unregister_conn(&self, client: SpaceId) {
        self.inner.unregister_conn(client)
    }

    /// Exact number of jobs waiting in queues (counted under the lock).
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// Number of jobs currently executing.
    pub fn active(&self) -> usize {
        self.inner.active()
    }

    /// Deepest aggregate backlog ever reached (monotonic).
    pub fn queue_high_water(&self) -> usize {
        self.inner.queue_high_water()
    }

    /// Jobs displaced from the queue by fair shedding (monotonic).
    pub fn evicted(&self) -> u64 {
        self.inner.evicted()
    }

    /// Total offers rejected for exceeding a per-client budget, across
    /// all clients including ones whose records have since been dropped
    /// (monotonic).
    pub fn shed_quota_total(&self) -> u64 {
        self.inner.shed_quota_total()
    }

    /// The budget this pool enforces.
    pub fn budget(&self) -> &ResourceBudget {
        self.inner.budget()
    }

    /// Snapshot of per-client usage, sorted by client id so downstream
    /// renderings are deterministic. Idle clients (no queue, no work, no
    /// connections) are dropped eagerly and will not appear.
    pub fn per_client(&self) -> Vec<(SpaceId, ClientUsage)> {
        self.inner.per_client()
    }

    /// Stops accepting jobs, finishes queued ones, joins the workers.
    pub fn shutdown(&self) {
        self.inner.request_shutdown();
        let mut handles = self.handles.lock();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for FairPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::time::Duration;

    fn id(n: u128) -> SpaceId {
        SpaceId::from_raw(n)
    }

    fn nop() -> Job {
        Box::new(|| {})
    }

    #[test]
    fn runs_jobs_from_many_clients() {
        let pool = FairPool::new(4, "t", None, ResourceBudget::unlimited());
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..10 {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                let admit = pool.try_execute(
                    id(i),
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }),
                    nop(),
                );
                assert_eq!(admit, FairAdmit::Queued);
            }
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn per_client_queue_share_is_enforced() {
        let budget = ResourceBudget {
            max_queue_share: Some(2),
            ..ResourceBudget::unlimited()
        };
        let pool = FairPool::new(1, "t", None, budget);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        // Occupy the single worker so later offers stay queued.
        pool.try_execute(
            id(1),
            Box::new(move || {
                g.wait();
            }),
            nop(),
        );
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(pool.try_execute(id(1), nop(), nop()), FairAdmit::Queued);
        assert_eq!(pool.try_execute(id(1), nop(), nop()), FairAdmit::Queued);
        // Third queued job for the same client is over its share...
        assert_eq!(pool.try_execute(id(1), nop(), nop()), FairAdmit::OverQuota);
        // ...but another client is unaffected.
        assert_eq!(pool.try_execute(id(2), nop(), nop()), FairAdmit::Queued);
        let usage = pool.per_client();
        let u1 = usage.iter().find(|(i, _)| *i == id(1)).unwrap().1;
        assert_eq!(u1.shed_quota, 1);
        gate.wait();
    }

    #[test]
    fn inflight_cap_counts_executing_jobs() {
        let budget = ResourceBudget {
            max_inflight: Some(1),
            ..ResourceBudget::unlimited()
        };
        let pool = FairPool::new(2, "t", None, budget);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        pool.try_execute(
            id(1),
            Box::new(move || {
                g.wait();
            }),
            nop(),
        );
        std::thread::sleep(Duration::from_millis(30));
        // Nothing queued, but one job executing: the cap covers both.
        assert_eq!(pool.queued(), 0);
        assert_eq!(pool.try_execute(id(1), nop(), nop()), FairAdmit::OverQuota);
        gate.wait();
    }

    #[test]
    fn full_queue_sheds_the_largest_backlog_first() {
        let pool = FairPool::new(1, "t", Some(3), ResourceBudget::unlimited());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        pool.try_execute(
            id(1),
            Box::new(move || {
                g.wait();
            }),
            nop(),
        );
        std::thread::sleep(Duration::from_millis(30));
        // The hog fills the whole queue.
        let hog_shed = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let s = Arc::clone(&hog_shed);
            assert_eq!(
                pool.try_execute(
                    id(1),
                    nop(),
                    Box::new(move || {
                        s.fetch_add(1, Ordering::Relaxed);
                    })
                ),
                FairAdmit::Queued
            );
        }
        // The hog itself is saturated now...
        assert_eq!(pool.try_execute(id(1), nop(), nop()), FairAdmit::Saturated);
        // ...but a newcomer displaces the hog's newest job instead of
        // being rejected: the chatty peer sheds itself.
        assert_eq!(pool.try_execute(id(2), nop(), nop()), FairAdmit::Queued);
        assert_eq!(hog_shed.load(Ordering::Relaxed), 1);
        assert_eq!(pool.evicted(), 1);
        assert_eq!(pool.queued(), 3);
        gate.wait();
    }

    #[test]
    fn pick_order_interleaves_clients() {
        // One worker, gated: queue jobs from a hog and a small client,
        // then check the small client's single job does not wait behind
        // the hog's whole backlog.
        let pool = FairPool::new(1, "t", None, ResourceBudget::unlimited());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        pool.try_execute(
            id(9),
            Box::new(move || {
                g.wait();
            }),
            nop(),
        );
        std::thread::sleep(Duration::from_millis(30));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let o = Arc::clone(&order);
            pool.try_execute(
                id(1),
                Box::new(move || {
                    o.lock().push(format!("hog{i}"));
                }),
                nop(),
            );
        }
        let o = Arc::clone(&order);
        pool.try_execute(
            id(2),
            Box::new(move || {
                o.lock().push("small".to_owned());
            }),
            nop(),
        );
        gate.wait();
        pool.shutdown();
        let order = order.lock();
        let small_pos = order.iter().position(|s| s == "small").unwrap();
        // Round-robin: the small client runs second, not fifth.
        assert!(
            small_pos <= 1,
            "fair pick order should interleave: {order:?}"
        );
    }

    #[test]
    fn connection_limit_is_enforced_and_released() {
        let budget = ResourceBudget {
            max_connections: Some(2),
            ..ResourceBudget::unlimited()
        };
        let pool = FairPool::new(1, "t", None, budget);
        assert!(pool.register_conn(id(1)));
        assert!(pool.register_conn(id(1)));
        assert!(!pool.register_conn(id(1)));
        assert!(pool.register_conn(id(2)));
        pool.unregister_conn(id(1));
        assert!(pool.register_conn(id(1)));
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = FairPool::new(2, "t", None, ResourceBudget::unlimited());
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..50 {
            let c = Arc::clone(&counter);
            pool.try_execute(
                id(i % 5),
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }),
                nop(),
            );
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(pool.try_execute(id(0), nop(), nop()), FairAdmit::ShutDown);
    }

    #[test]
    fn high_water_mark_is_monotonic_and_exact_depth_reported() {
        let pool = FairPool::new(1, "t", None, ResourceBudget::unlimited());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        pool.try_execute(
            id(1),
            Box::new(move || {
                g.wait();
            }),
            nop(),
        );
        std::thread::sleep(Duration::from_millis(30));
        for _ in 0..4 {
            pool.try_execute(id(1), nop(), nop());
        }
        assert_eq!(pool.queued(), 4);
        assert_eq!(pool.queue_high_water(), 4);
        gate.wait();
        pool.shutdown();
        assert_eq!(pool.queued(), 0);
        assert_eq!(pool.queue_high_water(), 4);
    }
}
