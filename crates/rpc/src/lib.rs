//! The remote invocation layer.
//!
//! Network Objects sits on a remote procedure call protocol; this crate is
//! that protocol, reproduced as an explicit request/reply exchange over any
//! [`netobj_transport::Conn`]:
//!
//! - [`msg`]: the wire messages ([`msg::Request`], [`msg::Reply`]) — a call
//!   names a target object by [`netobj_wire::WireRep`], a method by index,
//!   and carries its arguments as an opaque pickle.
//! - [`client::CallClient`]: a multiplexing caller — many threads can issue
//!   concurrent calls over one connection; replies are matched by call id.
//! - [`server::RpcServer`]: accepts connections and dispatches each request
//!   on a worker pool to a user-provided [`Dispatcher`].
//! - [`pool::ThreadPool`]: the general worker pool (the original runtime
//!   likewise handed each incoming call to a free server thread).
//! - [`budget`]: per-client [`budget::ResourceBudget`]s and the
//!   [`budget::FairPool`] the server dispatches on — admission control
//!   that keeps one abusive peer from starving everyone else.
//!
//! The layer above (the `netobj` runtime) implements [`Dispatcher`] to
//! route calls to concrete objects, and issues collector calls (dirty,
//! clean, ping) as ordinary invocations on each space's reserved object 0.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod client;
pub mod error;
pub mod msg;
pub mod pool;
pub mod resilience;
pub mod server;

/// A Fibonacci-multiply hasher for the hot-path maps keyed by small
/// integers (call ids, method numbers). One multiply replaces SipHash's
/// several rounds; the golden-ratio constant spreads sequential ids across
/// the table. Not DoS-resistant — use only for keys the process itself
/// allocates.
#[derive(Default)]
pub(crate) struct FibHasher(u64);

impl std::hash::Hasher for FibHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

pub(crate) type FibHashMap<K, V> =
    std::collections::HashMap<K, V, std::hash::BuildHasherDefault<FibHasher>>;
pub(crate) type FibHashSet<K> =
    std::collections::HashSet<K, std::hash::BuildHasherDefault<FibHasher>>;

pub use budget::{ClientUsage, FairAdmit, FairPool, ResourceBudget};
pub use client::{AckToken, CallClient, CallReply};
pub use error::{RemoteError, RemoteErrorKind, RpcError};
pub use resilience::{
    Admission, Backoff, BreakerConfig, BreakerState, CallFailure, CircuitBreaker, FailureClass,
    RetryPolicy,
};
pub use server::{Dispatch, DispatchCx, Dispatcher, RpcServer, ServerConfig};

/// Result alias for RPC operations.
pub type Result<T> = std::result::Result<T, RpcError>;
