//! The remote invocation layer.
//!
//! Network Objects sits on a remote procedure call protocol; this crate is
//! that protocol, reproduced as an explicit request/reply exchange over any
//! [`netobj_transport::Conn`]:
//!
//! - [`msg`]: the wire messages ([`msg::Request`], [`msg::Reply`]) — a call
//!   names a target object by [`netobj_wire::WireRep`], a method by index,
//!   and carries its arguments as an opaque pickle.
//! - [`client::CallClient`]: a multiplexing caller — many threads can issue
//!   concurrent calls over one connection; replies are matched by call id.
//! - [`server::RpcServer`]: accepts connections and dispatches each request
//!   on a worker pool to a user-provided [`Dispatcher`].
//! - [`pool::ThreadPool`]: the worker pool (the original runtime likewise
//!   handed each incoming call to a free server thread).
//!
//! The layer above (the `netobj` runtime) implements [`Dispatcher`] to
//! route calls to concrete objects, and issues collector calls (dirty,
//! clean, ping) as ordinary invocations on each space's reserved object 0.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod msg;
pub mod pool;
pub mod resilience;
pub mod server;

pub use client::{AckToken, CallClient, CallReply};
pub use error::{RemoteError, RemoteErrorKind, RpcError};
pub use resilience::{
    Admission, Backoff, BreakerConfig, BreakerState, CallFailure, CircuitBreaker, FailureClass,
    RetryPolicy,
};
pub use server::{Dispatch, DispatchCx, Dispatcher, RpcServer};

/// Result alias for RPC operations.
pub type Result<T> = std::result::Result<T, RpcError>;
