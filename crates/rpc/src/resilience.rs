//! Failure classification, retry backoff, and per-endpoint circuit
//! breakers for the call layer.
//!
//! The paper's failure model makes one distinction load-bearing: a failed
//! call either *never reached* the callee (it is safe to retry
//! unconditionally) or its effect is *ambiguous* (the callee may have
//! executed it, so a transparent retry is sound only for idempotent
//! methods). [`FailureClass`] captures that distinction; the
//! [`crate::client::CallClient`] assigns it at the only place where the
//! necessary fact — was the request written to the connection? — is known.
//!
//! [`RetryPolicy`]/[`Backoff`] implement capped exponential backoff with
//! decorrelated jitter, and [`CircuitBreaker`] is a per-endpoint
//! closed → open → half-open breaker so that a dead or misbehaving peer
//! costs one probe per cooldown instead of a full timeout per call.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::{RemoteErrorKind, RpcError};
use netobj_transport::{ClockHandle, TransportError};

// ---------------------------------------------------------------------------
// Failure classification
// ---------------------------------------------------------------------------

/// What a failed call tells us about whether the callee executed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The request never reached the callee (connect refused, send failed
    /// before the request was written, server shed the call before
    /// dispatch). Always safe to retry.
    NotDelivered,
    /// The request was written but no reply arrived (timeout, connection
    /// lost mid-call). The callee may or may not have executed it; retry
    /// only idempotent methods.
    Ambiguous,
    /// The callee definitively answered with an error. Retrying would
    /// re-execute; the failure is the result.
    Definite,
}

/// A failed call together with its [`FailureClass`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFailure {
    /// The underlying error, unchanged from what the plain call API returns.
    pub error: RpcError,
    /// Whether the callee may have executed the call.
    pub class: FailureClass,
}

impl CallFailure {
    /// Classifies `error` given whether the request was written to the
    /// connection before the failure.
    pub fn classify(error: RpcError, request_sent: bool) -> CallFailure {
        let class = match &error {
            // The server answered: it is alive and made a decision. A
            // `Busy` rejection is issued before the call is dispatched, so
            // it is a not-delivered failure despite arriving as a reply.
            RpcError::Remote(e) if e.kind == RemoteErrorKind::Busy => FailureClass::NotDelivered,
            // Every other remote error — including `QuotaExceeded`, which
            // also precedes dispatch — is definite: a quota rejection will
            // keep failing until the *client* changes its behaviour, so
            // retrying it would only add load.
            RpcError::Remote(_) | RpcError::Wire(_) => FailureClass::Definite,
            // Transport or client-shutdown failures: ambiguity hinges on
            // whether the request went out.
            RpcError::Transport(_) | RpcError::Timeout | RpcError::Closed => {
                if request_sent {
                    FailureClass::Ambiguous
                } else {
                    FailureClass::NotDelivered
                }
            }
        };
        CallFailure { error, class }
    }

    /// True for failures where the peer (not the call) is suspect — the
    /// kind a circuit breaker should count. Any failure carried in a
    /// *reply* (including a retryable `Busy` shed) proves the peer alive
    /// and does not count: an overloaded server must not trip the breaker
    /// and starve the very retries that would get through once the burst
    /// drains.
    pub fn counts_against_peer(&self) -> bool {
        !matches!(self.error, RpcError::Remote(_)) && self.class != FailureClass::Definite
    }
}

// ---------------------------------------------------------------------------
// Retry with backoff
// ---------------------------------------------------------------------------

/// How (and how much) to retry a failed call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first. `1` disables retries.
    pub max_attempts: u32,
    /// First backoff delay; also the decorrelated-jitter floor.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Deadline for each individual attempt. `None` gives every attempt
    /// the whole remaining call budget — which means an attempt that times
    /// out exhausts the budget and is never retried, exactly the base
    /// algorithm's behaviour. Set it to make timed-out idempotent calls
    /// actually retry within the overall deadline.
    pub attempt_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            attempt_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The deadline to give attempt `attempt` (0-based) when `remaining`
    /// of the overall budget is left.
    pub fn attempt_deadline(&self, remaining: Duration) -> Duration {
        match self.attempt_timeout {
            Some(per) => per.min(remaining),
            None => remaining,
        }
    }
}

/// Backoff state across the attempts of one logical call.
///
/// Implements "decorrelated jitter": each delay is drawn uniformly from
/// `[base, prev * 3]`, capped at `max_delay`. Successive delays grow
/// roughly exponentially but never synchronise across competing callers.
pub struct Backoff {
    policy: RetryPolicy,
    prev: Duration,
    rng: u64,
    attempt: u32,
}

impl Backoff {
    /// Starts a backoff sequence; `seed` decorrelates concurrent callers.
    pub fn new(policy: RetryPolicy, seed: u64) -> Backoff {
        Backoff {
            prev: policy.base_delay,
            policy,
            // splitmix64 scrambles even trivial seeds (0, 1, 2...).
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
            attempt: 0,
        }
    }

    /// The policy this sequence runs under.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Attempts made so far (incremented by [`Backoff::next_delay`]).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// True if another attempt is allowed by `max_attempts`.
    pub fn attempts_remain(&self) -> bool {
        // The first attempt is made before any `next_delay` call, so
        // `attempt` counts *retries*.
        self.attempt + 1 < self.policy.max_attempts
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws the next backoff delay and counts the retry.
    pub fn next_delay(&mut self) -> Duration {
        self.attempt += 1;
        let base = self.policy.base_delay.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .max(base + 1);
        let span = hi - base;
        let jittered = base + self.next_u64() % span.max(1);
        let delay = Duration::from_nanos(jittered).min(self.policy.max_delay);
        self.prev = delay.max(self.policy.base_delay);
        delay
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Master switch; a disabled breaker admits everything.
    pub enabled: bool,
    /// Consecutive peer failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before admitting one probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            failure_threshold: 5,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// The observable state of a breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are rejected without touching the network.
    Open,
    /// One probe call is in flight; its outcome decides the next state.
    HalfOpen,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// A per-endpoint closed → open → half-open circuit breaker.
///
/// The caller reports outcomes via [`CircuitBreaker::on_success`] /
/// [`CircuitBreaker::on_failure`]; only failures where the *peer* is
/// suspect should be reported (see [`CallFailure::counts_against_peer`]) —
/// a definite application error proves the peer alive and counts as
/// success for the breaker's purposes.
pub struct CircuitBreaker {
    config: BreakerConfig,
    clock: ClockHandle,
    inner: Mutex<BreakerInner>,
    /// Mirrors "closed with zero consecutive failures" — the steady state
    /// of a healthy endpoint. While it holds, `state`/`admit`/`on_success`
    /// are single atomic loads; the flag is only written under `inner`'s
    /// lock, so it can never claim calm while a transition is in flight.
    calm: std::sync::atomic::AtomicBool,
}

/// Whether a call may proceed through the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed (breaker closed, disabled, or this is the half-open probe).
    Allow,
    /// Rejected: the breaker is open (or a probe is already in flight).
    Reject,
}

impl CircuitBreaker {
    /// Creates a closed breaker timing its cooldown on the system clock.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker::with_clock(config, ClockHandle::system())
    }

    /// Creates a closed breaker timing its cooldown on `clock`.
    pub fn with_clock(config: BreakerConfig, clock: ClockHandle) -> CircuitBreaker {
        CircuitBreaker {
            config,
            clock,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
            calm: std::sync::atomic::AtomicBool::new(true),
        }
    }

    fn is_calm(&self) -> bool {
        self.calm.load(std::sync::atomic::Ordering::Acquire)
    }

    fn set_calm(&self, inner: &BreakerInner) {
        let calm = inner.state == BreakerState::Closed && inner.consecutive_failures == 0;
        self.calm.store(calm, std::sync::atomic::Ordering::Release);
    }

    /// The current state (for observability; may be stale immediately).
    pub fn state(&self) -> BreakerState {
        if self.is_calm() {
            return BreakerState::Closed;
        }
        self.inner.lock().state
    }

    /// Asks to send a call. An open breaker past its cooldown converts to
    /// half-open and admits exactly one probe; further calls are rejected
    /// until the probe reports.
    pub fn admit(&self) -> Admission {
        if !self.config.enabled || self.is_calm() {
            return Admission::Allow;
        }
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                // (map_or, not is_none_or: the workspace MSRV is 1.75.)
                let now = self.clock.now();
                let cooled = inner.opened_at.map_or(true, |t| {
                    now.saturating_duration_since(t) >= self.config.cooldown
                });
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    Admission::Allow
                } else {
                    Admission::Reject
                }
            }
            BreakerState::HalfOpen => Admission::Reject,
        }
    }

    /// Reports a successful (or peer-proving) call outcome.
    pub fn on_success(&self) {
        if !self.config.enabled || self.is_calm() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        self.set_calm(&inner);
    }

    /// Reports a peer-suspect failure. Returns `true` when this report
    /// transitioned the breaker to open (for the `breaker_opened` stat).
    pub fn on_failure(&self) -> bool {
        if !self.config.enabled {
            return false;
        }
        let mut inner = self.inner.lock();
        let opened = match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(self.clock.now());
                    true
                } else {
                    false
                }
            }
            // Failed probe: reopen and restart the cooldown.
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(self.clock.now());
                true
            }
            BreakerState::Open => false,
        };
        self.set_calm(&inner);
        opened
    }

    /// The error returned on rejection, shaped as a transport failure so
    /// existing match arms treat it like any unreachable peer.
    pub fn rejection_error() -> RpcError {
        RpcError::Transport(TransportError::ConnectionRefused(
            "circuit breaker open".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RemoteError;

    #[test]
    fn classification_hinges_on_request_sent() {
        let f = CallFailure::classify(RpcError::Timeout, true);
        assert_eq!(f.class, FailureClass::Ambiguous);
        let f = CallFailure::classify(RpcError::Transport(TransportError::Closed), false);
        assert_eq!(f.class, FailureClass::NotDelivered);
        let f = CallFailure::classify(RpcError::Closed, true);
        assert_eq!(f.class, FailureClass::Ambiguous);
    }

    #[test]
    fn remote_errors_are_definite_except_busy() {
        let f = CallFailure::classify(RpcError::Remote(RemoteError::app("boom")), true);
        assert_eq!(f.class, FailureClass::Definite);
        assert!(!f.counts_against_peer());
        let busy = RemoteError::new(RemoteErrorKind::Busy, "shed");
        let f = CallFailure::classify(RpcError::Remote(busy), true);
        assert_eq!(f.class, FailureClass::NotDelivered);
        // A shed is retryable but arrived as a reply: the peer is alive,
        // so it must not count toward opening the breaker.
        assert!(!f.counts_against_peer());
    }

    #[test]
    fn quota_exceeded_is_definite_and_breaker_neutral() {
        // Unlike Busy, a quota rejection is the client's own doing and
        // will not clear on retry: definite, no retry, and — being a
        // reply from a live peer — no breaker count either.
        let quota = RemoteError::new(RemoteErrorKind::QuotaExceeded, "over budget");
        let f = CallFailure::classify(RpcError::Remote(quota), true);
        assert_eq!(f.class, FailureClass::Definite);
        assert!(!f.counts_against_peer());
    }

    #[test]
    fn backoff_delays_bounded_and_grow() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            attempt_timeout: None,
        };
        let mut b = Backoff::new(policy.clone(), 42);
        let mut prev_cap = policy.base_delay;
        for _ in 0..20 {
            let d = b.next_delay();
            assert!(d >= policy.base_delay, "below floor: {d:?}");
            assert!(d <= policy.max_delay, "above cap: {d:?}");
            // Decorrelated jitter: next delay ≤ 3 × previous (tracked cap).
            assert!(d <= prev_cap * 3 + Duration::from_millis(10));
            prev_cap = d.max(policy.base_delay);
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut b = Backoff::new(RetryPolicy::default(), seed);
            (0..5).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn attempts_remain_counts_retries() {
        let mut b = Backoff::new(
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            0,
        );
        assert!(b.attempts_remain()); // before retry 1
        b.next_delay();
        assert!(b.attempts_remain()); // before retry 2
        b.next_delay();
        assert!(!b.attempts_remain()); // 3 attempts used up
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers() {
        let b = CircuitBreaker::new(BreakerConfig {
            enabled: true,
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
        });
        assert_eq!(b.admit(), Admission::Allow);
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert!(b.on_failure()); // third failure opens it
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Reject);

        std::thread::sleep(Duration::from_millis(25));
        // Cooldown elapsed: exactly one probe gets through.
        assert_eq!(b.admit(), Admission::Allow);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(), Admission::Reject);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(BreakerConfig {
            enabled: true,
            failure_threshold: 1,
            cooldown: Duration::from_millis(10),
        });
        assert!(b.on_failure());
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit(), Admission::Allow); // probe
        assert!(b.on_failure()); // probe failed: open again, stat counts it
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Reject);
    }

    #[test]
    fn disabled_breaker_admits_everything() {
        let b = CircuitBreaker::new(BreakerConfig {
            enabled: false,
            failure_threshold: 1,
            cooldown: Duration::from_millis(10),
        });
        for _ in 0..10 {
            assert!(!b.on_failure());
            assert_eq!(b.admit(), Admission::Allow);
        }
    }

    #[test]
    fn success_resets_failure_streak() {
        let b = CircuitBreaker::new(BreakerConfig {
            enabled: true,
            failure_threshold: 3,
            cooldown: Duration::from_millis(10),
        });
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
