//! RPC wire messages.
//!
//! A connection carries a stream of frames, each holding exactly one
//! [`RpcMsg`]. Requests flow from the connecting side to the accepting
//! side; replies flow back. The *caller's space identity* travels in every
//! request because the collector needs to know **which space** now holds
//! references — dirty sets list processes, not connections.
//!
//! Payload fields (request arguments, reply results) are [`Bytes`]: when a
//! message is decoded with [`RpcMsg::decode`], they are shared slices of
//! the received frame, so argument bytes travel from the transport's read
//! buffer to the dispatcher without a copy.

use bytes::Bytes;
use netobj_wire::pickle::{Pickle, PickleReader, PickleWriter};
use netobj_wire::{SpaceId, WireError, WireRep};

use crate::error::RemoteError;

/// A remote invocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Matches the reply to the caller's pending-call table.
    pub call_id: u64,
    /// The space issuing the call.
    pub caller: SpaceId,
    /// The object being invoked (it must be owned by the callee).
    pub target: WireRep,
    /// Method index within the target's interface.
    pub method: u32,
    /// Pickled arguments (opaque to this layer). A shared slice of the
    /// received frame when decoded via [`RpcMsg::decode`].
    pub args: Bytes,
    /// Causal trace identifier: allocated at the root caller of a call
    /// chain and propagated unchanged through every fan-out hop, so spans
    /// recorded in different spaces can be correlated. `0` means absent
    /// (a request decoded from a peer speaking the pre-span format).
    pub trace_id: u64,
    /// Identifier of this particular call within its trace. `0` = absent.
    pub span_id: u64,
}

/// A reply to a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The request's `call_id`.
    pub call_id: u64,
    /// Pickled result on success, or a structured error.
    pub outcome: Result<Bytes, RemoteError>,
    /// If true, the callee holds resources (transient dirty entries for
    /// object references embedded in the result) until the caller sends a
    /// [`RpcMsg::ReplyAck`] for this call — the "copy acknowledgement" of
    /// the collector protocol, for the result direction.
    pub needs_ack: bool,
}

/// Any message that can appear on an RPC connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcMsg {
    /// An invocation request.
    Request(Request),
    /// An invocation reply.
    Reply(Reply),
    /// Acknowledges receipt *and processing* of a reply whose `needs_ack`
    /// flag was set: the caller has registered every object reference the
    /// result carried, so the callee may release its transient pins.
    ReplyAck(u64),
}

const TAG_REQUEST: u64 = 0;
const TAG_REPLY_OK: u64 = 1;
const TAG_REPLY_ERR: u64 = 2;
const TAG_REPLY_ACK: u64 = 3;

impl RpcMsg {
    /// Decodes one message from a received frame. Byte-string payloads
    /// (request args, reply results) come back as shared slices of `frame`
    /// — no copy; the frame's allocation stays alive as long as they do.
    pub fn decode(frame: &Bytes) -> netobj_wire::Result<RpcMsg> {
        let mut r = PickleReader::new(frame.as_ref());
        let v = Self::unpickle_from(&mut r, Some(frame))?;
        r.expect_end()?;
        Ok(v)
    }

    /// Encodes into a fresh frame payload.
    pub fn encode(&self) -> Bytes {
        Bytes::from(self.to_pickle_bytes())
    }

    fn unpickle_from(r: &mut PickleReader<'_>, src: Option<&Bytes>) -> netobj_wire::Result<RpcMsg> {
        // With a source frame, payloads alias it; without (the generic
        // `Pickle` path, used by tests/tools) they are copied out.
        fn payload(r: &mut PickleReader<'_>, src: Option<&Bytes>) -> netobj_wire::Result<Bytes> {
            match src {
                Some(frame) => r.get_bytes_shared(frame),
                None => Ok(Bytes::copy_from_slice(r.get_bytes()?)),
            }
        }
        match r.begin_variant()? {
            TAG_REQUEST => {
                let fields = r.begin_record()?;
                if fields != 5 && fields != 7 {
                    return Err(WireError::OutOfRange("request record arity"));
                }
                let call_id = u64::unpickle(r)?;
                let caller = SpaceId::unpickle(r)?;
                let target = WireRep::unpickle(r)?;
                let method = u32::unpickle(r)?;
                let args = payload(r, src)?;
                // Old peers send the 5-field form with no span header.
                let (trace_id, span_id) = if fields == 7 {
                    (u64::unpickle(r)?, u64::unpickle(r)?)
                } else {
                    (0, 0)
                };
                Ok(RpcMsg::Request(Request {
                    call_id,
                    caller,
                    target,
                    method,
                    args,
                    trace_id,
                    span_id,
                }))
            }
            TAG_REPLY_OK => {
                let call_id = u64::unpickle(r)?;
                let needs_ack = bool::unpickle(r)?;
                let bytes = payload(r, src)?;
                Ok(RpcMsg::Reply(Reply {
                    call_id,
                    outcome: Ok(bytes),
                    needs_ack,
                }))
            }
            TAG_REPLY_ERR => {
                let call_id = u64::unpickle(r)?;
                let needs_ack = bool::unpickle(r)?;
                let e = RemoteError::unpickle(r)?;
                Ok(RpcMsg::Reply(Reply {
                    call_id,
                    outcome: Err(e),
                    needs_ack,
                }))
            }
            TAG_REPLY_ACK => {
                let call_id = u64::unpickle(r)?;
                Ok(RpcMsg::ReplyAck(call_id))
            }
            _ => Err(WireError::OutOfRange("rpc message tag")),
        }
    }
}

impl Pickle for RpcMsg {
    fn pickle(&self, w: &mut PickleWriter) {
        match self {
            RpcMsg::Request(rq) => {
                w.begin_variant(TAG_REQUEST);
                // The span fields were appended in a later wire revision:
                // a request is a 7-field record now, but decoders accept
                // the original 5-field form from old peers.
                w.begin_record(7);
                rq.call_id.pickle(w);
                rq.caller.pickle(w);
                rq.target.pickle(w);
                rq.method.pickle(w);
                w.put_bytes(&rq.args);
                rq.trace_id.pickle(w);
                rq.span_id.pickle(w);
            }
            RpcMsg::Reply(rp) => match &rp.outcome {
                Ok(bytes) => {
                    w.begin_variant(TAG_REPLY_OK);
                    rp.call_id.pickle(w);
                    rp.needs_ack.pickle(w);
                    w.put_bytes(bytes);
                }
                Err(e) => {
                    w.begin_variant(TAG_REPLY_ERR);
                    rp.call_id.pickle(w);
                    rp.needs_ack.pickle(w);
                    e.pickle(w);
                }
            },
            RpcMsg::ReplyAck(call_id) => {
                w.begin_variant(TAG_REPLY_ACK);
                call_id.pickle(w);
            }
        }
    }

    fn unpickle(r: &mut PickleReader<'_>) -> netobj_wire::Result<Self> {
        Self::unpickle_from(r, None)
    }
}

/// A recycling frame encoder.
///
/// Encodes one [`RpcMsg`] at a time and hands the frame out as [`Bytes`].
/// The previous frame's allocation is reclaimed for the next encode as
/// soon as the transport has dropped its reference — steady-state, a
/// connection sends every reply from the same buffer. Callers serialise
/// access (the RPC server keeps one per connection, under a mutex).
#[derive(Default)]
pub struct SendBuf {
    spare: Option<Bytes>,
}

impl SendBuf {
    /// Creates an encoder with no buffer yet.
    pub fn new() -> SendBuf {
        SendBuf::default()
    }

    /// Encodes `msg` into this connection's send buffer.
    pub fn encode(&mut self, msg: &RpcMsg) -> Bytes {
        let mut w = self.writer();
        msg.pickle(&mut w);
        self.seal(w)
    }

    /// Encodes a reply directly from its parts, borrowing the result
    /// payload. Wire-identical to `encode(&RpcMsg::Reply(..))` but skips
    /// wrapping the payload in an intermediate [`Bytes`] — the server's
    /// per-call fast path.
    pub fn encode_reply(
        &mut self,
        call_id: u64,
        needs_ack: bool,
        outcome: std::result::Result<&[u8], &RemoteError>,
    ) -> Bytes {
        let mut w = self.writer();
        match outcome {
            Ok(bytes) => {
                w.begin_variant(TAG_REPLY_OK);
                call_id.pickle(&mut w);
                needs_ack.pickle(&mut w);
                w.put_bytes(bytes);
            }
            Err(e) => {
                w.begin_variant(TAG_REPLY_ERR);
                call_id.pickle(&mut w);
                needs_ack.pickle(&mut w);
                e.pickle(&mut w);
            }
        }
        self.seal(w)
    }

    fn writer(&mut self) -> PickleWriter {
        let recycled = match self.spare.take().map(Bytes::try_reclaim) {
            Some(Ok(v)) => v,
            // First use, or the previous frame is still in flight.
            _ => Vec::new(),
        };
        PickleWriter::from_vec(recycled)
    }

    fn seal(&mut self, w: PickleWriter) -> Bytes {
        let frame = Bytes::from(w.into_bytes());
        self.spare = Some(frame.clone());
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RemoteErrorKind;
    use netobj_wire::ObjIx;

    fn sample_request() -> RpcMsg {
        RpcMsg::Request(Request {
            call_id: 42,
            caller: SpaceId::from_raw(7),
            target: WireRep::new(SpaceId::from_raw(9), ObjIx(3)),
            method: 2,
            args: Bytes::from(vec![1, 2, 3]),
            trace_id: 0xDEAD_BEEF,
            span_id: 0xFEED,
        })
    }

    #[test]
    fn request_roundtrip() {
        let m = sample_request();
        let bytes = m.to_pickle_bytes();
        assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn decode_shares_frame_storage() {
        let m = sample_request();
        let frame = m.encode();
        let decoded = RpcMsg::decode(&frame).unwrap();
        assert_eq!(decoded, m);
        let RpcMsg::Request(rq) = decoded else {
            panic!("expected request")
        };
        // The args slice aliases the frame, not a fresh allocation.
        let frame_range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
        assert!(frame_range.contains(&(rq.args.as_ptr() as usize)));
    }

    #[test]
    fn reply_ok_roundtrip() {
        for needs_ack in [false, true] {
            let m = RpcMsg::Reply(Reply {
                call_id: 42,
                outcome: Ok(Bytes::from(vec![9, 9])),
                needs_ack,
            });
            let bytes = m.to_pickle_bytes();
            assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn reply_err_roundtrip() {
        let m = RpcMsg::Reply(Reply {
            call_id: 1,
            outcome: Err(RemoteError::new(RemoteErrorKind::NoSuchObject, "gone")),
            needs_ack: false,
        });
        let bytes = m.to_pickle_bytes();
        assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn reply_ack_roundtrip() {
        let m = RpcMsg::ReplyAck(1234);
        let bytes = m.to_pickle_bytes();
        assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn empty_args_and_result() {
        let m = RpcMsg::Request(Request {
            call_id: 0,
            caller: SpaceId::from_raw(0),
            target: WireRep::new(SpaceId::from_raw(0), ObjIx(0)),
            method: 0,
            args: Bytes::new(),
            trace_id: 0,
            span_id: 0,
        });
        let bytes = m.to_pickle_bytes();
        assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    /// A request in the original 5-field format (from a peer predating the
    /// span header) still decodes; the ids default to absent.
    #[test]
    fn old_format_request_accepted() {
        let mut w = PickleWriter::new();
        w.begin_variant(0); // TAG_REQUEST
        w.begin_record(5);
        77u64.pickle(&mut w);
        SpaceId::from_raw(3).pickle(&mut w);
        WireRep::new(SpaceId::from_raw(4), ObjIx(9)).pickle(&mut w);
        5u32.pickle(&mut w);
        w.put_bytes(&[8, 8]);
        let decoded = RpcMsg::from_pickle_bytes(w.as_bytes()).unwrap();
        assert_eq!(
            decoded,
            RpcMsg::Request(Request {
                call_id: 77,
                caller: SpaceId::from_raw(3),
                target: WireRep::new(SpaceId::from_raw(4), ObjIx(9)),
                method: 5,
                args: Bytes::from(vec![8, 8]),
                trace_id: 0,
                span_id: 0,
            })
        );
    }

    #[test]
    fn unexpected_request_arity_rejected() {
        let mut w = PickleWriter::new();
        w.begin_variant(0); // TAG_REQUEST
        w.begin_record(6);
        assert!(RpcMsg::from_pickle_bytes(w.as_bytes()).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        let mut w = PickleWriter::new();
        w.begin_variant(77);
        assert!(RpcMsg::from_pickle_bytes(w.as_bytes()).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_request().to_pickle_bytes();
        for cut in 0..bytes.len() {
            let _ = RpcMsg::from_pickle_bytes(&bytes[..cut]);
        }
    }

    /// `encode_reply` must stay byte-identical to encoding the equivalent
    /// `RpcMsg::Reply` — it is the same wire format, minus an allocation.
    #[test]
    fn encode_reply_matches_generic_encoding() {
        let mut sb = SendBuf::new();
        for needs_ack in [false, true] {
            let ok = sb.encode_reply(7, needs_ack, Ok(&[1, 2, 3]));
            let via_msg = RpcMsg::Reply(Reply {
                call_id: 7,
                outcome: Ok(Bytes::from(vec![1, 2, 3])),
                needs_ack,
            })
            .encode();
            assert_eq!(ok, via_msg);
        }
        let e = RemoteError::new(RemoteErrorKind::NoSuchObject, "gone");
        let err = sb.encode_reply(9, false, Err(&e));
        let via_msg = RpcMsg::Reply(Reply {
            call_id: 9,
            outcome: Err(e),
            needs_ack: false,
        })
        .encode();
        assert_eq!(err, via_msg);
    }

    #[test]
    fn send_buf_recycles_released_allocation() {
        let mut sb = SendBuf::new();
        let m = RpcMsg::ReplyAck(1);
        let f1 = sb.encode(&m);
        let p1 = f1.as_ptr() as usize;
        drop(f1); // transport done with the frame
        let f2 = sb.encode(&m);
        assert_eq!(p1, f2.as_ptr() as usize, "allocation reused");

        // While a frame is still alive, the encoder must not clobber it.
        let f3 = sb.encode(&RpcMsg::ReplyAck(2));
        assert_eq!(RpcMsg::decode(&f2).unwrap(), RpcMsg::ReplyAck(1));
        assert_eq!(RpcMsg::decode(&f3).unwrap(), RpcMsg::ReplyAck(2));
    }
}
