//! RPC wire messages.
//!
//! A connection carries a stream of frames, each holding exactly one
//! [`RpcMsg`]. Requests flow from the connecting side to the accepting
//! side; replies flow back. The *caller's space identity* travels in every
//! request because the collector needs to know **which space** now holds
//! references — dirty sets list processes, not connections.

use netobj_wire::pickle::{Pickle, PickleReader, PickleWriter};
use netobj_wire::{SpaceId, WireError, WireRep};

use crate::error::RemoteError;

/// A remote invocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Matches the reply to the caller's pending-call table.
    pub call_id: u64,
    /// The space issuing the call.
    pub caller: SpaceId,
    /// The object being invoked (it must be owned by the callee).
    pub target: WireRep,
    /// Method index within the target's interface.
    pub method: u32,
    /// Pickled arguments (opaque to this layer).
    pub args: Vec<u8>,
    /// Causal trace identifier: allocated at the root caller of a call
    /// chain and propagated unchanged through every fan-out hop, so spans
    /// recorded in different spaces can be correlated. `0` means absent
    /// (a request decoded from a peer speaking the pre-span format).
    pub trace_id: u64,
    /// Identifier of this particular call within its trace. `0` = absent.
    pub span_id: u64,
}

/// A reply to a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The request's `call_id`.
    pub call_id: u64,
    /// Pickled result on success, or a structured error.
    pub outcome: Result<Vec<u8>, RemoteError>,
    /// If true, the callee holds resources (transient dirty entries for
    /// object references embedded in the result) until the caller sends a
    /// [`RpcMsg::ReplyAck`] for this call — the "copy acknowledgement" of
    /// the collector protocol, for the result direction.
    pub needs_ack: bool,
}

/// Any message that can appear on an RPC connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcMsg {
    /// An invocation request.
    Request(Request),
    /// An invocation reply.
    Reply(Reply),
    /// Acknowledges receipt *and processing* of a reply whose `needs_ack`
    /// flag was set: the caller has registered every object reference the
    /// result carried, so the callee may release its transient pins.
    ReplyAck(u64),
}

const TAG_REQUEST: u64 = 0;
const TAG_REPLY_OK: u64 = 1;
const TAG_REPLY_ERR: u64 = 2;
const TAG_REPLY_ACK: u64 = 3;

impl Pickle for RpcMsg {
    fn pickle(&self, w: &mut PickleWriter) {
        match self {
            RpcMsg::Request(rq) => {
                w.begin_variant(TAG_REQUEST);
                // The span fields were appended in a later wire revision:
                // a request is a 7-field record now, but decoders accept
                // the original 5-field form from old peers.
                w.begin_record(7);
                rq.call_id.pickle(w);
                rq.caller.pickle(w);
                rq.target.pickle(w);
                rq.method.pickle(w);
                w.put_bytes(&rq.args);
                rq.trace_id.pickle(w);
                rq.span_id.pickle(w);
            }
            RpcMsg::Reply(rp) => match &rp.outcome {
                Ok(bytes) => {
                    w.begin_variant(TAG_REPLY_OK);
                    rp.call_id.pickle(w);
                    rp.needs_ack.pickle(w);
                    w.put_bytes(bytes);
                }
                Err(e) => {
                    w.begin_variant(TAG_REPLY_ERR);
                    rp.call_id.pickle(w);
                    rp.needs_ack.pickle(w);
                    e.pickle(w);
                }
            },
            RpcMsg::ReplyAck(call_id) => {
                w.begin_variant(TAG_REPLY_ACK);
                call_id.pickle(w);
            }
        }
    }

    fn unpickle(r: &mut PickleReader<'_>) -> netobj_wire::Result<Self> {
        match r.begin_variant()? {
            TAG_REQUEST => {
                let fields = r.begin_record()?;
                if fields != 5 && fields != 7 {
                    return Err(WireError::OutOfRange("request record arity"));
                }
                let call_id = u64::unpickle(r)?;
                let caller = SpaceId::unpickle(r)?;
                let target = WireRep::unpickle(r)?;
                let method = u32::unpickle(r)?;
                let args = r.get_bytes()?.to_vec();
                // Old peers send the 5-field form with no span header.
                let (trace_id, span_id) = if fields == 7 {
                    (u64::unpickle(r)?, u64::unpickle(r)?)
                } else {
                    (0, 0)
                };
                Ok(RpcMsg::Request(Request {
                    call_id,
                    caller,
                    target,
                    method,
                    args,
                    trace_id,
                    span_id,
                }))
            }
            TAG_REPLY_OK => {
                let call_id = u64::unpickle(r)?;
                let needs_ack = bool::unpickle(r)?;
                let bytes = r.get_bytes()?.to_vec();
                Ok(RpcMsg::Reply(Reply {
                    call_id,
                    outcome: Ok(bytes),
                    needs_ack,
                }))
            }
            TAG_REPLY_ERR => {
                let call_id = u64::unpickle(r)?;
                let needs_ack = bool::unpickle(r)?;
                let e = RemoteError::unpickle(r)?;
                Ok(RpcMsg::Reply(Reply {
                    call_id,
                    outcome: Err(e),
                    needs_ack,
                }))
            }
            TAG_REPLY_ACK => {
                let call_id = u64::unpickle(r)?;
                Ok(RpcMsg::ReplyAck(call_id))
            }
            _ => Err(WireError::OutOfRange("rpc message tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RemoteErrorKind;
    use netobj_wire::ObjIx;

    fn sample_request() -> RpcMsg {
        RpcMsg::Request(Request {
            call_id: 42,
            caller: SpaceId::from_raw(7),
            target: WireRep::new(SpaceId::from_raw(9), ObjIx(3)),
            method: 2,
            args: vec![1, 2, 3],
            trace_id: 0xDEAD_BEEF,
            span_id: 0xFEED,
        })
    }

    #[test]
    fn request_roundtrip() {
        let m = sample_request();
        let bytes = m.to_pickle_bytes();
        assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn reply_ok_roundtrip() {
        for needs_ack in [false, true] {
            let m = RpcMsg::Reply(Reply {
                call_id: 42,
                outcome: Ok(vec![9, 9]),
                needs_ack,
            });
            let bytes = m.to_pickle_bytes();
            assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn reply_err_roundtrip() {
        let m = RpcMsg::Reply(Reply {
            call_id: 1,
            outcome: Err(RemoteError::new(RemoteErrorKind::NoSuchObject, "gone")),
            needs_ack: false,
        });
        let bytes = m.to_pickle_bytes();
        assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn reply_ack_roundtrip() {
        let m = RpcMsg::ReplyAck(1234);
        let bytes = m.to_pickle_bytes();
        assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn empty_args_and_result() {
        let m = RpcMsg::Request(Request {
            call_id: 0,
            caller: SpaceId::from_raw(0),
            target: WireRep::new(SpaceId::from_raw(0), ObjIx(0)),
            method: 0,
            args: vec![],
            trace_id: 0,
            span_id: 0,
        });
        let bytes = m.to_pickle_bytes();
        assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    /// A request in the original 5-field format (from a peer predating the
    /// span header) still decodes; the ids default to absent.
    #[test]
    fn old_format_request_accepted() {
        let mut w = PickleWriter::new();
        w.begin_variant(0); // TAG_REQUEST
        w.begin_record(5);
        77u64.pickle(&mut w);
        SpaceId::from_raw(3).pickle(&mut w);
        WireRep::new(SpaceId::from_raw(4), ObjIx(9)).pickle(&mut w);
        5u32.pickle(&mut w);
        w.put_bytes(&[8, 8]);
        let decoded = RpcMsg::from_pickle_bytes(w.as_bytes()).unwrap();
        assert_eq!(
            decoded,
            RpcMsg::Request(Request {
                call_id: 77,
                caller: SpaceId::from_raw(3),
                target: WireRep::new(SpaceId::from_raw(4), ObjIx(9)),
                method: 5,
                args: vec![8, 8],
                trace_id: 0,
                span_id: 0,
            })
        );
    }

    #[test]
    fn unexpected_request_arity_rejected() {
        let mut w = PickleWriter::new();
        w.begin_variant(0); // TAG_REQUEST
        w.begin_record(6);
        assert!(RpcMsg::from_pickle_bytes(w.as_bytes()).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        let mut w = PickleWriter::new();
        w.begin_variant(77);
        assert!(RpcMsg::from_pickle_bytes(w.as_bytes()).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_request().to_pickle_bytes();
        for cut in 0..bytes.len() {
            let _ = RpcMsg::from_pickle_bytes(&bytes[..cut]);
        }
    }
}
