//! The RPC server: readiness-driven accept/decode, worker dispatch.
//!
//! The server runs on one of two execution substrates, chosen at start:
//!
//! - **Reactor core** (pollable listener + system clock): a single
//!   [`Reactor`] thread owns every connection. Readiness wakes it, it
//!   decodes frames and feeds them to a per-connection *state machine*
//!   ([`ServerConnDriver`] around [`ConnState`]); fast methods dispatch
//!   inline on the reactor thread, everything else goes to the shared
//!   [`FairPool`]. Replies — from workers or the inline path — queue on
//!   the connection and flush in coalesced vectored writes. This scales
//!   to tens of thousands of connections on a handful of threads.
//! - **Thread per connection** (everything else): each accepted
//!   connection gets a blocking reader thread running the same state
//!   machine. In-process transports (loopback, SimNet, channels) and
//!   virtual-clock servers always use this path, which is what keeps the
//!   deterministic virtual-time suites byte-identical: the reactor is an
//!   execution substrate, not a semantic change.
//!
//! Either way each decoded request is handed to the worker pool (or the
//! inline fast path), which calls the [`Dispatcher`] and sends the reply
//! back on the same connection; long-running methods never block frame
//! decode, so concurrent calls on one connection proceed in parallel,
//! exactly as in the original runtime.
//!
//! # The inline fast path
//!
//! Handing every request to a worker costs a thread switch, which for a
//! short method dwarfs the method itself (the observation goes back to
//! Birrell & Nelson, who dispatched simple calls on the thread that read
//! the packet). Servers on the *system* clock therefore keep a small
//! adaptive classifier per connection: a method whose last observed
//! service time was under [`INLINE_FAST_MICROS`] is dispatched directly
//! on the reader thread, skipping the queue and the switch; a slow
//! observation demotes it back to the worker pool. Methods start out
//! unclassified — and therefore on the pool — so a blocking method's
//! first call can never wedge the reader. Servers on a virtual clock
//! always use the pool: inline dispatch would serialise virtual-time
//! sleeps that the deterministic suites expect to overlap.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use netobj_transport::reactor::{AcceptDriver, ConnDriver, Drive, Reactor, ReactorSnapshot};
use netobj_transport::{Bytes, ClockHandle, Conn, Listener};
use netobj_wire::{SpaceId, WireRep};

use crate::budget::{ClientUsage, FairAdmit, FairPool, ResourceBudget};
use crate::error::{RemoteError, RemoteErrorKind};
use crate::msg::{Request, RpcMsg, SendBuf};

/// The result of dispatching one call.
pub struct Dispatch {
    /// The pickled result or a structured error.
    pub outcome: Result<Vec<u8>, RemoteError>,
    /// Runs when the caller acknowledges the reply (or on timeout, or when
    /// the connection dies) — used by the runtime to release the transient
    /// dirty pins protecting object references embedded in the result.
    pub completion: Option<Box<dyn FnOnce() + Send>>,
}

impl Dispatch {
    /// A dispatch with no completion hook.
    pub fn plain(outcome: Result<Vec<u8>, RemoteError>) -> Dispatch {
        Dispatch {
            outcome,
            completion: None,
        }
    }
}

impl From<Result<Vec<u8>, RemoteError>> for Dispatch {
    fn from(outcome: Result<Vec<u8>, RemoteError>) -> Dispatch {
        Dispatch::plain(outcome)
    }
}

/// Per-request observability context the server hands to
/// [`Dispatcher::dispatch_cx`]: the causal span identifiers decoded from
/// the request header (`0` = absent, e.g. an old peer) plus the time the
/// request spent waiting in the worker queue, measured on the server's
/// clock (virtual time under a virtual clock).
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchCx {
    /// Trace id propagated from the root caller (`0` = absent).
    pub trace_id: u64,
    /// The caller's span id for this call (`0` = absent).
    pub span_id: u64,
    /// Time between decoding the request on the reader thread and a
    /// worker picking it up.
    pub queue_wait: std::time::Duration,
}

/// The upcall interface from the RPC server into the object runtime.
///
/// Implementations route a call to the named object's method and return the
/// pickled result. They must be thread-safe: the server invokes `dispatch`
/// concurrently from its worker pool.
pub trait Dispatcher: Send + Sync + 'static {
    /// Handles one invocation.
    ///
    /// `caller` is the space that issued the request (needed by the
    /// collector: dirty sets list spaces). `target` names the object,
    /// `method` the method, and `args` carries the argument pickle.
    fn dispatch(&self, caller: SpaceId, target: WireRep, method: u32, args: &[u8]) -> Dispatch;

    /// Handles one invocation with observability context.
    ///
    /// The server calls this entry point; the default implementation drops
    /// the context and delegates to [`Dispatcher::dispatch`], so plain
    /// dispatchers (including closures) keep working unchanged.
    fn dispatch_cx(
        &self,
        cx: DispatchCx,
        caller: SpaceId,
        target: WireRep,
        method: u32,
        args: &[u8],
    ) -> Dispatch {
        let _ = cx;
        self.dispatch(caller, target, method, args)
    }
}

impl<F> Dispatcher for F
where
    F: Fn(SpaceId, WireRep, u32, &[u8]) -> Result<Vec<u8>, RemoteError> + Send + Sync + 'static,
{
    fn dispatch(&self, caller: SpaceId, target: WireRep, method: u32, args: &[u8]) -> Dispatch {
        Dispatch::plain(self(caller, target, method, args))
    }
}

/// Counters describing a server's activity.
#[derive(Debug, Default)]
struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Requests shed because the aggregate queue was at capacity
    /// (including queued jobs displaced by a fairer newcomer).
    shed_global: AtomicU64,
    /// Requests and connections refused because one client exceeded its
    /// own [`ResourceBudget`].
    shed_quota: AtomicU64,
}

/// Configuration for [`RpcServer::start_with_config`]: worker count,
/// aggregate queue limit, per-client budget and the serving clock.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads (at least one).
    pub workers: usize,
    /// Aggregate queued-request limit; `None` = unbounded.
    pub queue_limit: Option<usize>,
    /// Per-client admission limits.
    pub budget: ResourceBudget,
    /// Clock for ack timeouts and queue-wait measurement.
    pub clock: ClockHandle,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_limit: None,
            budget: ResourceBudget::unlimited(),
            clock: ClockHandle::system(),
        }
    }
}

/// A running RPC server bound to one listener.
pub struct RpcServer {
    stopped: Arc<AtomicBool>,
    listener: Arc<dyn Listener>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// `Some` when this server runs on the reactor core (pollable
    /// listener, system clock); `None` on the thread-per-connection path.
    reactor: Option<Arc<Reactor>>,
    stats: Arc<ServerStats>,
    pool: Arc<FairPool>,
}

impl RpcServer {
    /// Starts serving `listener` with `workers` worker threads and an
    /// unbounded job queue.
    pub fn start(
        listener: Box<dyn Listener>,
        dispatcher: Arc<dyn Dispatcher>,
        workers: usize,
    ) -> RpcServer {
        Self::start_with_queue(listener, dispatcher, workers, None)
    }

    /// Starts serving `listener` with `workers` worker threads. With
    /// `queue_limit` set, at most that many decoded requests wait for a
    /// worker; excess requests are *shed* — answered immediately with a
    /// retryable [`RemoteErrorKind::Busy`] error instead of queueing
    /// without bound behind slow calls.
    pub fn start_with_queue(
        listener: Box<dyn Listener>,
        dispatcher: Arc<dyn Dispatcher>,
        workers: usize,
        queue_limit: Option<usize>,
    ) -> RpcServer {
        Self::start_with_clock(
            listener,
            dispatcher,
            workers,
            queue_limit,
            ClockHandle::system(),
        )
    }

    /// Like [`RpcServer::start_with_queue`], but acknowledgement timeouts
    /// are measured on `clock`, and under a virtual clock each in-flight
    /// dispatch holds the clock so waiting callers cannot time out while
    /// their call is still executing.
    pub fn start_with_clock(
        listener: Box<dyn Listener>,
        dispatcher: Arc<dyn Dispatcher>,
        workers: usize,
        queue_limit: Option<usize>,
        clock: ClockHandle,
    ) -> RpcServer {
        Self::start_with_config(
            listener,
            dispatcher,
            ServerConfig {
                workers,
                queue_limit,
                budget: ResourceBudget::unlimited(),
                clock,
            },
        )
    }

    /// Starts serving `listener` with full admission-control configuration:
    /// per-client budgets are enforced on connections and dispatch, and
    /// over-budget requests are answered with the non-retryable
    /// [`RemoteErrorKind::QuotaExceeded`] error (global saturation still
    /// answers with retryable [`RemoteErrorKind::Busy`]).
    pub fn start_with_config(
        listener: Box<dyn Listener>,
        dispatcher: Arc<dyn Dispatcher>,
        config: ServerConfig,
    ) -> RpcServer {
        let ServerConfig {
            workers,
            queue_limit,
            budget,
            clock,
        } = config;
        let stopped = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let pool = FairPool::new(workers, "rpc-worker", queue_limit, budget);
        let listener: Arc<dyn Listener> = Arc::from(listener);

        // Reactor core: a pollable listener on a system clock is served by
        // the event loop instead of per-connection threads. Virtual-clock
        // servers always keep the thread path — the deterministic suites
        // rely on blocking reads interleaving with virtual-time holds.
        // `NETOBJ_NO_REACTOR` forces the thread path for A/B measurement
        // (experiment C5) and as an operational escape hatch.
        let reactor_disabled = std::env::var_os("NETOBJ_NO_REACTOR").is_some();
        if !reactor_disabled && clock.as_virtual().is_none() && listener.as_pollable().is_some() {
            if let Ok(reactor) = Reactor::start(Reactor::DEFAULT_TICK) {
                let accept = ServerAccept {
                    dispatcher: Arc::clone(&dispatcher),
                    pool: Arc::clone(&pool),
                    stats: Arc::clone(&stats),
                    stopped: Arc::clone(&stopped),
                    clock: clock.clone(),
                };
                if reactor
                    .register_listener(Arc::clone(&listener), Box::new(accept))
                    .is_ok()
                {
                    return RpcServer {
                        stopped,
                        listener,
                        accept_thread: None,
                        reactor: Some(Arc::new(reactor)),
                        stats,
                        pool,
                    };
                }
            }
            // No readiness backend (or registration failed): fall through
            // to the blocking path below.
        }

        let accept_stopped = Arc::clone(&stopped);
        let accept_stats = Arc::clone(&stats);
        let accept_listener = Arc::clone(&listener);
        let accept_pool = Arc::clone(&pool);
        let accept_thread = std::thread::Builder::new()
            .name("rpc-accept".into())
            .spawn(move || loop {
                let conn = match accept_listener.accept() {
                    Ok(c) => c,
                    Err(_) => break,
                };
                if accept_stopped.load(Ordering::Acquire) {
                    conn.close();
                    break;
                }
                accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn: Arc<dyn Conn> = Arc::from(conn);
                let dispatcher = Arc::clone(&dispatcher);
                let pool = Arc::clone(&accept_pool);
                let stats = Arc::clone(&accept_stats);
                let stopped = Arc::clone(&accept_stopped);
                let clock = clock.clone();
                std::thread::Builder::new()
                    .name("rpc-conn".into())
                    .spawn(move || connection_loop(conn, dispatcher, pool, stats, stopped, clock))
                    .expect("spawn rpc connection reader");
            })
            .expect("spawn rpc accept thread");

        RpcServer {
            stopped,
            listener,
            accept_thread: Some(accept_thread),
            reactor: None,
            stats,
            pool,
        }
    }

    /// The endpoint this server accepts connections on.
    pub fn local_endpoint(&self) -> netobj_transport::Endpoint {
        self.listener.local_endpoint()
    }

    /// Total connections accepted.
    pub fn connections(&self) -> u64 {
        self.stats.connections.load(Ordering::Relaxed)
    }

    /// Total requests dispatched.
    pub fn requests(&self) -> u64 {
        self.stats.requests.load(Ordering::Relaxed)
    }

    /// Total requests that produced an error reply.
    pub fn errors(&self) -> u64 {
        self.stats.errors.load(Ordering::Relaxed)
    }

    /// Total requests shed for any cause: global saturation plus
    /// per-client quota rejections.
    pub fn shed(&self) -> u64 {
        self.shed_global() + self.shed_quota()
    }

    /// Requests shed with a retryable `Busy` reply because the aggregate
    /// worker queue was full (including queued requests displaced by fair
    /// shedding in favour of a less greedy client).
    pub fn shed_global(&self) -> u64 {
        self.stats.shed_global.load(Ordering::Relaxed)
    }

    /// Requests and connections refused with a non-retryable
    /// `QuotaExceeded` reply because one client exceeded its own budget.
    pub fn shed_quota(&self) -> u64 {
        self.stats.shed_quota.load(Ordering::Relaxed)
    }

    /// Requests waiting in the worker queue right now. Exact: counted
    /// under the queue lock, not read from a lock-free channel.
    pub fn queue_depth(&self) -> usize {
        self.pool.queued()
    }

    /// Deepest queue backlog ever reached (monotonic high-water mark).
    pub fn queue_high_water(&self) -> usize {
        self.pool.queue_high_water()
    }

    /// Worker threads currently executing a dispatch (approximate).
    pub fn active_workers(&self) -> usize {
        self.pool.active()
    }

    /// Per-client usage snapshot (sorted by client id) for quota gauges.
    pub fn per_client(&self) -> Vec<(SpaceId, ClientUsage)> {
        self.pool.per_client()
    }

    /// Reactor-core statistics: `Some` when this server runs on the
    /// readiness event loop, `None` on the thread-per-connection path.
    pub fn reactor_stats(&self) -> Option<ReactorSnapshot> {
        self.reactor.as_ref().map(|r| r.stats())
    }

    /// Stops accepting and tears the server down.
    pub fn stop(&mut self) {
        self.stopped.store(true, Ordering::Release);
        self.listener.close();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Reactor first: its shutdown closes every registered connection
        // and runs each driver's teardown (ack drains, quota unbinding)
        // while the pool can still report ShutDown to late frames.
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        self.pool.shutdown();
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// How long a completion hook waits for its [`RpcMsg::ReplyAck`] before
/// running anyway. Bounds transient-pin lifetime if the caller dies without
/// acknowledging (mirrors the paper's rule that transient dirty entries
/// must not outlive a failed transmission indefinitely).
pub const DEFAULT_ACK_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

type Completion = Box<dyn FnOnce() + Send>;

#[derive(Default)]
struct AckTable {
    pending: parking_lot::Mutex<Vec<(u64, std::time::Instant, Completion)>>,
    /// Entry count mirrored outside the lock: most calls carry no ack
    /// obligation, so the per-frame expiry sweep and the per-reply
    /// acknowledge can skip the lock entirely while the table is empty.
    len: AtomicUsize,
}

impl AckTable {
    fn is_empty(&self) -> bool {
        self.len.load(Ordering::Acquire) == 0
    }

    fn insert(&self, call_id: u64, deadline: std::time::Instant, completion: Completion) {
        let mut pending = self.pending.lock();
        pending.push((call_id, deadline, completion));
        self.len.store(pending.len(), Ordering::Release);
    }

    fn acknowledge(&self, call_id: u64) {
        if self.is_empty() {
            return;
        }
        let found = {
            let mut pending = self.pending.lock();
            let found = pending
                .iter()
                .position(|(id, _, _)| *id == call_id)
                .map(|i| pending.swap_remove(i).2);
            self.len.store(pending.len(), Ordering::Release);
            found
        };
        if let Some(run) = found {
            run();
        }
    }

    fn expire(&self, now: std::time::Instant) {
        if self.is_empty() {
            return;
        }
        let expired: Vec<Completion> = {
            let mut pending = self.pending.lock();
            let mut out = Vec::new();
            let mut i = 0;
            while i < pending.len() {
                if pending[i].1 <= now {
                    out.push(pending.swap_remove(i).2);
                } else {
                    i += 1;
                }
            }
            self.len.store(pending.len(), Ordering::Release);
            out
        };
        for run in expired {
            run();
        }
    }

    fn drain(&self) {
        let all: Vec<Completion> = {
            let mut pending = self.pending.lock();
            self.len.store(0, Ordering::Release);
            pending.drain(..).map(|(_, _, c)| c).collect()
        };
        for run in all {
            run();
        }
    }
}

/// Remembers recently seen request ids on one connection so that a
/// duplicating channel cannot execute a call twice. Bounded FIFO window.
struct SeenRequests {
    order: std::collections::VecDeque<u64>,
    set: crate::FibHashSet<u64>,
}

impl SeenRequests {
    const WINDOW: usize = 4096;

    fn new() -> SeenRequests {
        SeenRequests {
            order: std::collections::VecDeque::new(),
            set: crate::FibHashSet::default(),
        }
    }

    /// Returns false if `id` was already seen (a duplicate to drop).
    fn insert(&mut self, id: u64) -> bool {
        if !self.set.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if self.order.len() > Self::WINDOW {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }
}

/// Service-time ceiling (on the connection's clock) under which a method
/// is considered *fast* and eligible for inline dispatch on the reader
/// thread. Well above a short method's cost, well below anything that
/// blocks on I/O, locks held across calls, or deliberate sleeps.
pub const INLINE_FAST_MICROS: u64 = 200;

/// Adaptive per-connection classifier for the inline fast path.
///
/// Maps `(object, method)` to the last verdict: `true` = the previous
/// dispatch finished under [`INLINE_FAST_MICROS`], so the next one may run
/// on the reader thread. Unknown methods are never inlined — their first
/// call always goes through the worker pool, so a method that blocks
/// cannot wedge the reader before it has ever been observed. `None` when
/// the server runs on a virtual clock (inline dispatch would serialise
/// virtual-time sleeps the deterministic suites expect to overlap).
struct FastMethods {
    verdicts: parking_lot::Mutex<crate::FibHashMap<(u64, u32), bool>>,
}

impl FastMethods {
    fn new() -> FastMethods {
        FastMethods {
            verdicts: parking_lot::Mutex::new(crate::FibHashMap::default()),
        }
    }

    fn key(rq: &Request) -> (u64, u32) {
        (rq.target.ix.0, rq.method)
    }

    fn is_fast(&self, key: (u64, u32)) -> bool {
        *self.verdicts.lock().get(&key).unwrap_or(&false)
    }

    fn observe(&self, key: (u64, u32), service: std::time::Duration) {
        let fast = service.as_micros() <= u128::from(INLINE_FAST_MICROS);
        self.verdicts.lock().insert(key, fast);
    }
}

/// Everything a request needs besides its own fields, bundled so the
/// reader clones ONE `Arc` per job instead of one per component.
struct ConnCtx {
    conn: Arc<dyn Conn>,
    dispatcher: Arc<dyn Dispatcher>,
    stats: Arc<ServerStats>,
    clock: ClockHandle,
    acks: AckTable,
    /// One recycling reply encoder per connection: once the transport has
    /// released the previous reply frame, the next reply reuses its
    /// allocation. Workers serving this connection serialise on the mutex
    /// only for the encode itself.
    send_buf: parking_lot::Mutex<SendBuf>,
    /// `Some` on system-clock servers: the inline fast-path classifier.
    fast: Option<FastMethods>,
}

/// Dispatches one request and sends its reply; shared by the worker path
/// and the reader's inline fast path. Returns the method's service time
/// (on the connection's clock) for the fast-path classifier.
fn serve_request(ctx: &ConnCtx, rq: Request, enqueued: std::time::Instant) -> std::time::Duration {
    let clock = &ctx.clock;
    // While the method runs, virtual time must not jump: the caller is
    // waiting on real work the clock cannot see.
    let hold = clock.as_virtual().map(|vc| vc.hold());
    let svc_start = clock.now();
    let cx = DispatchCx {
        trace_id: rq.trace_id,
        span_id: rq.span_id,
        queue_wait: svc_start.saturating_duration_since(enqueued),
    };
    // `rq.args` is a shared slice of the received frame: the argument
    // pickle reaches the dispatcher with no copy since the transport read.
    let dispatch = ctx
        .dispatcher
        .dispatch_cx(cx, rq.caller, rq.target, rq.method, &rq.args);
    let after = clock.now();
    drop(hold);
    if dispatch.outcome.is_err() {
        ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    let needs_ack = dispatch.completion.is_some();
    // Register the completion *before* the reply leaves, so the ack can
    // never race past it.
    if let Some(completion) = dispatch.completion {
        ctx.acks
            .insert(rq.call_id, after + DEFAULT_ACK_TIMEOUT, completion);
    }
    let frame = ctx.send_buf.lock().encode_reply(
        rq.call_id,
        needs_ack,
        dispatch.outcome.as_ref().map(|v| v.as_slice()),
    );
    if ctx.conn.send(frame).is_err() {
        // The caller is gone; run the completion immediately.
        ctx.acks.acknowledge(rq.call_id);
    }
    after.saturating_duration_since(svc_start)
}

/// Verdict of [`ConnState::handle_frame`]: keep the connection, or tear
/// it down (malformed traffic, protocol violation, quota refusal, a dead
/// peer, or server shutdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Continue,
    Close,
}

/// The per-connection protocol state machine, shared verbatim by both
/// execution substrates: the blocking reader thread feeds it from
/// `recv_timeout`, the reactor feeds it from readiness-driven decode.
/// Admission control, identity binding, dup suppression and the inline
/// fast path therefore behave identically on either core.
struct ConnState {
    ctx: Arc<ConnCtx>,
    pool: Arc<FairPool>,
    stopped: Arc<AtomicBool>,
    seen: SeenRequests,
    /// The client this connection is attributed to for the connection
    /// budget: unknown until the first request decodes (the transport
    /// accept path carries no identity).
    bound: Option<SpaceId>,
}

impl ConnState {
    fn new(
        conn: Arc<dyn Conn>,
        dispatcher: Arc<dyn Dispatcher>,
        pool: Arc<FairPool>,
        stats: Arc<ServerStats>,
        stopped: Arc<AtomicBool>,
        clock: ClockHandle,
    ) -> ConnState {
        let ctx = Arc::new(ConnCtx {
            conn,
            dispatcher,
            stats,
            fast: clock.as_virtual().is_none().then(FastMethods::new),
            clock,
            acks: AckTable::default(),
            send_buf: parking_lot::Mutex::new(SendBuf::new()),
        });
        ConnState {
            ctx,
            pool,
            stopped,
            seen: SeenRequests::new(),
            bound: None,
        }
    }

    /// Sweeps expired ack obligations (no-op while the table is empty).
    fn sweep_acks(&self) {
        if !self.ctx.acks.is_empty() {
            self.ctx.acks.expire(self.ctx.clock.now());
        }
    }

    /// Runs one decoded wire frame through the state machine.
    fn handle_frame(&mut self, frame: &Bytes) -> Step {
        let ctx = &self.ctx;
        if self.stopped.load(Ordering::Acquire) {
            return Step::Close;
        }
        self.sweep_acks();
        let msg = match RpcMsg::decode(frame) {
            Ok(m) => m,
            Err(_) => {
                // Malformed traffic: drop the connection.
                return Step::Close;
            }
        };
        let rq = match msg {
            RpcMsg::Request(rq) => {
                if !self.seen.insert(rq.call_id) {
                    // A duplicated frame from an at-least-once channel:
                    // the call already ran (or is running); drop it. The
                    // caller matches on call id, so a duplicate reply from
                    // the first execution serves both frames.
                    return Step::Continue;
                }
                rq
            }
            RpcMsg::ReplyAck(call_id) => {
                ctx.acks.acknowledge(call_id);
                return Step::Continue;
            }
            RpcMsg::Reply(_) => {
                // Replies arriving at a server end are protocol violations.
                return Step::Close;
            }
        };
        if self.bound.is_none() {
            if self.pool.register_conn(rq.caller) {
                self.bound = Some(rq.caller);
            } else {
                // Over the client's connection budget: refuse the request
                // and drop the connection. Non-retryable — the client must
                // close connections first.
                ctx.stats.shed_quota.fetch_add(1, Ordering::Relaxed);
                let err = RemoteError::new(
                    RemoteErrorKind::QuotaExceeded,
                    "client connection limit exceeded",
                );
                let frame = ctx
                    .send_buf
                    .lock()
                    .encode_reply(rq.call_id, false, Err(&err));
                let _ = ctx.conn.send(frame);
                return Step::Close;
            }
        }
        ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
        let enqueued = ctx.clock.now();
        let fast_key = FastMethods::key(&rq);
        if let Some(fast) = &ctx.fast {
            if fast.is_fast(fast_key) {
                // Last observation was fast: skip the worker handoff and
                // dispatch on the decoding thread (the reader, or the
                // reactor itself). A slow surprise demotes the method so
                // the next call goes back to the pool. Inline calls bypass
                // queue admission, but the decoder serialises them, so one
                // connection can hold at most one at a time.
                let service = serve_request(ctx, rq, enqueued);
                fast.observe(fast_key, service);
                return Step::Continue;
            }
        }
        let call_id = rq.call_id;
        let caller = rq.caller;
        let job_ctx = Arc::clone(ctx);
        let shed_ctx = Arc::clone(ctx);
        let admitted = self.pool.try_execute(
            caller,
            Box::new(move || {
                let service = serve_request(&job_ctx, rq, enqueued);
                if let Some(fast) = &job_ctx.fast {
                    fast.observe(fast_key, service);
                }
            }),
            // Runs instead of the job if a fairer newcomer displaces it
            // from a full queue: the method never executed, so the caller
            // gets the same retryable Busy a front-door shed produces.
            Box::new(move || {
                shed_ctx.stats.shed_global.fetch_add(1, Ordering::Relaxed);
                let busy = RemoteError::new(RemoteErrorKind::Busy, "displaced by fair admission");
                let frame = shed_ctx
                    .send_buf
                    .lock()
                    .encode_reply(call_id, false, Err(&busy));
                let _ = shed_ctx.conn.send(frame);
            }),
        );
        match admitted {
            FairAdmit::Queued => Step::Continue,
            FairAdmit::Saturated => {
                // Shed before dispatch: the method did not (and will not)
                // run, so the rejection is a *not delivered* failure the
                // caller may retry freely. Answer from the decoding thread
                // — by definition no worker is free to do it.
                ctx.stats.shed_global.fetch_add(1, Ordering::Relaxed);
                let busy = RemoteError::new(RemoteErrorKind::Busy, "server worker pool saturated");
                let frame = ctx.send_buf.lock().encode_reply(call_id, false, Err(&busy));
                if ctx.conn.send(frame).is_err() {
                    return Step::Close;
                }
                Step::Continue
            }
            FairAdmit::OverQuota => {
                // The client exceeded its own queue share or in-flight
                // budget. Unlike Busy this is not transient congestion:
                // answer with the non-retryable QuotaExceeded.
                ctx.stats.shed_quota.fetch_add(1, Ordering::Relaxed);
                let err = RemoteError::new(
                    RemoteErrorKind::QuotaExceeded,
                    "client request budget exceeded",
                );
                let frame = ctx.send_buf.lock().encode_reply(call_id, false, Err(&err));
                if ctx.conn.send(frame).is_err() {
                    return Step::Close;
                }
                Step::Continue
            }
            FairAdmit::ShutDown => Step::Close,
        }
    }

    /// Connection over: no acks can arrive; release everything the
    /// connection holds. Idempotent.
    fn finish(&mut self) {
        self.ctx.conn.close();
        self.ctx.acks.drain();
        if let Some(client) = self.bound.take() {
            self.pool.unregister_conn(client);
        }
    }
}

/// The reactor-side wrapper: adapts [`ConnState`] to the transport's
/// [`ConnDriver`] callbacks. `on_frame` (and therefore the inline fast
/// path) runs directly on the reactor thread; replies it queues are
/// flushed by the reactor's coalesced write right after the frame batch.
struct ServerConnDriver {
    state: ConnState,
}

impl ConnDriver for ServerConnDriver {
    fn on_frame(&mut self, frame: Bytes) -> Drive {
        match self.state.handle_frame(&frame) {
            Step::Continue => Drive::Continue,
            Step::Close => Drive::Close,
        }
    }

    fn on_tick(&mut self) {
        // Matches the blocking path's 500 ms `recv_timeout` sweep: expired
        // ack obligations are released even while the connection is idle.
        self.state.sweep_acks();
    }

    fn on_close(&mut self) {
        self.state.finish();
    }
}

/// Builds a [`ServerConnDriver`] for every connection the reactor accepts.
struct ServerAccept {
    dispatcher: Arc<dyn Dispatcher>,
    pool: Arc<FairPool>,
    stats: Arc<ServerStats>,
    stopped: Arc<AtomicBool>,
    clock: ClockHandle,
}

impl AcceptDriver for ServerAccept {
    fn on_accept(&mut self, conn: Arc<dyn Conn>) -> Option<Box<dyn ConnDriver>> {
        if self.stopped.load(Ordering::Acquire) {
            conn.close();
            return None;
        }
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        Some(Box::new(ServerConnDriver {
            state: ConnState::new(
                conn,
                Arc::clone(&self.dispatcher),
                Arc::clone(&self.pool),
                Arc::clone(&self.stats),
                Arc::clone(&self.stopped),
                self.clock.clone(),
            ),
        }))
    }
}

/// The blocking substrate: one thread per connection, driving the same
/// [`ConnState`] from a bounded `recv_timeout` loop.
fn connection_loop(
    conn: Arc<dyn Conn>,
    dispatcher: Arc<dyn Dispatcher>,
    pool: Arc<FairPool>,
    stats: Arc<ServerStats>,
    stopped: Arc<AtomicBool>,
    clock: ClockHandle,
) {
    let conn_handle = Arc::clone(&conn);
    let mut state = ConnState::new(conn, dispatcher, pool, stats, stopped, clock);
    loop {
        if state.stopped.load(Ordering::Acquire) {
            break;
        }
        // A bounded recv lets us sweep expired ack obligations even when
        // the connection is idle.
        let frame = match conn_handle.recv_timeout(std::time::Duration::from_millis(500)) {
            Ok(f) => f,
            Err(netobj_transport::TransportError::Timeout) => {
                state.sweep_acks();
                continue;
            }
            Err(_) => break,
        };
        if state.handle_frame(&frame) == Step::Close {
            break;
        }
    }
    state.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::CallClient;
    use crate::error::{RemoteErrorKind, RpcError};
    use netobj_transport::loopback::Loopback;
    use netobj_transport::{Endpoint, Transport};
    use netobj_wire::ObjIx;
    use std::time::Duration;

    fn echo_dispatcher() -> Arc<dyn Dispatcher> {
        Arc::new(
            |_caller: SpaceId, target: WireRep, method: u32, args: &[u8]| {
                if method == 99 {
                    return Err(RemoteError::new(RemoteErrorKind::NoSuchMethod, "99"));
                }
                let mut out = target.ix.0.to_le_bytes().to_vec();
                out.extend_from_slice(args);
                Ok(out)
            },
        )
    }

    fn start_over_loopback() -> (RpcServer, Arc<CallClient>) {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let server = RpcServer::start(l, echo_dispatcher(), 4);
        let conn = t.connect(&Endpoint::loopback("srv")).unwrap();
        let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(1));
        (server, client)
    }

    fn target(ix: u64) -> WireRep {
        WireRep::new(SpaceId::from_raw(2), ObjIx(ix))
    }

    #[test]
    fn end_to_end_call() {
        let (server, client) = start_over_loopback();
        let got = client.call(target(7), 0, vec![9]).unwrap();
        assert_eq!(&got[..8], &7u64.to_le_bytes());
        assert_eq!(got[8], 9);
        assert_eq!(server.requests(), 1);
        assert_eq!(server.errors(), 0);
    }

    #[test]
    fn error_reply_counted() {
        let (server, client) = start_over_loopback();
        let got = client.call(target(1), 99, vec![]);
        assert!(matches!(got, Err(RpcError::Remote(_))));
        assert_eq!(server.errors(), 1);
    }

    #[test]
    fn many_concurrent_clients() {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let server = RpcServer::start(l, echo_dispatcher(), 8);
        let mut joins = Vec::new();
        for i in 0..8u64 {
            let conn = t.connect(&Endpoint::loopback("srv")).unwrap();
            let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(u128::from(i)));
            joins.push(std::thread::spawn(move || {
                for j in 0..20u8 {
                    let got = client.call(target(i), 0, vec![j]).unwrap();
                    assert_eq!(got[8], j);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(server.requests(), 160);
        assert_eq!(server.connections(), 8);
    }

    #[test]
    fn slow_call_does_not_block_fast_call_on_same_connection() {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let dispatcher: Arc<dyn Dispatcher> =
            Arc::new(|_c: SpaceId, _t: WireRep, method: u32, _a: &[u8]| {
                if method == 1 {
                    std::thread::sleep(Duration::from_millis(300));
                }
                Ok(vec![method as u8])
            });
        let _server = RpcServer::start(l, dispatcher, 4);
        let conn = t.connect(&Endpoint::loopback("srv")).unwrap();
        let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(1));

        let slow_client = Arc::clone(&client);
        let slow = std::thread::spawn(move || slow_client.call(target(0), 1, vec![]));
        std::thread::sleep(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        let fast = client.call(target(0), 2, vec![]).unwrap();
        assert_eq!(fast, vec![2]);
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "fast call was blocked by slow call"
        );
        assert_eq!(slow.join().unwrap().unwrap(), vec![1]);
    }

    #[test]
    fn dropped_ack_token_releases_server_completion() {
        use std::sync::atomic::AtomicU64;

        struct Pinning {
            released: Arc<AtomicU64>,
        }
        impl Dispatcher for Pinning {
            fn dispatch(&self, _c: SpaceId, _t: WireRep, _m: u32, _a: &[u8]) -> Dispatch {
                let released = Arc::clone(&self.released);
                Dispatch {
                    outcome: Ok(vec![]),
                    completion: Some(Box::new(move || {
                        released.fetch_add(1, Ordering::SeqCst);
                    })),
                }
            }
        }

        let released = Arc::new(AtomicU64::new(0));
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let _server = RpcServer::start(
            l,
            Arc::new(Pinning {
                released: Arc::clone(&released),
            }),
            2,
        );
        let conn = t.connect(&Endpoint::loopback("srv")).unwrap();
        let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(1));

        let reply = client
            .call_raw(target(0), 0, vec![], Duration::from_secs(5))
            .unwrap();
        assert!(reply.ack.is_some());
        // Not yet acknowledged: the callee's transient pins must still be
        // held (the caller may be registering references).
        assert_eq!(released.load(Ordering::SeqCst), 0);
        drop(reply); // error-path drop sends the ack
        let t0 = std::time::Instant::now();
        while released.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(released.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn saturated_pool_sheds_with_busy() {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let dispatcher: Arc<dyn Dispatcher> =
            Arc::new(|_c: SpaceId, _t: WireRep, _m: u32, _a: &[u8]| {
                std::thread::sleep(Duration::from_millis(200));
                Ok(vec![])
            });
        let server = RpcServer::start_with_queue(l, dispatcher, 1, Some(1));
        let conn = t.connect(&Endpoint::loopback("srv")).unwrap();
        let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(1));

        // 1 worker + 1 queue slot: of six concurrent calls at least one
        // must be shed, and shed calls answer far faster than the 200 ms
        // the method takes.
        let mut joins = Vec::new();
        for _ in 0..6 {
            let c = Arc::clone(&client);
            joins.push(std::thread::spawn(move || {
                c.call_with_timeout(target(0), 0, vec![], Duration::from_secs(5))
            }));
        }
        let mut busy = 0;
        for j in joins {
            if let Err(RpcError::Remote(e)) = j.join().unwrap() {
                assert_eq!(e.kind, RemoteErrorKind::Busy);
                busy += 1;
            }
        }
        assert!(busy >= 1, "no call was shed");
        assert_eq!(server.shed(), busy);
    }

    #[test]
    fn over_quota_client_sheds_with_quota_exceeded() {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let dispatcher: Arc<dyn Dispatcher> =
            Arc::new(|_c: SpaceId, _t: WireRep, _m: u32, _a: &[u8]| {
                std::thread::sleep(Duration::from_millis(200));
                Ok(vec![])
            });
        let server = RpcServer::start_with_config(
            l,
            dispatcher,
            ServerConfig {
                workers: 1,
                queue_limit: Some(64),
                budget: ResourceBudget {
                    max_inflight: Some(2),
                    ..ResourceBudget::unlimited()
                },
                ..ServerConfig::default()
            },
        );
        let conn = t.connect(&Endpoint::loopback("srv")).unwrap();
        let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(1));

        // Six concurrent calls against an in-flight budget of two: the
        // queue has room (global limit 64), so every rejection must be the
        // per-client QuotaExceeded, not Busy.
        let mut joins = Vec::new();
        for _ in 0..6 {
            let c = Arc::clone(&client);
            joins.push(std::thread::spawn(move || {
                c.call_with_timeout(target(0), 0, vec![], Duration::from_secs(5))
            }));
        }
        let mut quota = 0;
        for j in joins {
            if let Err(RpcError::Remote(e)) = j.join().unwrap() {
                assert_eq!(e.kind, RemoteErrorKind::QuotaExceeded);
                quota += 1;
            }
        }
        assert!(quota >= 1, "no call was quota-shed");
        assert_eq!(server.shed_quota(), quota);
        assert_eq!(server.shed_global(), 0);
        assert_eq!(server.shed(), quota);
    }

    #[test]
    fn connection_limit_refuses_excess_connections() {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let server = RpcServer::start_with_config(
            l,
            echo_dispatcher(),
            ServerConfig {
                workers: 2,
                budget: ResourceBudget {
                    max_connections: Some(1),
                    ..ResourceBudget::unlimited()
                },
                ..ServerConfig::default()
            },
        );
        let caller = SpaceId::from_raw(7);
        let conn1 = t.connect(&Endpoint::loopback("srv")).unwrap();
        let c1 = CallClient::new(Arc::from(conn1), caller);
        c1.call(target(1), 0, vec![]).unwrap();
        // Second connection claiming the same identity: its first request
        // is refused with QuotaExceeded and the connection is dropped.
        let conn2 = t.connect(&Endpoint::loopback("srv")).unwrap();
        let c2 = CallClient::new(Arc::from(conn2), caller);
        match c2.call_with_timeout(target(1), 0, vec![], Duration::from_secs(5)) {
            Err(RpcError::Remote(e)) => assert_eq!(e.kind, RemoteErrorKind::QuotaExceeded),
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        assert!(server.shed_quota() >= 1);
        // The first connection keeps working, and a different client may
        // still connect.
        c1.call(target(1), 0, vec![]).unwrap();
        let conn3 = t.connect(&Endpoint::loopback("srv")).unwrap();
        let c3 = CallClient::new(Arc::from(conn3), SpaceId::from_raw(8));
        c3.call(target(1), 0, vec![]).unwrap();
    }

    #[test]
    fn queue_high_water_tracks_backlog() {
        let t = Loopback::new();
        let l = t.listen(&Endpoint::loopback("srv")).unwrap();
        let dispatcher: Arc<dyn Dispatcher> =
            Arc::new(|_c: SpaceId, _t: WireRep, _m: u32, _a: &[u8]| {
                std::thread::sleep(Duration::from_millis(100));
                Ok(vec![])
            });
        let server = RpcServer::start_with_queue(l, dispatcher, 1, Some(16));
        let conn = t.connect(&Endpoint::loopback("srv")).unwrap();
        let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(1));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&client);
            joins.push(std::thread::spawn(move || {
                c.call_with_timeout(target(0), 0, vec![], Duration::from_secs(5))
            }));
        }
        for j in joins {
            j.join().unwrap().unwrap();
        }
        // All four calls completed; at some point at least two sat queued
        // behind the single 100 ms worker (first may have been picked up
        // instantly). The mark persists after the queue drains.
        assert_eq!(server.queue_depth(), 0);
        assert!(server.queue_high_water() >= 2);
    }

    #[test]
    fn stop_tears_down() {
        let (mut server, client) = start_over_loopback();
        server.stop();
        std::thread::sleep(Duration::from_millis(100));
        let got = client.call_with_timeout(target(0), 0, vec![], Duration::from_millis(200));
        assert!(got.is_err());
    }

    #[test]
    fn loopback_server_stays_on_thread_path() {
        let (server, _client) = start_over_loopback();
        assert!(server.reactor_stats().is_none());
    }

    #[cfg(unix)]
    mod reactor_core {
        use super::*;
        use netobj_transport::tcp::Tcp;

        fn start_over_tcp() -> (RpcServer, Arc<CallClient>) {
            let l = Tcp.listen(&Endpoint::tcp("127.0.0.1:0")).unwrap();
            let server = RpcServer::start(l, echo_dispatcher(), 4);
            let conn = Tcp.connect(&server.local_endpoint()).unwrap();
            let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(1));
            (server, client)
        }

        fn wait_until(mut cond: impl FnMut() -> bool) {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while !cond() {
                assert!(
                    std::time::Instant::now() < deadline,
                    "condition not reached in 10s"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }

        #[test]
        fn tcp_server_uses_the_reactor() {
            let (server, client) = start_over_tcp();
            assert!(
                server.reactor_stats().is_some(),
                "tcp + system clock must select the reactor core"
            );
            for i in 0..50u8 {
                let got = client.call(target(7), 0, vec![i]).unwrap();
                assert_eq!(&got[..8], &7u64.to_le_bytes());
                assert_eq!(got[8], i);
            }
            assert_eq!(server.requests(), 50);
            assert_eq!(server.connections(), 1);
            let stats = server.reactor_stats().unwrap();
            assert_eq!(stats.accepted, 1);
            assert_eq!(stats.connections, 1);
        }

        #[test]
        fn slow_call_does_not_block_fast_call_on_reactor() {
            let l = Tcp.listen(&Endpoint::tcp("127.0.0.1:0")).unwrap();
            let dispatcher: Arc<dyn Dispatcher> =
                Arc::new(|_c: SpaceId, _t: WireRep, method: u32, _a: &[u8]| {
                    if method == 1 {
                        std::thread::sleep(Duration::from_millis(300));
                    }
                    Ok(vec![method as u8])
                });
            let server = RpcServer::start(l, dispatcher, 4);
            assert!(server.reactor_stats().is_some());
            let conn = Tcp.connect(&server.local_endpoint()).unwrap();
            let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(1));

            let slow_client = Arc::clone(&client);
            let slow = std::thread::spawn(move || slow_client.call(target(0), 1, vec![]));
            std::thread::sleep(Duration::from_millis(30));
            let t0 = std::time::Instant::now();
            let fast = client.call(target(0), 2, vec![]).unwrap();
            assert_eq!(fast, vec![2]);
            assert!(
                t0.elapsed() < Duration::from_millis(200),
                "fast call was blocked by slow call"
            );
            assert_eq!(slow.join().unwrap().unwrap(), vec![1]);
        }

        #[test]
        fn closed_connections_release_identity_and_quota_state() {
            let l = Tcp.listen(&Endpoint::tcp("127.0.0.1:0")).unwrap();
            let server = RpcServer::start_with_config(
                l,
                echo_dispatcher(),
                ServerConfig {
                    workers: 2,
                    budget: ResourceBudget {
                        max_connections: Some(1),
                        ..ResourceBudget::unlimited()
                    },
                    ..ServerConfig::default()
                },
            );
            assert!(server.reactor_stats().is_some());
            let caller = SpaceId::from_raw(7);
            let conn1 = Tcp.connect(&server.local_endpoint()).unwrap();
            let c1 = CallClient::new(Arc::from(conn1), caller);
            c1.call(target(1), 0, vec![]).unwrap();
            assert_eq!(server.per_client().len(), 1);
            drop(c1);
            // The reactor notices the close and unbinds the identity, so
            // the same client may connect again under its 1-conn budget.
            wait_until(|| server.per_client().is_empty());
            wait_until(|| server.reactor_stats().unwrap().connections == 0);
            let conn2 = Tcp.connect(&server.local_endpoint()).unwrap();
            let c2 = CallClient::new(Arc::from(conn2), caller);
            c2.call(target(1), 0, vec![]).unwrap();
        }

        #[test]
        fn stop_closes_reactor_connections() {
            let (mut server, client) = start_over_tcp();
            client.call(target(1), 0, vec![]).unwrap();
            server.stop();
            let got = client.call_with_timeout(target(0), 0, vec![], Duration::from_secs(1));
            assert!(got.is_err());
        }
    }
}
