//! A fixed-size worker thread pool.
//!
//! The original runtime dispatched each incoming call to a free server
//! thread from a pool; [`ThreadPool`] reproduces that. Jobs are closures;
//! the pool drains its queue on shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A job runnable on a pool worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing queued jobs.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    active: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize, name: &str) -> ThreadPool {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        let active = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let active = Arc::clone(&active);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            active.fetch_add(1, Ordering::Relaxed);
                            job();
                            active.fetch_sub(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            handles,
            active,
        }
    }

    /// Queues a job. Returns false if the pool is shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Number of jobs currently executing (approximate).
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Stops accepting jobs, finishes queued ones, joins the workers.
    pub fn shutdown(&mut self) {
        self.tx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn executes_all_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool = ThreadPool::new(4, "t");
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            assert!(pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = ThreadPool::new(4, "t");
        let barrier = Arc::new(std::sync::Barrier::new(5));
        for _ in 0..4 {
            let b = Arc::clone(&barrier);
            pool.execute(move || {
                b.wait();
            });
        }
        // If jobs were serialised this would deadlock; the main thread is
        // the fifth waiter.
        barrier.wait();
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = ThreadPool::new(0, "t");
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn execute_after_shutdown_fails() {
        let mut pool = ThreadPool::new(1, "t");
        pool.shutdown();
        assert!(!pool.execute(|| {}));
    }
}
