//! A fixed-size worker thread pool with optional admission control.
//!
//! The original runtime dispatched each incoming call to a free server
//! thread from a pool; [`ThreadPool`] reproduces that. Jobs are closures;
//! the pool drains its queue on shutdown. A pool may be built with a
//! bounded queue, in which case [`ThreadPool::try_execute`] *sheds* excess
//! load instead of queueing without limit — the server turns that into a
//! retryable `Busy` reply rather than letting callers time out behind an
//! unbounded backlog.
//!
//! This is the only worker pool in the workspace: both the RPC server and
//! the runtime above it share this implementation (the transport crate's
//! `pool` module is a *connection* pool, not a thread pool).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};

/// A job runnable on a pool worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// The outcome of offering a job to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// The job was queued (or is already running).
    Queued,
    /// The queue is full; the job was rejected without running.
    Saturated,
    /// The pool has shut down; the job was rejected without running.
    ShutDown,
}

/// A fixed-size pool of worker threads executing queued jobs.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    rx: Receiver<Job>,
    handles: Vec<std::thread::JoinHandle<()>>,
    active: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Spawns a pool with `workers` threads (at least one) and an
    /// unbounded job queue.
    pub fn new(workers: usize, name: &str) -> ThreadPool {
        Self::build(workers, name, None)
    }

    /// Spawns a pool whose queue holds at most `queue_limit` waiting jobs;
    /// beyond that, [`ThreadPool::try_execute`] reports saturation.
    pub fn with_queue_limit(workers: usize, name: &str, queue_limit: usize) -> ThreadPool {
        Self::build(workers, name, Some(queue_limit.max(1)))
    }

    fn build(workers: usize, name: &str, queue_limit: Option<usize>) -> ThreadPool {
        let workers = workers.max(1);
        let (tx, rx) = match queue_limit {
            Some(limit) => bounded::<Job>(limit),
            None => unbounded::<Job>(),
        };
        let active = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let active = Arc::clone(&active);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            active.fetch_add(1, Ordering::Relaxed);
                            job();
                            active.fetch_sub(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            rx,
            handles,
            active,
        }
    }

    /// Queues a job, blocking if a bounded queue is full. Returns false if
    /// the pool is shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Offers a job without blocking; a full bounded queue rejects it.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Admit {
        match &self.tx {
            Some(tx) => match tx.try_send(Box::new(job)) {
                Ok(()) => Admit::Queued,
                Err(TrySendError::Full(_)) => Admit::Saturated,
                Err(TrySendError::Disconnected(_)) => Admit::ShutDown,
            },
            None => Admit::ShutDown,
        }
    }

    /// Number of jobs currently executing (approximate).
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Number of jobs waiting in the queue, not yet picked up by a worker
    /// (approximate — the queue-depth gauge of the metrics layer).
    pub fn queued(&self) -> usize {
        self.rx.len()
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Stops accepting jobs, finishes queued ones, joins the workers.
    pub fn shutdown(&mut self) {
        self.tx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn executes_all_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool = ThreadPool::new(4, "t");
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            assert!(pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = ThreadPool::new(4, "t");
        let barrier = Arc::new(std::sync::Barrier::new(5));
        for _ in 0..4 {
            let b = Arc::clone(&barrier);
            pool.execute(move || {
                b.wait();
            });
        }
        // If jobs were serialised this would deadlock; the main thread is
        // the fifth waiter.
        barrier.wait();
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = ThreadPool::new(0, "t");
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn execute_after_shutdown_fails() {
        let mut pool = ThreadPool::new(1, "t");
        pool.shutdown();
        assert!(!pool.execute(|| {}));
        assert_eq!(pool.try_execute(|| {}), Admit::ShutDown);
    }

    #[test]
    fn bounded_pool_sheds_when_saturated() {
        let pool = ThreadPool::with_queue_limit(1, "t", 2);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        // Occupy the single worker...
        assert_eq!(
            pool.try_execute(move || {
                g.wait();
            }),
            Admit::Queued
        );
        std::thread::sleep(Duration::from_millis(30));
        // ...fill the queue...
        assert_eq!(pool.try_execute(|| {}), Admit::Queued);
        assert_eq!(pool.try_execute(|| {}), Admit::Queued);
        // ...and the next offer is shed.
        assert_eq!(pool.try_execute(|| {}), Admit::Saturated);
        gate.wait();
    }

    #[test]
    fn bounded_pool_recovers_after_drain() {
        let pool = ThreadPool::with_queue_limit(1, "t", 1);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            // Mixed offers: whatever is admitted must eventually run.
            if pool.try_execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }) == Admit::Queued
            {
                counter.fetch_add(0, Ordering::Relaxed);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(50));
        assert!(counter.load(Ordering::Relaxed) > 0);
        // Once drained, offers are admitted again.
        assert_eq!(pool.try_execute(|| {}), Admit::Queued);
    }
}
