//! Error types for the RPC layer.

use std::fmt;

use netobj_transport::TransportError;
use netobj_wire::pickle::{Pickle, PickleReader, PickleWriter};
use netobj_wire::WireError;

/// Classification of an error reported by the remote side of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteErrorKind {
    /// The target wireRep names no object exported at the callee.
    NoSuchObject,
    /// The target object has no method with the requested index.
    NoSuchMethod,
    /// The callee could not decode the argument pickle.
    BadArguments,
    /// The method itself failed; the message carries its error text.
    Application,
    /// The callee's runtime rejected the call for another reason.
    Runtime,
    /// The callee's worker pool was saturated and shed the call *before*
    /// dispatching it. The method did not execute; retrying is safe.
    Busy,
    /// The callee refused the call because *this* client exceeded its
    /// resource budget (queue share, in-flight calls, connections, dirty
    /// entries or export slots). The method did not execute — but unlike
    /// [`RemoteErrorKind::Busy`] the failure is not transient congestion:
    /// retrying will keep failing until the client releases resources, so
    /// the resilience layer classifies it as *definite* and does not retry.
    QuotaExceeded,
}

impl RemoteErrorKind {
    fn discriminant(self) -> u64 {
        match self {
            RemoteErrorKind::NoSuchObject => 0,
            RemoteErrorKind::NoSuchMethod => 1,
            RemoteErrorKind::BadArguments => 2,
            RemoteErrorKind::Application => 3,
            RemoteErrorKind::Runtime => 4,
            RemoteErrorKind::Busy => 5,
            RemoteErrorKind::QuotaExceeded => 6,
        }
    }

    fn from_discriminant(d: u64) -> Option<RemoteErrorKind> {
        Some(match d {
            0 => RemoteErrorKind::NoSuchObject,
            1 => RemoteErrorKind::NoSuchMethod,
            2 => RemoteErrorKind::BadArguments,
            3 => RemoteErrorKind::Application,
            4 => RemoteErrorKind::Runtime,
            5 => RemoteErrorKind::Busy,
            6 => RemoteErrorKind::QuotaExceeded,
            _ => return None,
        })
    }
}

/// An error produced by the remote end of a call and shipped back in the
/// reply message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// What went wrong.
    pub kind: RemoteErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl RemoteError {
    /// Builds a remote error.
    pub fn new(kind: RemoteErrorKind, message: impl Into<String>) -> RemoteError {
        RemoteError {
            kind,
            message: message.into(),
        }
    }

    /// Shorthand for an application-level failure.
    pub fn app(message: impl Into<String>) -> RemoteError {
        RemoteError::new(RemoteErrorKind::Application, message)
    }
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

impl std::error::Error for RemoteError {}

impl Pickle for RemoteError {
    fn pickle(&self, w: &mut PickleWriter) {
        w.begin_variant(self.kind.discriminant());
        self.message.pickle(w);
    }
    fn unpickle(r: &mut PickleReader<'_>) -> netobj_wire::Result<Self> {
        let d = r.begin_variant()?;
        let kind = RemoteErrorKind::from_discriminant(d)
            .ok_or(WireError::OutOfRange("remote error kind"))?;
        let message = String::unpickle(r)?;
        Ok(RemoteError { kind, message })
    }
}

/// An error surfaced to the caller of a remote invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The transport failed (connection lost, refused, partitioned...).
    Transport(TransportError),
    /// A message could not be encoded or decoded.
    Wire(WireError),
    /// The remote side reported an error.
    Remote(RemoteError),
    /// No reply arrived within the call deadline.
    ///
    /// Per the paper's failure model, a timed-out call is *ambiguous*: the
    /// callee may or may not have executed it. The collector's fault
    /// handling (strong clean calls, retries) exists for exactly this case.
    Timeout,
    /// The client has been shut down.
    Closed,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Transport(e) => write!(f, "transport: {e}"),
            RpcError::Wire(e) => write!(f, "wire: {e}"),
            RpcError::Remote(e) => write!(f, "remote: {e}"),
            RpcError::Timeout => write!(f, "call timed out"),
            RpcError::Closed => write!(f, "rpc client closed"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<TransportError> for RpcError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Timeout => RpcError::Timeout,
            other => RpcError::Transport(other),
        }
    }
}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Wire(e)
    }
}

impl From<RemoteError> for RpcError {
    fn from(e: RemoteError) -> Self {
        RpcError::Remote(e)
    }
}

impl RpcError {
    /// True if the call's effect at the callee is unknown (it may have
    /// executed): timeouts and mid-call connection losses.
    pub fn is_ambiguous(&self) -> bool {
        matches!(
            self,
            RpcError::Timeout | RpcError::Transport(TransportError::Closed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_error_pickles() {
        for kind in [
            RemoteErrorKind::NoSuchObject,
            RemoteErrorKind::NoSuchMethod,
            RemoteErrorKind::BadArguments,
            RemoteErrorKind::Application,
            RemoteErrorKind::Runtime,
            RemoteErrorKind::Busy,
            RemoteErrorKind::QuotaExceeded,
        ] {
            let e = RemoteError::new(kind, "boom");
            let bytes = e.to_pickle_bytes();
            assert_eq!(RemoteError::from_pickle_bytes(&bytes).unwrap(), e);
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut w = PickleWriter::new();
        w.begin_variant(99);
        String::from("x").pickle(&mut w);
        assert!(RemoteError::from_pickle_bytes(w.as_bytes()).is_err());
    }

    #[test]
    fn ambiguity_classification() {
        assert!(RpcError::Timeout.is_ambiguous());
        assert!(RpcError::Transport(TransportError::Closed).is_ambiguous());
        assert!(!RpcError::Remote(RemoteError::app("x")).is_ambiguous());
        assert!(!RpcError::Transport(TransportError::ConnectionRefused("e".into())).is_ambiguous());
    }

    #[test]
    fn transport_timeout_maps_to_rpc_timeout() {
        assert_eq!(RpcError::from(TransportError::Timeout), RpcError::Timeout);
    }
}
