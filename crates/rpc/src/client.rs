//! The multiplexing call client.
//!
//! One [`CallClient`] wraps one connection to a remote space. Any number of
//! threads may issue calls concurrently; a dedicated demux thread reads
//! replies off the connection and completes the matching pending call.
//! This reproduces the connection multiplexing of the original runtime,
//! where many client threads shared the cached connection to a space.
//!
//! Result bytes are [`Bytes`] slices of the received reply frame: the demux
//! thread hands the waiting caller a shared view of the transport's read
//! buffer, so reply payloads reach unmarshaling without a copy.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};
use netobj_transport::clock::recv_deadline;
use netobj_transport::{ClockHandle, Conn};
use netobj_wire::{SpaceId, WireRep};
use parking_lot::Mutex;

use crate::error::RpcError;
use crate::msg::{Request, RpcMsg, SendBuf};
use crate::resilience::CallFailure;
use crate::{FibHashMap, Result};

thread_local! {
    /// Per-thread request encoder. A caller thread's previous request
    /// frame is normally released (the server drops it after dispatch) by
    /// the time the thread issues its next call, so steady-state every
    /// request this thread sends reuses one allocation.
    static REQ_BUF: std::cell::RefCell<SendBuf> = std::cell::RefCell::new(SendBuf::new());
}

/// Default per-call deadline.
pub const DEFAULT_CALL_TIMEOUT: Duration = Duration::from_secs(30);

/// What the demux thread delivers to a waiting caller: the reply payload
/// plus its ack flag, or a failure carrying whether the request was
/// observed as *written* when the connection died (the teardown drain's
/// classification input).
type PendingResult = std::result::Result<(Bytes, bool), (RpcError, bool)>;

struct PendingSlot {
    tx: Sender<PendingResult>,
    /// True once the request frame has been written to the connection.
    /// The teardown drain reads it to separate *not delivered* (safe to
    /// retry) from *ambiguous* (the callee may have executed the call).
    sent: bool,
}

struct Shared {
    pending: Mutex<FibHashMap<u64, PendingSlot>>,
    closed: AtomicBool,
}

/// Obligation to acknowledge a reply whose sender holds transient pins.
///
/// The collector protocol requires the *receiver* of an object reference to
/// acknowledge only after registering the reference with its owner (the
/// dirty call). Callers that unmarshal references must therefore hold this
/// token across unmarshaling and call [`AckToken::ack`] afterwards. If the
/// token is dropped instead (including on error paths), the ack is sent
/// anyway so the callee's pins cannot leak.
pub struct AckToken {
    conn: Arc<dyn Conn>,
    call_id: u64,
    sent: bool,
}

impl AckToken {
    /// Sends the acknowledgement now.
    pub fn ack(mut self) {
        self.send_once();
    }

    fn send_once(&mut self) {
        if !self.sent {
            self.sent = true;
            let msg = RpcMsg::ReplyAck(self.call_id);
            let _ = self.conn.send(msg.encode());
        }
    }
}

impl Drop for AckToken {
    fn drop(&mut self) {
        self.send_once();
    }
}

/// The outcome of a raw call: result bytes plus a pending acknowledgement
/// obligation if the callee requested one.
pub struct CallReply {
    /// The pickled result — a shared slice of the reply frame.
    pub bytes: Bytes,
    /// Present when the reply had `needs_ack` set.
    pub ack: Option<AckToken>,
}

impl std::fmt::Debug for CallReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallReply")
            .field("bytes", &self.bytes.len())
            .field("needs_ack", &self.ack.is_some())
            .finish()
    }
}

/// A client end of an RPC connection: issues calls, demultiplexes replies.
pub struct CallClient {
    conn: Arc<dyn Conn>,
    caller: SpaceId,
    clock: ClockHandle,
    next_id: AtomicU64,
    shared: Arc<Shared>,
    demux: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl CallClient {
    /// Wraps `conn`, identifying outgoing calls as coming from `caller`.
    ///
    /// Spawns the demux thread immediately. Reply deadlines run on the
    /// system clock; use [`CallClient::with_clock`] to time them on a
    /// virtual clock instead.
    pub fn new(conn: Arc<dyn Conn>, caller: SpaceId) -> Arc<CallClient> {
        CallClient::with_clock(conn, caller, ClockHandle::system())
    }

    /// Like [`CallClient::new`], but call timeouts are measured on `clock`.
    pub fn with_clock(conn: Arc<dyn Conn>, caller: SpaceId, clock: ClockHandle) -> Arc<CallClient> {
        let shared = Arc::new(Shared {
            pending: Mutex::new(FibHashMap::default()),
            closed: AtomicBool::new(false),
        });
        let client = Arc::new(CallClient {
            conn: Arc::clone(&conn),
            caller,
            clock,
            next_id: AtomicU64::new(1),
            shared: Arc::clone(&shared),
            demux: Mutex::new(None),
        });
        let handle = std::thread::Builder::new()
            .name("rpc-demux".into())
            .spawn(move || demux_loop(conn, shared))
            .expect("spawn rpc demux");
        *client.demux.lock() = Some(handle);
        client
    }

    /// The space identity stamped on outgoing requests.
    pub fn caller(&self) -> SpaceId {
        self.caller
    }

    /// Issues a call and waits for its reply (default timeout).
    ///
    /// Any acknowledgement obligation is discharged immediately; use
    /// [`CallClient::call_raw`] when the result may carry object references
    /// that must be registered before acknowledging.
    pub fn call(&self, target: WireRep, method: u32, args: impl Into<Bytes>) -> Result<Bytes> {
        self.call_with_timeout(target, method, args, DEFAULT_CALL_TIMEOUT)
    }

    /// Issues a call and waits at most `timeout` for the reply, discharging
    /// any acknowledgement obligation immediately.
    pub fn call_with_timeout(
        &self,
        target: WireRep,
        method: u32,
        args: impl Into<Bytes>,
        timeout: Duration,
    ) -> Result<Bytes> {
        // Dropping `ack` (inside CallReply) sends the acknowledgement.
        self.call_raw(target, method, args, timeout)
            .map(|r| r.bytes)
    }

    /// Issues a call, returning both the result bytes and any pending
    /// acknowledgement obligation.
    pub fn call_raw(
        &self,
        target: WireRep,
        method: u32,
        args: impl Into<Bytes>,
        timeout: Duration,
    ) -> Result<CallReply> {
        self.call_raw_classified(target, method, args, timeout)
            .map_err(|f| f.error)
    }

    /// Like [`CallClient::call_raw`], but a failure carries its
    /// [`FailureClass`]: this is the only layer that knows whether the
    /// request was written to the connection before the failure, which is
    /// what separates *not delivered* (safe to retry) from *ambiguous*
    /// (the callee may have executed the call).
    ///
    /// [`FailureClass`]: crate::resilience::FailureClass
    pub fn call_raw_classified(
        &self,
        target: WireRep,
        method: u32,
        args: impl Into<Bytes>,
        timeout: Duration,
    ) -> std::result::Result<CallReply, CallFailure> {
        self.call_raw_traced(target, method, args, timeout, 0, 0)
    }

    /// Like [`CallClient::call_raw_classified`], but stamps the request
    /// with causal span identifiers (`0` = absent) so the callee can
    /// continue the caller's trace.
    pub fn call_raw_traced(
        &self,
        target: WireRep,
        method: u32,
        args: impl Into<Bytes>,
        timeout: Duration,
        trace_id: u64,
        span_id: u64,
    ) -> std::result::Result<CallReply, CallFailure> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(CallFailure::classify(RpcError::Closed, false));
        }
        let call_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let msg = RpcMsg::Request(Request {
            call_id,
            caller: self.caller,
            target,
            method,
            args: args.into(),
            trace_id,
            span_id,
        });
        let frame = REQ_BUF.with(|b| b.borrow_mut().encode(&msg));
        let (tx, rx) = bounded(1);
        // The slot is inserted already marked *sent*: the flag only feeds
        // the teardown drain, and every path where the send below fails
        // returns a locally-classified *not delivered* without consulting
        // the drain's verdict — so marking optimistically never misreports,
        // and the write path takes one pending-map lock instead of two.
        self.shared
            .pending
            .lock()
            .insert(call_id, PendingSlot { tx, sent: true });

        if let Err(e) = self.conn.send(frame) {
            // Nothing reached the peer: cleanly *not delivered*. The local
            // send outcome overrides whatever a concurrent teardown drain
            // observed from the optimistic flag.
            self.shared.pending.lock().remove(&call_id);
            return Err(CallFailure::classify(e.into(), false));
        }

        match recv_deadline(self.clock.as_dyn(), &rx, timeout) {
            Ok(Ok((bytes, needs_ack))) => Ok(CallReply {
                bytes,
                ack: needs_ack.then(|| AckToken {
                    conn: Arc::clone(&self.conn),
                    call_id,
                    sent: false,
                }),
            }),
            // We are past a successful send, so the request was written no
            // matter what the drain observed: classify with that fact.
            Ok(Err((e, _sent_at_drain))) => Err(CallFailure::classify(e, true)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                self.shared.pending.lock().remove(&call_id);
                Err(CallFailure::classify(RpcError::Timeout, true))
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(CallFailure::classify(RpcError::Closed, true))
            }
        }
    }

    /// True if the underlying connection has failed or been closed.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Closes the connection; outstanding calls fail.
    ///
    /// By the time this returns the demux thread has exited, which
    /// guarantees every pending-map entry has been drained with its
    /// delivery classification — callers never hang on a dead connection.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
        self.conn.close();
        if let Some(h) = self.demux.lock().take() {
            let _ = h.join();
        }
    }
}

fn demux_loop(conn: Arc<dyn Conn>, shared: Arc<Shared>) {
    while let Ok(frame) = conn.recv() {
        let msg = match RpcMsg::decode(&frame) {
            Ok(m) => m,
            // A malformed frame poisons the connection: drop it so callers
            // see a closed transport rather than silently missing replies.
            Err(_) => break,
        };
        if let RpcMsg::Reply(reply) = msg {
            let waiter = shared.pending.lock().remove(&reply.call_id);
            match waiter {
                Some(slot) => {
                    let needs_ack = reply.needs_ack;
                    let _ = slot.tx.send(
                        reply
                            .outcome
                            .map(|bytes| (bytes, needs_ack))
                            // A reply-borne error was definitely delivered.
                            .map_err(|e| (RpcError::Remote(e), true)),
                    );
                }
                // Late reply for a timed-out call: the caller will never
                // process it, so discharge any ack obligation here lest the
                // callee's transient pins wait out their full timeout.
                None => {
                    if reply.needs_ack {
                        let _ = conn.send(RpcMsg::ReplyAck(reply.call_id).encode());
                    }
                }
            }
        }
        // Requests arriving at a client end are ignored: connections are
        // asymmetric (caller connects, callee serves), as in the original.
    }
    shared.closed.store(true, Ordering::Release);
    conn.close();
    // Teardown drain: fail every pending call before this thread exits,
    // classifying each by whether its request frame was written. Unsent
    // entries are *not delivered* (the reconnect path may retry them
    // freely); sent entries are *ambiguous* (the callee may have executed
    // the call, so only idempotent methods should retry).
    let mut pending = shared.pending.lock();
    for (_, slot) in pending.drain() {
        let _ = slot.tx.send(Err((RpcError::Closed, slot.sent)));
    }
}

impl Drop for CallClient {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        self.conn.close();
        if let Some(h) = self.demux.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Reply;
    use crate::resilience::FailureClass;
    use netobj_transport::chan::ChanConn;
    use netobj_wire::ObjIx;

    fn wired_client() -> (Arc<CallClient>, Box<dyn Conn>) {
        let (a, b) = ChanConn::pair(None, None);
        let client = CallClient::new(Arc::new(a), SpaceId::from_raw(1));
        (client, Box::new(b))
    }

    fn target() -> WireRep {
        WireRep::new(SpaceId::from_raw(2), ObjIx(5))
    }

    /// A minimal hand-rolled server loop answering every request with its
    /// own args echoed back.
    fn echo_server(server: Box<dyn Conn>) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            while let Ok(frame) = server.recv() {
                if let Ok(RpcMsg::Request(rq)) = RpcMsg::decode(&frame) {
                    let reply = RpcMsg::Reply(Reply {
                        call_id: rq.call_id,
                        outcome: Ok(rq.args),
                        needs_ack: false,
                    });
                    if server.send(reply.encode()).is_err() {
                        break;
                    }
                }
            }
        })
    }

    #[test]
    fn call_and_reply() {
        let (client, server) = wired_client();
        let _h = echo_server(server);
        let got = client.call(target(), 0, vec![1, 2, 3]).unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_calls_demultiplex() {
        let (client, server) = wired_client();
        let _h = echo_server(server);
        let mut joins = Vec::new();
        for i in 0..16u8 {
            let c = Arc::clone(&client);
            joins.push(std::thread::spawn(move || {
                let got = c.call(target(), 0, vec![i; 4]).unwrap();
                assert_eq!(got, vec![i; 4]);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn timeout_when_no_reply() {
        let (client, _server) = wired_client();
        let got = client.call_with_timeout(target(), 0, vec![], Duration::from_millis(50));
        assert_eq!(got.unwrap_err(), RpcError::Timeout);
        // The pending slot is cleaned up.
        assert!(client.shared.pending.lock().is_empty());
    }

    #[test]
    fn remote_error_propagates() {
        let (client, server) = wired_client();
        std::thread::spawn(move || {
            let frame = server.recv().unwrap();
            let RpcMsg::Request(rq) = RpcMsg::decode(&frame).unwrap() else {
                panic!("expected request")
            };
            let reply = RpcMsg::Reply(Reply {
                call_id: rq.call_id,
                outcome: Err(crate::RemoteError::app("kaboom")),
                needs_ack: false,
            });
            server.send(reply.encode()).unwrap();
        });
        match client.call(target(), 0, vec![]) {
            Err(RpcError::Remote(e)) => assert_eq!(e.message, "kaboom"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn connection_loss_fails_pending_calls() {
        let (client, server) = wired_client();
        let c = Arc::clone(&client);
        let h = std::thread::spawn(move || c.call(target(), 0, vec![]));
        std::thread::sleep(Duration::from_millis(30));
        server.close();
        let got = h.join().unwrap();
        assert!(matches!(
            got,
            Err(RpcError::Closed) | Err(RpcError::Transport(_))
        ));
        assert!(client.is_closed());
    }

    /// The teardown regression for the reconnect path: a call that was
    /// *written* when the connection died must come back `Ambiguous`
    /// (never `NotDelivered` — the callee may have executed it), and the
    /// pending map must be fully drained by the time `close` returns, so
    /// a reconnecting caller cannot leak or double-complete slots.
    #[test]
    fn teardown_classifies_inflight_call_ambiguous_and_drains_map() {
        let (client, server) = wired_client();
        let c = Arc::clone(&client);
        let h = std::thread::spawn(move || {
            c.call_raw_classified(target(), 0, vec![1], Duration::from_secs(5))
        });
        // Let the request go out, then kill the connection under it.
        std::thread::sleep(Duration::from_millis(50));
        server.close();
        let failure = h.join().unwrap().unwrap_err();
        assert_eq!(
            failure.class,
            FailureClass::Ambiguous,
            "an in-flight call must not look safely retryable"
        );
        client.close(); // joins the demux thread
        assert!(client.shared.pending.lock().is_empty());
    }

    /// White-box check of the teardown drain: an entry whose request was
    /// never written drains as *not delivered*; a written one drains as
    /// *ambiguous*.
    #[test]
    fn drain_classifies_by_sent_flag() {
        let (client, server) = wired_client();
        let (unsent_tx, unsent_rx) = bounded(1);
        let (sent_tx, sent_rx) = bounded(1);
        {
            let mut pending = client.shared.pending.lock();
            pending.insert(
                901,
                PendingSlot {
                    tx: unsent_tx,
                    sent: false,
                },
            );
            pending.insert(
                902,
                PendingSlot {
                    tx: sent_tx,
                    sent: true,
                },
            );
        }
        server.close();
        client.close(); // demux has drained by the time this returns
        let (e, sent) = unsent_rx.try_recv().unwrap().unwrap_err();
        assert_eq!(
            CallFailure::classify(e, sent).class,
            FailureClass::NotDelivered
        );
        let (e, sent) = sent_rx.try_recv().unwrap().unwrap_err();
        assert_eq!(
            CallFailure::classify(e, sent).class,
            FailureClass::Ambiguous
        );
    }

    #[test]
    fn malformed_reply_closes_connection() {
        let (client, server) = wired_client();
        server.send(Bytes::from(vec![0xff, 0xff, 0xff])).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert!(client.is_closed());
        assert_eq!(
            client.call(target(), 0, vec![]).unwrap_err(),
            RpcError::Closed
        );
    }

    /// A server answering one request with `needs_ack` set, then counting
    /// every `ReplyAck` that arrives.
    fn acking_server(
        server: Box<dyn Conn>,
    ) -> (
        Arc<std::sync::atomic::AtomicU64>,
        std::thread::JoinHandle<()>,
    ) {
        let acks = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let acks2 = Arc::clone(&acks);
        let h = std::thread::spawn(move || {
            while let Ok(frame) = server.recv() {
                match RpcMsg::decode(&frame) {
                    Ok(RpcMsg::Request(rq)) => {
                        let reply = RpcMsg::Reply(Reply {
                            call_id: rq.call_id,
                            outcome: Ok(Bytes::from(vec![0xab])),
                            needs_ack: true,
                        });
                        if server.send(reply.encode()).is_err() {
                            break;
                        }
                    }
                    Ok(RpcMsg::ReplyAck(_)) => {
                        acks2.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => break,
                }
            }
        });
        (acks, h)
    }

    #[test]
    fn dropped_ack_token_sends_ack_exactly_once() {
        let (client, server) = wired_client();
        let (acks, _h) = acking_server(server);
        let reply = client
            .call_raw(target(), 0, vec![], Duration::from_secs(5))
            .unwrap();
        assert!(reply.ack.is_some());
        // Simulates unmarshaling failing partway: the reply (token
        // included) is dropped on an error path without an explicit ack.
        drop(reply);
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(acks.load(Ordering::SeqCst), 1);
        // No second ack ever follows.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(acks.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn explicit_ack_is_not_duplicated_by_drop() {
        let (client, server) = wired_client();
        let (acks, _h) = acking_server(server);
        let reply = client
            .call_raw(target(), 0, vec![], Duration::from_secs(5))
            .unwrap();
        reply.ack.unwrap().ack(); // consumes the token; Drop runs after send_once
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(acks.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn late_reply_after_timeout_is_acked_by_demux() {
        let (client, server) = wired_client();
        // First call times out (no server running yet)...
        let got = client.call_with_timeout(target(), 0, vec![], Duration::from_millis(50));
        assert_eq!(got.unwrap_err(), RpcError::Timeout);
        // ...then the reply arrives late, with an ack obligation. The demux
        // thread must discharge it: nobody else will.
        let frame = server.recv().unwrap();
        let RpcMsg::Request(rq) = RpcMsg::decode(&frame).unwrap() else {
            panic!("expected request");
        };
        let reply = RpcMsg::Reply(Reply {
            call_id: rq.call_id,
            outcome: Ok(Bytes::new()),
            needs_ack: true,
        });
        server.send(reply.encode()).unwrap();
        let frame = server.recv().unwrap();
        assert!(matches!(
            RpcMsg::decode(&frame).unwrap(),
            RpcMsg::ReplyAck(id) if id == rq.call_id
        ));
    }

    #[test]
    fn classified_timeout_is_ambiguous() {
        let (client, _server) = wired_client();
        let err = client
            .call_raw_classified(target(), 0, vec![], Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err.error, RpcError::Timeout);
        assert_eq!(err.class, FailureClass::Ambiguous);
    }

    #[test]
    fn classified_send_failure_is_not_delivered() {
        let (client, server) = wired_client();
        server.close();
        std::thread::sleep(Duration::from_millis(100));
        let err = client
            .call_raw_classified(target(), 0, vec![], Duration::from_millis(200))
            .unwrap_err();
        assert_eq!(err.class, FailureClass::NotDelivered);
    }

    #[test]
    fn call_after_close_fails_fast() {
        let (client, _server) = wired_client();
        client.close();
        assert_eq!(
            client.call(target(), 0, vec![]).unwrap_err(),
            RpcError::Closed
        );
    }
}
