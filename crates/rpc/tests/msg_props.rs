//! Property-based tests for the RPC message format, centred on the span
//! header added to requests: ids round-trip bit-exactly for every frame
//! kind, and the original 5-field request form (peers predating the span
//! header) always decodes with the ids reported absent.

use proptest::prelude::*;

use netobj_rpc::msg::{Reply, Request, RpcMsg};
use netobj_rpc::{RemoteError, RemoteErrorKind};
use netobj_wire::pickle::{Pickle, PickleWriter};
use netobj_wire::{ObjIx, SpaceId, WireRep};

fn arb_request() -> impl Strategy<Value = Request> {
    (
        (any::<u64>(), any::<u128>(), any::<u128>(), any::<u64>()),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64)),
        // Include 0 ("absent") with its natural probability plus both
        // all-absent and all-present corners below.
        (any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((call_id, caller, ts, tix), (method, args), (trace_id, span_id))| Request {
                call_id,
                caller: SpaceId::from_raw(caller),
                target: WireRep::new(SpaceId::from_raw(ts), ObjIx(tix)),
                method,
                args: args.into(),
                trace_id,
                span_id,
            },
        )
}

fn arb_msg() -> impl Strategy<Value = RpcMsg> {
    prop_oneof![
        arb_request().prop_map(RpcMsg::Request),
        (
            any::<u64>(),
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(call_id, needs_ack, bytes)| RpcMsg::Reply(Reply {
                call_id,
                outcome: Ok(bytes.into()),
                needs_ack,
            })),
        (any::<u64>(), any::<bool>(), ".*").prop_map(|(call_id, needs_ack, m)| RpcMsg::Reply(
            Reply {
                call_id,
                outcome: Err(RemoteError::new(RemoteErrorKind::NoSuchObject, m)),
                needs_ack,
            }
        )),
        any::<u64>().prop_map(RpcMsg::ReplyAck),
    ]
}

proptest! {
    /// Every message kind round-trips bit-exactly, span ids included.
    #[test]
    fn messages_roundtrip(m in arb_msg()) {
        let bytes = m.to_pickle_bytes();
        prop_assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    /// Requests with the span ids explicitly absent (0,0) — what we send
    /// on behalf of untraced callers — survive the trip unchanged.
    #[test]
    fn absent_ids_roundtrip(rq in arb_request()) {
        let m = RpcMsg::Request(Request { trace_id: 0, span_id: 0, ..rq });
        let bytes = m.to_pickle_bytes();
        prop_assert_eq!(RpcMsg::from_pickle_bytes(&bytes).unwrap(), m);
    }

    /// A request hand-encoded in the original 5-field format (an old peer
    /// that has never heard of spans) decodes to the same request with
    /// both ids absent.
    #[test]
    fn old_format_decodes_with_ids_absent(rq in arb_request()) {
        let mut w = PickleWriter::new();
        w.begin_variant(0); // TAG_REQUEST
        w.begin_record(5);
        rq.call_id.pickle(&mut w);
        rq.caller.pickle(&mut w);
        rq.target.pickle(&mut w);
        rq.method.pickle(&mut w);
        w.put_bytes(&rq.args);
        let decoded = RpcMsg::from_pickle_bytes(w.as_bytes()).unwrap();
        prop_assert_eq!(
            decoded,
            RpcMsg::Request(Request { trace_id: 0, span_id: 0, ..rq })
        );
    }

    /// Decoding truncated request bytes never panics (totality of the
    /// decoder over the new 7-field form).
    #[test]
    fn truncated_requests_never_panic(rq in arb_request(), cut in 0usize..200) {
        let bytes = RpcMsg::Request(rq).to_pickle_bytes();
        let cut = cut.min(bytes.len());
        let _ = RpcMsg::from_pickle_bytes(&bytes[..cut]);
    }
}
