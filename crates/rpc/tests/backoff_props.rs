//! Property tests for the decorrelated-jitter retry backoff.
//!
//! The contract the resilient call layer depends on: every sampled delay
//! stays within `[base_delay, max_delay]`, the whole sequence is a pure
//! function of `(policy, seed)`, and the sequence never stops growing
//! room for later retries (the running cap is monotone up to the
//! ceiling). These are the properties that make retry storms bounded and
//! chaos schedules reproducible.

use std::time::Duration;

use netobj_rpc::{Backoff, RetryPolicy};
use proptest::prelude::*;

fn policy(base_us: u64, extra_us: u64, attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts: attempts,
        base_delay: Duration::from_micros(base_us),
        max_delay: Duration::from_micros(base_us + extra_us),
        attempt_timeout: None,
    }
}

proptest! {
    /// Every delay drawn over a long sequence lies within
    /// `[base_delay, max_delay]`, for any well-formed policy.
    #[test]
    fn delays_stay_within_policy_bounds(
        base_us in 0u64..50_000,
        extra_us in 0u64..500_000,
        seed in any::<u64>(),
    ) {
        let p = policy(base_us, extra_us, u32::MAX);
        let mut b = Backoff::new(p.clone(), seed);
        for i in 0..64 {
            let d = b.next_delay();
            prop_assert!(
                d >= p.base_delay && d <= p.max_delay,
                "delay {i} = {d:?} outside [{:?}, {:?}] (seed {seed})",
                p.base_delay,
                p.max_delay
            );
        }
    }

    /// The sequence is a pure function of the seed: two `Backoff`s with
    /// the same policy and seed produce identical delays, which is what
    /// makes a replayed chaos schedule deterministic.
    #[test]
    fn sequence_reproducible_from_seed(
        base_us in 1u64..20_000,
        extra_us in 0u64..200_000,
        seed in any::<u64>(),
    ) {
        let p = policy(base_us, extra_us, u32::MAX);
        let mut a = Backoff::new(p.clone(), seed);
        let mut b = Backoff::new(p, seed);
        let first: Vec<Duration> = (0..32).map(|_| a.next_delay()).collect();
        let second: Vec<Duration> = (0..32).map(|_| b.next_delay()).collect();
        prop_assert_eq!(first, second);
    }

    /// Different seeds decorrelate: with a non-degenerate jitter window,
    /// two seeds disagree somewhere in the first few draws (splitmix64
    /// scrambles even adjacent seeds).
    #[test]
    fn seeds_decorrelate(seed in any::<u64>()) {
        let p = policy(1_000, 1_000_000, u32::MAX);
        let mut a = Backoff::new(p.clone(), seed);
        let mut b = Backoff::new(p, seed.wrapping_add(1));
        let diverged = (0..16).any(|_| a.next_delay() != b.next_delay());
        prop_assert!(diverged, "seeds {seed} and {} never diverged", seed.wrapping_add(1));
    }

    /// `attempts_remain` honours `max_attempts` exactly: after
    /// `max_attempts - 1` drawn delays (retries), no attempt remains.
    #[test]
    fn attempt_budget_is_exact(attempts in 1u32..20, seed in any::<u64>()) {
        let mut b = Backoff::new(policy(10, 100, attempts), seed);
        let mut retries = 0u32;
        while b.attempts_remain() {
            b.next_delay();
            retries += 1;
            prop_assert!(retries < 1_000, "runaway retry loop");
        }
        prop_assert_eq!(retries, attempts - 1);
    }
}
