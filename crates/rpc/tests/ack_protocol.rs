//! Integration tests for the reply-acknowledgement protocol.
//!
//! These verify the property the collector depends on: a completion hook
//! registered by the dispatcher runs exactly once — when the caller
//! acknowledges, when the ack times out, or when the connection dies —
//! and, in the acknowledged case, only *after* the caller has finished
//! processing the reply.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use netobj_rpc::server::Dispatch;
use netobj_rpc::{CallClient, Dispatcher, RpcServer};
use netobj_transport::loopback::Loopback;
use netobj_transport::{Endpoint, Transport};
use netobj_wire::{ObjIx, SpaceId, WireRep};

struct PinningDispatcher {
    released: Arc<AtomicU64>,
}

impl Dispatcher for PinningDispatcher {
    fn dispatch(&self, _c: SpaceId, _t: WireRep, _m: u32, _a: &[u8]) -> Dispatch {
        let released = Arc::clone(&self.released);
        Dispatch {
            outcome: Ok(vec![1]),
            completion: Some(Box::new(move || {
                released.fetch_add(1, Ordering::SeqCst);
            })),
        }
    }
}

fn setup() -> (RpcServer, Arc<CallClient>, Arc<AtomicU64>) {
    let released = Arc::new(AtomicU64::new(0));
    let t = Loopback::new();
    let l = t.listen(&Endpoint::loopback("srv")).unwrap();
    let server = RpcServer::start(
        l,
        Arc::new(PinningDispatcher {
            released: Arc::clone(&released),
        }),
        2,
    );
    let conn = t.connect(&Endpoint::loopback("srv")).unwrap();
    let client = CallClient::new(Arc::from(conn), SpaceId::from_raw(1));
    (server, client, released)
}

fn target() -> WireRep {
    WireRep::new(SpaceId::from_raw(2), ObjIx(3))
}

#[test]
fn completion_runs_after_explicit_ack() {
    let (_server, client, released) = setup();
    let reply = client
        .call_raw(target(), 0, vec![], Duration::from_secs(5))
        .unwrap();
    let ack = reply.ack.expect("needs_ack should be set");
    // Completion must not have run while we "process" the reply.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(released.load(Ordering::SeqCst), 0);
    ack.ack();
    // Acks are async; give the server a moment.
    for _ in 0..100 {
        if released.load(Ordering::SeqCst) == 1 {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("completion did not run after ack");
}

#[test]
fn completion_runs_when_token_dropped() {
    let (_server, client, released) = setup();
    let reply = client
        .call_raw(target(), 0, vec![], Duration::from_secs(5))
        .unwrap();
    drop(reply.ack);
    for _ in 0..100 {
        if released.load(Ordering::SeqCst) == 1 {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("completion did not run after token drop");
}

#[test]
fn convenience_call_auto_acks() {
    let (_server, client, released) = setup();
    let _ = client.call(target(), 0, vec![]).unwrap();
    for _ in 0..100 {
        if released.load(Ordering::SeqCst) == 1 {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("completion did not run after auto-ack");
}

#[test]
fn completion_runs_when_connection_dies_without_ack() {
    let (_server, client, released) = setup();
    let reply = client
        .call_raw(target(), 0, vec![], Duration::from_secs(5))
        .unwrap();
    // Keep the token alive but kill the connection: the server must not
    // leak the completion.
    let token = reply.ack;
    client.close();
    for _ in 0..200 {
        if released.load(Ordering::SeqCst) == 1 {
            drop(token);
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("completion did not run after connection loss");
}

#[test]
fn completion_runs_exactly_once() {
    let (_server, client, released) = setup();
    let reply = client
        .call_raw(target(), 0, vec![], Duration::from_secs(5))
        .unwrap();
    reply.ack.expect("token").ack();
    std::thread::sleep(Duration::from_millis(200));
    // Close the connection afterwards; drain must not re-run it.
    client.close();
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(released.load(Ordering::SeqCst), 1);
}
