//! The network object agent (`netobjd`).
//!
//! Network Objects bootstraps distributed computations through a per-host
//! *agent*: a daemon owning a name table through which processes export
//! their first object ("bind it to a name at the agent") and import their
//! first reference ("look the name up at the agent"). Every further
//! reference flows through ordinary method calls.
//!
//! The agent is itself a network object, exported at the reserved object
//! index 1 of the space that runs it, so the full machinery (dirty calls,
//! surrogates, marshaling) applies to it too — exactly as in the original
//! system.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use netobj::{network_object, NetResult, Space};
//! use netobj::transport::loopback::Loopback;
//! use netobj::transport::Endpoint;
//! use netobj_agent::Agent; // the agent's trait: put/get/remove/list
//!
//! network_object! {
//!     /// A trivial service.
//!     pub interface Echo ("demo.Echo"): client EchoClient, export EchoExport {
//!         0 => fn echo(&self, s: String) -> String;
//!     }
//! }
//! struct Impl;
//! impl Echo for Impl {
//!     fn echo(&self, s: String) -> NetResult<String> { Ok(s) }
//! }
//!
//! let net = Loopback::new();
//! // A space running an agent (in production, one per host).
//! let host = Space::builder()
//!     .transport(Arc::new(Arc::clone(&net)))
//!     .listen(Endpoint::loopback("host"))
//!     .build()
//!     .unwrap();
//! netobj_agent::serve(&host).unwrap();
//!
//! // A server registers its root object under a name.
//! let server = Space::builder()
//!     .transport(Arc::new(Arc::clone(&net)))
//!     .listen(Endpoint::loopback("server"))
//!     .build()
//!     .unwrap();
//! let agent = netobj_agent::connect(&server, &Endpoint::loopback("host")).unwrap();
//! agent
//!     .put("echo".into(), server.local(Arc::new(EchoExport(Arc::new(Impl)))))
//!     .unwrap();
//!
//! // A client looks it up and calls.
//! let client = Space::builder().transport(Arc::new(net)).build().unwrap();
//! let agent = netobj_agent::connect(&client, &Endpoint::loopback("host")).unwrap();
//! let echo = EchoClient::narrow(agent.get("echo".into()).unwrap().unwrap()).unwrap();
//! assert_eq!(echo.echo("hi".into()).unwrap(), "hi");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use netobj::wire::ObjIx;
use netobj::{network_object, Error, Handle, NetResult, Space};
use netobj_transport::Endpoint;
use parking_lot::Mutex;

network_object! {
    /// The agent's interface: a flat name → object table.
    pub interface Agent ("netobj.Agent"): client AgentClient, export AgentExport {
        /// Binds `name` to `obj`, replacing any previous binding.
        0 => fn put(&self, name: String, obj: Handle) -> ();
        /// Looks a name up.
        1 => fn get(&self, name: String) -> Option<Handle>;
        /// Removes a binding; true if it existed.
        2 => fn remove(&self, name: String) -> bool;
        /// All bound names, sorted.
        3 => fn list(&self) -> Vec<String>;
    }
}

/// The agent's owner-side implementation.
pub struct AgentImpl {
    names: Mutex<HashMap<String, Handle>>,
}

impl AgentImpl {
    /// Creates an empty agent.
    pub fn new() -> AgentImpl {
        AgentImpl {
            names: Mutex::new(HashMap::new()),
        }
    }
}

impl Default for AgentImpl {
    fn default() -> Self {
        AgentImpl::new()
    }
}

impl Agent for AgentImpl {
    fn put(&self, name: String, obj: Handle) -> NetResult<()> {
        self.names.lock().insert(name, obj);
        Ok(())
    }

    fn get(&self, name: String) -> NetResult<Option<Handle>> {
        Ok(self.names.lock().get(&name).cloned())
    }

    fn remove(&self, name: String) -> NetResult<bool> {
        Ok(self.names.lock().remove(&name).is_some())
    }

    fn list(&self) -> NetResult<Vec<String>> {
        let mut names: Vec<String> = self.names.lock().keys().cloned().collect();
        names.sort();
        Ok(names)
    }
}

/// Starts an agent in `space`, exporting it at the reserved index 1.
///
/// The space must be listening (an agent that cannot be called is useless).
pub fn serve(space: &Space) -> NetResult<AgentClient> {
    if space.endpoint().is_none() {
        return Err(Error::NotListening);
    }
    let handle = space.export_builtin(
        ObjIx::AGENT,
        Arc::new(AgentExport(Arc::new(AgentImpl::new()))),
    )?;
    AgentClient::narrow(handle)
}

/// Connects to the agent served by the space listening at `ep`.
pub fn connect(space: &Space, ep: &Endpoint) -> NetResult<AgentClient> {
    let handle = space.import_root(ep, ObjIx::AGENT)?;
    AgentClient::narrow(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netobj::Options;
    use netobj_transport::sim::SimNet;

    network_object! {
        /// Counter for agent tests.
        pub interface Counter ("agent-test.Counter"):
            client CounterClient, export CounterExport
        {
            0 => fn add(&self, n: i64) -> i64;
        }
    }

    struct CounterImpl(Mutex<i64>);
    impl Counter for CounterImpl {
        fn add(&self, n: i64) -> NetResult<i64> {
            let mut v = self.0.lock();
            *v += n;
            Ok(*v)
        }
    }

    fn counter() -> Arc<CounterExport<CounterImpl>> {
        Arc::new(CounterExport(Arc::new(CounterImpl(Mutex::new(0)))))
    }

    fn space(net: &Arc<SimNet>, name: &str) -> Space {
        Space::builder()
            .transport(Arc::new(Arc::clone(net)))
            .listen(Endpoint::sim(name))
            .options(Options::fast())
            .build()
            .unwrap()
    }

    #[test]
    fn bind_lookup_across_spaces() {
        let net = SimNet::instant();
        let host = space(&net, "host");
        serve(&host).unwrap();

        let server = space(&net, "server");
        let agent = connect(&server, &Endpoint::sim("host")).unwrap();
        agent
            .put("counter".into(), server.local(counter()))
            .unwrap();

        let client = space(&net, "client");
        let agent2 = connect(&client, &Endpoint::sim("host")).unwrap();
        let h = agent2.get("counter".into()).unwrap().expect("bound");
        let c = CounterClient::narrow(h).unwrap();
        assert_eq!(c.add(2).unwrap(), 2);
        assert_eq!(c.add(3).unwrap(), 5);
    }

    #[test]
    fn lookup_missing_returns_none() {
        let net = SimNet::instant();
        let host = space(&net, "host");
        serve(&host).unwrap();
        let client = space(&net, "client");
        let agent = connect(&client, &Endpoint::sim("host")).unwrap();
        assert!(agent.get("nope".into()).unwrap().is_none());
    }

    #[test]
    fn list_and_remove() {
        let net = SimNet::instant();
        let host = space(&net, "host");
        serve(&host).unwrap();
        let server = space(&net, "server");
        let agent = connect(&server, &Endpoint::sim("host")).unwrap();
        agent.put("b".into(), server.local(counter())).unwrap();
        agent.put("a".into(), server.local(counter())).unwrap();
        assert_eq!(agent.list().unwrap(), vec!["a".to_owned(), "b".to_owned()]);
        assert!(agent.remove("a".into()).unwrap());
        assert!(!agent.remove("a".into()).unwrap());
        assert_eq!(agent.list().unwrap(), vec!["b".to_owned()]);
    }

    #[test]
    fn rebinding_replaces() {
        let net = SimNet::instant();
        let host = space(&net, "host");
        serve(&host).unwrap();
        let server = space(&net, "server");
        let agent = connect(&server, &Endpoint::sim("host")).unwrap();
        let c1 = counter();
        let c2 = counter();
        agent.put("c".into(), server.local(c1)).unwrap();
        agent.put("c".into(), server.local(c2)).unwrap();
        let client = space(&net, "client");
        let agent2 = connect(&client, &Endpoint::sim("host")).unwrap();
        let c = CounterClient::narrow(agent2.get("c".into()).unwrap().unwrap()).unwrap();
        assert_eq!(c.add(1).unwrap(), 1, "fresh counter, not the first one");
    }

    #[test]
    fn serve_requires_listening() {
        let lone = Space::builder().options(Options::fast()).build().unwrap();
        assert!(matches!(serve(&lone), Err(Error::NotListening)));
    }

    #[test]
    fn agent_handle_keeps_registered_object_alive() {
        let net = SimNet::instant();
        let host = space(&net, "host");
        serve(&host).unwrap();
        let server = space(&net, "server");
        let agent = connect(&server, &Endpoint::sim("host")).unwrap();
        agent.put("c".into(), server.local(counter())).unwrap();
        // The server-side table entry is protected by the agent's dirty
        // entry even though the server kept no handle.
        assert_eq!(server.exported_count(), 1);
    }
}
