//! `netobjd` — the standalone network object agent daemon.
//!
//! Runs a name service that processes on a host (or a test cluster) use
//! to exchange their first object references:
//!
//! ```sh
//! netobjd                        # listen on 127.0.0.1:7777
//! netobjd --listen 0.0.0.0:9999  # explicit address
//! ```
//!
//! Clients connect with [`netobj_agent::connect`] and use `put`/`get`.

use std::sync::Arc;
use std::time::Duration;

use netobj::transport::tcp::Tcp;
use netobj::transport::Endpoint;
use netobj::{Options, Space};

const DEFAULT_ADDR: &str = "127.0.0.1:7777";

fn usage() -> ! {
    eprintln!("usage: netobjd [--listen HOST:PORT] [--lease MILLIS] [--max-conns N]");
    eprintln!();
    eprintln!("  --listen HOST:PORT  address to serve on (default {DEFAULT_ADDR})");
    eprintln!("  --lease MILLIS      expire dirty entries not renewed within MILLIS");
    eprintln!("  --max-conns N       per-client connection cap (ResourceBudget);");
    eprintln!("                      excess connections are refused QuotaExceeded");
    std::process::exit(2);
}

fn main() {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut lease: Option<Duration> = None;
    let mut max_conns: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => match args.next() {
                Some(v) => addr = v,
                None => usage(),
            },
            "--lease" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => lease = Some(Duration::from_millis(ms)),
                None => usage(),
            },
            "--max-conns" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => max_conns = Some(n),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let mut options = Options {
        lease,
        ..Options::default()
    };
    if let Some(n) = max_conns {
        options.budget = netobj::ResourceBudget {
            max_connections: Some(n),
            ..options.budget
        };
    }
    let space = match Space::builder()
        .transport(Arc::new(Tcp))
        .listen(Endpoint::tcp(addr))
        .options(options)
        .build()
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("netobjd: cannot listen: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = netobj_agent::serve(&space) {
        eprintln!("netobjd: cannot start agent: {e}");
        std::process::exit(1);
    }
    println!(
        "netobjd: space {} serving at {}",
        space.id().short(),
        space.endpoint().expect("listening")
    );

    // Serve until killed, logging a heartbeat with table sizes.
    loop {
        std::thread::sleep(Duration::from_secs(60));
        let stats = space.stats();
        println!(
            "netobjd: calls={} dirty={} clean={} exports={}",
            stats.calls_served,
            stats.dirty_received,
            stats.clean_received,
            space.exported_count()
        );
    }
}
