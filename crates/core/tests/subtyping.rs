//! The narrowest-surrogate mechanism: an exported object's type list
//! carries its whole interface ancestry; an importer narrows the handle
//! to the most derived interface it has a stub for, falling back to wider
//! supertypes — Network Objects' subtyping story.

use std::sync::Arc;

use netobj::wire::{ObjIx, TypeCode};
use netobj::{network_object, NetResult, Options, Space};
use netobj_transport::sim::SimNet;
use netobj_transport::Endpoint;
use parking_lot::Mutex;

network_object! {
    /// The base interface: methods 0..=0.
    pub interface Animal ("sub.Animal"): client AnimalClient, export AnimalExport {
        0 => fn name(&self) -> String;
    }
}

network_object! {
    /// Derived interface: base methods re-declared at the same indices,
    /// new methods after (the numbering contract a stub compiler keeps).
    pub interface Dog ("sub.Dog" extends "sub.Animal"):
        client DogClient, export DogExport
    {
        0 => fn name(&self) -> String;
        1 => fn fetch(&self, what: String) -> String;
    }
}

struct DogImpl {
    fetched: Mutex<Vec<String>>,
}

impl Dog for DogImpl {
    fn name(&self) -> NetResult<String> {
        Ok("rex".into())
    }
    fn fetch(&self, what: String) -> NetResult<String> {
        self.fetched.lock().push(what.clone());
        Ok(format!("fetched {what}"))
    }
}

fn rig() -> (Space, Space) {
    let net = SimNet::instant();
    let owner = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::sim("owner"))
        .options(Options::fast())
        .build()
        .unwrap();
    owner
        .export(Arc::new(DogExport(Arc::new(DogImpl {
            fetched: Mutex::new(Vec::new()),
        }))))
        .unwrap();
    let client = Space::builder()
        .transport(Arc::new(net))
        .options(Options::fast())
        .build()
        .unwrap();
    (owner, client)
}

#[test]
fn type_list_carries_ancestry() {
    let (owner, client) = rig();
    let _ = owner;
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    let types = h.types();
    assert_eq!(types.narrowest(), TypeCode::of_name("sub.Dog"));
    assert!(types.includes(TypeCode::of_name("sub.Animal")));
    assert!(types.includes(TypeCode::ROOT));
    assert_eq!(types.codes().len(), 3);
}

#[test]
fn narrow_to_derived_and_base() {
    let (_owner, client) = rig();
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();

    // Narrow to the exact type.
    let dog = DogClient::narrow(h.clone()).unwrap();
    assert_eq!(dog.name().unwrap(), "rex");
    assert_eq!(dog.fetch("ball".into()).unwrap(), "fetched ball");

    // A space that only knows the base interface narrows to it and uses
    // the shared method prefix.
    let animal = AnimalClient::narrow(h).unwrap();
    assert_eq!(animal.name().unwrap(), "rex");
}

#[test]
fn narrow_to_unrelated_interface_fails() {
    network_object! {
        /// Unrelated interface.
        pub interface Rock ("sub.Rock"): client RockClient, export RockExport {
            0 => fn weight(&self) -> i64;
        }
    }
    let (_owner, client) = rig();
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    assert!(RockClient::narrow(h).is_err());
}

#[test]
fn base_and_derived_stubs_share_the_surrogate() {
    let (_owner, client) = rig();
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    let dog = DogClient::narrow(h.clone()).unwrap();
    let animal = AnimalClient::narrow(h).unwrap();
    assert!(dog.handle().same_object(animal.handle()));
    // Both views used a single registration.
    assert_eq!(client.stats().dirty_sent, 1);
    assert_eq!(client.stats().surrogates_created, 1);
}

#[test]
fn narrowest_known_selection() {
    // The wire-level selection helper the importer uses when it has a
    // registry of known stubs.
    let (_owner, client) = rig();
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    let mut known = std::collections::HashSet::new();
    known.insert(TypeCode::ROOT);
    known.insert(TypeCode::of_name("sub.Animal"));
    assert_eq!(
        h.types().narrowest_known(&known),
        Some(TypeCode::of_name("sub.Animal")),
        "falls back to the widest known supertype"
    );
    known.insert(TypeCode::of_name("sub.Dog"));
    assert_eq!(
        h.types().narrowest_known(&known),
        Some(TypeCode::of_name("sub.Dog")),
        "prefers the most derived known type"
    );
}
