//! End-to-end tests of the runtime over an in-process simulated network:
//! invocation, reference passing in all three roles (argument, result,
//! third-party), the surrogate life cycle, collection, resurrection, and
//! the failure paths (ping purge, lease expiry).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj::wire::ObjIx;
use netobj::{network_object, Error, Handle, NetResult, Options, Space};
use netobj_transport::sim::{LinkConfig, SimNet};
use netobj_transport::Endpoint;
use parking_lot::Mutex;

network_object! {
    /// A counter for tests.
    pub interface Counter ("t.Counter"): client CounterClient, export CounterExport {
        0 => fn add(&self, n: i64) -> i64;
        1 => fn read(&self) -> i64;
    }
}

network_object! {
    /// A registry mapping names to counters (exercises reference passing).
    pub interface Registry ("t.Registry"): client RegistryClient, export RegistryExport {
        0 => fn put(&self, name: String, counter: CounterClient) -> ();
        1 => fn get(&self, name: String) -> Option<CounterClient>;
        2 => fn bump(&self, name: String) -> i64;
    }
}

struct CounterImpl(Mutex<i64>);

impl Counter for CounterImpl {
    fn add(&self, n: i64) -> NetResult<i64> {
        let mut v = self.0.lock();
        *v += n;
        Ok(*v)
    }
    fn read(&self) -> NetResult<i64> {
        Ok(*self.0.lock())
    }
}

struct RegistryImpl(Mutex<HashMap<String, CounterClient>>);

impl Registry for RegistryImpl {
    fn put(&self, name: String, counter: CounterClient) -> NetResult<()> {
        self.0.lock().insert(name, counter);
        Ok(())
    }
    fn get(&self, name: String) -> NetResult<Option<CounterClient>> {
        Ok(self.0.lock().get(&name).cloned())
    }
    fn bump(&self, name: String) -> NetResult<i64> {
        let counter = self
            .0
            .lock()
            .get(&name)
            .cloned()
            .ok_or_else(|| Error::app("no such counter"))?;
        counter.add(1)
    }
}

fn new_counter() -> Arc<CounterExport<CounterImpl>> {
    Arc::new(CounterExport(Arc::new(CounterImpl(Mutex::new(0)))))
}

fn new_registry() -> Arc<RegistryExport<RegistryImpl>> {
    Arc::new(RegistryExport(Arc::new(RegistryImpl(Mutex::new(
        HashMap::new(),
    )))))
}

fn space_on(net: &Arc<SimNet>, name: &str, options: Options) -> Space {
    Space::builder()
        .transport(Arc::new(Arc::clone(net)))
        .listen(Endpoint::sim(name))
        .options(options)
        .build()
        .expect("space")
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn remote_invocation_basics() {
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_counter()).unwrap();

    let client = space_on(&net, "client", Options::fast());
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    let counter = CounterClient::narrow(h).unwrap();
    assert_eq!(counter.add(3).unwrap(), 3);
    assert_eq!(counter.add(4).unwrap(), 7);
    assert_eq!(counter.read().unwrap(), 7);

    // Exactly one dirty call was needed.
    assert_eq!(client.stats().dirty_sent, 1);
    assert_eq!(owner.stats().dirty_received, 1);
}

#[test]
fn narrow_rejects_wrong_interface() {
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_counter()).unwrap();
    let client = space_on(&net, "client", Options::fast());
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    assert!(matches!(
        RegistryClient::narrow(h),
        Err(Error::WrongType {
            wanted: "t.Registry"
        })
    ));
}

#[test]
fn local_handles_dispatch_without_network() {
    let space = Space::builder().options(Options::fast()).build().unwrap();
    let counter = CounterClient::narrow(space.local(new_counter())).unwrap();
    assert_eq!(counter.add(10).unwrap(), 10);
    assert_eq!(counter.read().unwrap(), 10);
    assert_eq!(space.stats().calls_sent, 0);
}

#[test]
fn reference_as_argument_enables_callback() {
    let net = SimNet::instant();
    let server = space_on(&net, "server", Options::fast());
    server.export(new_registry()).unwrap();

    // The client owns a counter and must therefore listen.
    let client = space_on(&net, "client", Options::fast());
    let counter = CounterClient::narrow(client.local(new_counter())).unwrap();

    let rh = client
        .import_root(&Endpoint::sim("server"), ObjIx::FIRST_USER)
        .unwrap();
    let registry = RegistryClient::narrow(rh).unwrap();
    registry.put("c".into(), counter.clone()).unwrap();

    // The server invokes back into the client-owned counter.
    assert_eq!(registry.bump("c".into()).unwrap(), 1);
    assert_eq!(registry.bump("c".into()).unwrap(), 2);
    // And the client sees the effect locally.
    assert_eq!(counter.read().unwrap(), 2);

    // The server made a dirty call for the received reference.
    assert_eq!(server.stats().dirty_sent, 1);
    assert_eq!(client.stats().dirty_received, 1);
}

#[test]
fn reference_as_result_comes_back_to_owner_as_concrete() {
    let net = SimNet::instant();
    let server = space_on(&net, "server", Options::fast());
    server.export(new_registry()).unwrap();

    let client = space_on(&net, "client", Options::fast());
    let counter = CounterClient::narrow(client.local(new_counter())).unwrap();
    let registry = RegistryClient::narrow(
        client
            .import_root(&Endpoint::sim("server"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    registry.put("c".into(), counter).unwrap();

    // get() returns the client's own object: the unmarshaled handle must
    // be the concrete object, not a surrogate.
    let got = registry.get("c".into()).unwrap().expect("present");
    assert!(got.handle().is_local());
    assert_eq!(got.add(5).unwrap(), 5);
}

#[test]
fn missing_object_fails_cleanly() {
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_counter()).unwrap();
    let client = space_on(&net, "client", Options::fast());
    let got = client.import_root(&Endpoint::sim("owner"), ObjIx(999));
    assert!(matches!(got, Err(Error::ImportFailed(_))), "{got:?}");
}

#[test]
fn third_party_transfer() {
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_counter()).unwrap();

    let middle = space_on(&net, "middle", Options::fast());
    let carol = space_on(&net, "carol", Options::fast());
    carol.export(new_registry()).unwrap();

    // B imports A's counter, then hands it to C through C's registry:
    // sender, receiver and owner are three different spaces.
    let counter_at_b = CounterClient::narrow(
        middle
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    let registry_at_b = RegistryClient::narrow(
        middle
            .import_root(&Endpoint::sim("carol"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    registry_at_b.put("c".into(), counter_at_b.clone()).unwrap();

    // C now talks to A directly.
    assert_eq!(registry_at_b.bump("c".into()).unwrap(), 1);

    // Owner's collector saw dirty calls from both B and C.
    wait_until("two dirty calls at owner", || {
        owner.stats().dirty_received == 2
    });

    // B drops its handle; the object must survive for C.
    drop(counter_at_b);
    drop(registry_at_b);
    wait_until("clean from B", || owner.stats().clean_received >= 1);
    let registry_at_d = RegistryClient::narrow(
        space_on(&net, "dave", Options::fast())
            .import_root(&Endpoint::sim("carol"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(registry_at_d.bump("c".into()).unwrap(), 2);
}

#[test]
fn dropping_last_handle_collects_owner_entry() {
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    let registry_obj = new_registry();
    owner.export(registry_obj).unwrap();
    // Put a counter into the registry locally; only the registry is
    // pinned in the table.
    let local_counter = CounterClient::narrow(owner.local(new_counter())).unwrap();
    let owner_registry = RegistryClient::narrow(
        owner
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    owner_registry.put("c".into(), local_counter).unwrap();
    assert_eq!(owner.exported_count(), 1, "only the registry is exported");

    let client = space_on(&net, "client", Options::fast());
    let registry = RegistryClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    let counter = registry.get("c".into()).unwrap().expect("present");
    // The counter is now in the owner's table, dirty for the client.
    assert_eq!(owner.exported_count(), 2);
    assert_eq!(counter.add(1).unwrap(), 1);

    // Dropping the last client handle must, via clean call, collect the
    // owner-side entry (the registry keeps the object alive locally, but
    // the *table entry* goes).
    drop(counter);
    wait_until("owner entry collected", || owner.exported_count() == 1);
    assert!(owner.stats().exports_collected >= 1);
    // The client retires its table entry on the clean-ack, which races
    // with our observation of the owner-side collection above.
    wait_until("only the registry import remains", || {
        client.imported_count() == 1
    });
}

#[test]
fn same_reference_imported_twice_shares_surrogate() {
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_counter()).unwrap();
    let client = space_on(&net, "client", Options::fast());
    let h1 = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    let h2 = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    assert!(h1.same_object(&h2));
    // One surrogate, one dirty call.
    assert_eq!(client.stats().surrogates_created, 1);
    assert_eq!(client.stats().dirty_sent, 1);
}

#[test]
fn concurrent_first_imports_share_registration() {
    // With link latency, two threads race to import the same reference;
    // the second must block on the first's dirty call, not issue its own.
    let net = SimNet::new(LinkConfig::with_latency(Duration::from_millis(20)));
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_counter()).unwrap();
    let client = space_on(&net, "client", Options::fast());

    let mut joins = Vec::new();
    for _ in 0..4 {
        let c = client.clone();
        joins.push(std::thread::spawn(move || {
            c.import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        }));
    }
    let handles: Vec<Handle> = joins
        .into_iter()
        .map(|j| j.join().unwrap().unwrap())
        .collect();
    for h in &handles[1..] {
        assert!(handles[0].same_object(h));
    }
    assert_eq!(client.stats().dirty_sent, 1, "single registration");
    assert_eq!(client.stats().surrogates_created, 1);
}

#[test]
fn resurrection_while_clean_in_transit() {
    // Slow links keep the clean call in transit long enough for a new
    // import to arrive: the ccit → ccitnil → (clean ack) → dirty → OK
    // path.
    let net = SimNet::new(LinkConfig::with_latency(Duration::from_millis(60)));
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_counter()).unwrap();
    let client = space_on(&net, "client", Options::fast());

    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    drop(h);
    // Give the demon time to mark ccit and launch the clean call (which
    // takes ≥120 ms round-trip on this link).
    std::thread::sleep(Duration::from_millis(30));
    let h2 = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    let counter = CounterClient::narrow(h2).unwrap();
    assert_eq!(counter.add(1).unwrap(), 1);
    let stats = client.stats();
    assert_eq!(stats.clean_sent, 1, "one clean was in transit");
    assert_eq!(stats.dirty_sent, 2, "re-registered after the clean ack");

    // And the owner must still (again) list the client: dropping drains
    // the import slot through a second full clean cycle.
    drop(counter);
    wait_until("final clean", || client.imported_count() == 0);
    wait_until("second clean received", || {
        owner.stats().clean_received == 2
    });
}

#[test]
fn quick_redrop_reuses_pending_surrogate_state() {
    // Drop and re-import with no latency: whichever interleaving wins
    // (resurrect-before-clean or full ccitnil cycle), the reference must
    // come back usable and eventually collect.
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_counter()).unwrap();
    let client = space_on(&net, "client", Options::fast());
    for i in 0..50 {
        let h = client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap();
        let c = CounterClient::narrow(h).unwrap();
        assert_eq!(c.add(1).unwrap(), i + 1);
        drop(c);
    }
    wait_until("imports drain", || client.imported_count() == 0);
}

#[test]
fn crashed_client_is_purged_by_ping() {
    let net = SimNet::instant();
    let mut owner_options = Options::fast();
    owner_options.ping_interval = Some(Duration::from_millis(100));
    owner_options.ping_failures = 2;
    owner_options.clean_timeout = Duration::from_millis(200);
    let owner = space_on(&net, "owner", owner_options);
    owner.export(new_registry()).unwrap();

    let client = space_on(&net, "client", Options::fast());
    let registry = RegistryClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    let counter = CounterClient::narrow(owner.local(new_counter())).unwrap();
    // Export the counter to the client so a non-pinned entry exists.
    let owner_registry = RegistryClient::narrow(
        owner
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    owner_registry.put("c".into(), counter).unwrap();
    let remote_counter = registry.get("c".into()).unwrap().expect("present");
    assert_eq!(owner.exported_count(), 2);
    assert_eq!(remote_counter.add(1).unwrap(), 1);

    // The client dies without cleaning.
    client.crash();
    net.set_down("client", true);
    std::mem::forget(remote_counter); // simulate lost handle, no clean ever

    wait_until("ping detects death and purges", || {
        owner.exported_count() == 1
    });
    assert!(owner.stats().clients_purged >= 1);
}

#[test]
fn lease_expiry_reclaims_and_renewal_preserves() {
    let net = SimNet::instant();
    let mut opts = Options::fast();
    opts.lease = Some(Duration::from_millis(300));
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(new_registry()).unwrap();
    let counter = CounterClient::narrow(owner.local(new_counter())).unwrap();
    let owner_registry = RegistryClient::narrow(
        owner
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    owner_registry.put("c".into(), counter).unwrap();

    // A leasing client holds the counter across several lease periods:
    // renewal must keep it alive.
    let client = space_on(&net, "client", opts.clone());
    let registry = RegistryClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    let remote = registry.get("c".into()).unwrap().expect("present");
    assert_eq!(owner.exported_count(), 2);
    std::thread::sleep(Duration::from_millis(900));
    assert_eq!(owner.exported_count(), 2, "renewals kept the entry");
    assert!(client.stats().dirty_sent > 2, "renewals were sent");

    // Now the client crashes: the lease must lapse.
    client.crash();
    net.set_down("client", true);
    std::mem::forget(remote);
    std::mem::forget(registry);
    wait_until("lease expiry", || owner.exported_count() == 1);
    assert!(owner.stats().leases_expired >= 1);
}

#[test]
fn fifo_variant_end_to_end() {
    let net = SimNet::instant();
    let mut opts = Options::fast();
    opts.fifo_variant = true;
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(new_counter()).unwrap();
    let client = space_on(&net, "client", opts.clone());
    let counter = CounterClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(counter.add(2).unwrap(), 2);
    drop(counter);
    wait_until("fifo-mode clean", || client.imported_count() == 0);
    wait_until("owner saw the clean", || owner.stats().clean_received == 1);
    assert_eq!(client.stats().dirty_sent, 1);
    assert_eq!(client.stats().clean_sent, 1);
}

#[test]
fn fifo_variant_does_not_block_unmarshal() {
    // With 25 ms links, base mode blocks the server's unmarshal thread for
    // a ~50 ms dirty round-trip when it receives a fresh reference; the
    // FIFO variant must not block at all (the registration runs in the
    // background while the method executes).
    let net = SimNet::new(LinkConfig::with_latency(Duration::from_millis(25)));
    let mut opts = Options::fast();
    opts.fifo_variant = true;
    let server = space_on(&net, "server", opts.clone());
    server.export(new_registry()).unwrap();
    let client = space_on(&net, "client", opts);
    let registry = RegistryClient::narrow(
        client
            .import_root(&Endpoint::sim("server"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    let counter = CounterClient::narrow(client.local(new_counter())).unwrap();
    registry.put("c".into(), counter).unwrap();
    assert_eq!(
        server.stats().blocked_ns,
        0,
        "fifo variant must not block unmarshal threads"
    );
    // The reference is usable at the server.
    assert_eq!(registry.bump("c".into()).unwrap(), 1);
}

#[test]
fn stopped_space_refuses_work() {
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_counter()).unwrap();
    let client = space_on(&net, "client", Options::fast());
    let counter = CounterClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    client.shutdown();
    let got = counter.add(1);
    assert!(got.is_err(), "{got:?}");
    assert!(matches!(
        client.import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER),
        Err(Error::SpaceStopped)
    ));
}

#[test]
fn mass_drop_batches_clean_calls() {
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_registry()).unwrap();
    let client = space_on(&net, "client", Options::fast());
    let registry = RegistryClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    // Stock the registry with counters owned by the owner space, then pull
    // remote handles for all of them.
    let owner_registry = RegistryClient::narrow(
        owner
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    // Whether a burst of drops coalesces depends on the demon's wakeup
    // landing after the whole burst is enqueued; under heavy host load the
    // demon can be scheduled between individual drops and send solo cleans.
    // Batching is best-effort by design, so the test retries the scenario
    // until one burst travels together rather than asserting on a single
    // schedule-dependent round.
    for round in 0..5 {
        for i in 0..16 {
            let c = CounterClient::narrow(owner.local(new_counter())).unwrap();
            owner_registry.put(format!("c{round}_{i}"), c).unwrap();
        }
        let mut held = Vec::new();
        for i in 0..16 {
            held.push(
                registry
                    .get(format!("c{round}_{i}"))
                    .unwrap()
                    .expect("present"),
            );
        }
        assert_eq!(owner.exported_count(), 17);

        // Drop them all at once: the cleanup demon should coalesce the
        // clean calls into far fewer RPCs.
        drop(held);
        wait_until("all collected", || owner.exported_count() == 1);
        let stats = client.stats();
        assert_eq!(
            stats.clean_sent,
            16 * (round as u64 + 1),
            "one clean entry per reference"
        );
        if stats.clean_batches >= 1 {
            return;
        }
    }
    panic!(
        "no batched clean RPC in 5 rounds of 16 simultaneous drops: {:?}",
        client.stats()
    );
}

#[test]
fn unbatched_mode_sends_individual_cleans() {
    let net = SimNet::instant();
    let mut opts = Options::fast();
    opts.batch_cleans = false;
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(new_counter()).unwrap();
    let client = space_on(&net, "client", opts);
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    drop(h);
    wait_until("cleaned", || client.imported_count() == 0);
    assert_eq!(client.stats().clean_batches, 0);
    assert_eq!(client.stats().clean_sent, 1);
}

#[test]
fn unexport_releases_pin() {
    let net = SimNet::instant();
    let owner = space_on(&net, "owner", Options::fast());
    let h = owner.export(new_counter()).unwrap();
    assert_eq!(owner.exported_count(), 1);
    owner.unexport(&h).unwrap();
    assert_eq!(owner.exported_count(), 0);
}

#[test]
fn marshal_blocked_time_is_recorded_under_latency() {
    let net = SimNet::new(LinkConfig::with_latency(Duration::from_millis(25)));
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_registry()).unwrap();
    let client = space_on(&net, "client", Options::fast());
    let registry = RegistryClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    // Client passes a fresh local counter: the *server* must block in
    // unmarshal for the dirty round-trip back to the client.
    let counter = CounterClient::narrow(client.local(new_counter())).unwrap();
    registry.put("c".into(), counter).unwrap();
    assert!(
        owner.stats().blocked() >= Duration::from_millis(40),
        "owner unmarshal should have blocked for a dirty RTT, blocked={:?}",
        owner.stats().blocked()
    );
}

#[test]
fn concurrent_churn_under_jitter_reaches_fixpoint() {
    // Eight threads across four client spaces churn references against
    // one owner over a jittery network; after the dust settles, every
    // table must be back to its pinned roots — the whole-system fixpoint
    // the collector guarantees.
    let mut config = LinkConfig::with_latency(Duration::from_micros(200));
    config.jitter = Duration::from_micros(400);
    let net = SimNet::with_seed(config, 7);
    let owner = space_on(&net, "owner", Options::fast());
    owner.export(new_registry()).unwrap();
    let owner_registry = RegistryClient::narrow(
        owner
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    for i in 0..4 {
        let c = CounterClient::narrow(owner.local(new_counter())).unwrap();
        owner_registry.put(format!("c{i}"), c).unwrap();
    }

    let mut clients = Vec::new();
    for i in 0..4 {
        clients.push(space_on(&net, &format!("client{i}"), Options::fast()));
    }
    let mut joins = Vec::new();
    for t in 0..8usize {
        let space = clients[t % clients.len()].clone();
        joins.push(std::thread::spawn(move || {
            let registry = RegistryClient::narrow(
                space
                    .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
                    .unwrap(),
            )
            .unwrap();
            for round in 0..30 {
                let name = format!("c{}", (t + round) % 4);
                let counter = registry.get(name).unwrap().expect("present");
                counter.add(1).unwrap();
                drop(counter);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    drop(owner_registry);
    for c in &clients {
        wait_until("client drains", || c.imported_count() == 0);
    }
    // Owner retains exactly the pinned registry entry plus the four
    // counters held by the registry map... the counters are held by the
    // registry *object* (local handles), not the table; so only the
    // registry remains exported.
    wait_until("owner table drains to the registry", || {
        owner.exported_count() == 1
    });
    // The mutator total must be exact despite all the churn: 8 threads ×
    // 30 rounds = 240 increments across the four counters.
    let registry = RegistryClient::narrow(
        space_on(&net, "verifier", Options::fast())
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    let total: i64 = (0..4)
        .map(|i| {
            let c = registry.get(format!("c{i}")).unwrap().expect("present");
            let c = CounterClient::narrow(c.into_handle()).unwrap();
            c.read().unwrap()
        })
        .sum();
    assert_eq!(total, 240);
}
