//! Property-based tests for the latency histograms.
//!
//! The properties that make the metrics layer trustworthy: recording
//! never loses an observation, buckets are monotone in the observed
//! value, merging is exact addition, and quantiles are monotone in the
//! requested rank.

use proptest::prelude::*;

use netobj::metrics::{bucket_upper, BUCKETS};
use netobj::{Histogram, HistogramSnapshot};

/// Values large enough to exercise every bucket but small enough that a
/// few hundred of them cannot overflow the u64 running sum.
fn arb_micros() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,                           // the first few buckets, densely
        (0u32..54).prop_map(|e| 1u64 << e), // every power of two
        0u64..(1 << 50),                    // everything in between
    ]
}

proptest! {
    /// Every recorded observation lands in exactly one bucket: the total
    /// equals the number of records and the sum is exact.
    #[test]
    fn record_preserves_count_and_sum(
        values in proptest::collection::vec(arb_micros(), 0..200)
    ) {
        let h = Histogram::default();
        for &v in &values {
            h.record_micros(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.total(), values.len() as u64);
        prop_assert_eq!(s.sum_micros, values.iter().sum::<u64>());
    }

    /// The bucket a value lands in is monotone in the value, and the
    /// value lies inside its bucket's nominal range (except the last
    /// bucket, which absorbs everything larger).
    #[test]
    fn buckets_are_monotone_and_bracketing(a in arb_micros(), b in arb_micros()) {
        let bucket_index = |v: u64| {
            let h = Histogram::default();
            h.record_micros(v);
            let s = h.snapshot();
            let ix = s.counts.iter().position(|&c| c == 1).unwrap();
            prop_assert_eq!(s.counts.iter().sum::<u64>(), 1);
            Ok(ix)
        };
        let (lo, hi) = (a.min(b), a.max(b));
        let (ix_lo, ix_hi) = (bucket_index(lo)?, bucket_index(hi)?);
        prop_assert!(ix_lo <= ix_hi, "bucket order inverted: {lo}→{ix_lo}, {hi}→{ix_hi}");
        for (v, ix) in [(lo, ix_lo), (hi, ix_hi)] {
            prop_assert!(v < bucket_upper(ix) || ix == BUCKETS - 1);
            if ix > 0 {
                prop_assert!(v >= bucket_upper(ix - 1));
            }
        }
    }

    /// Merging snapshots is exact per-bucket addition: the merged total
    /// and sum are the sums of the parts, and no bucket loses counts.
    #[test]
    fn merge_preserves_totals(
        xs in proptest::collection::vec(arb_micros(), 0..100),
        ys in proptest::collection::vec(arb_micros(), 0..100),
    ) {
        let hx = Histogram::default();
        let hy = Histogram::default();
        for &v in &xs { hx.record_micros(v); }
        for &v in &ys { hy.record_micros(v); }
        let (sx, sy) = (hx.snapshot(), hy.snapshot());
        let mut merged = sx;
        merged.merge(&sy);
        prop_assert_eq!(merged.total(), sx.total() + sy.total());
        prop_assert_eq!(merged.sum_micros, sx.sum_micros + sy.sum_micros);
        for i in 0..BUCKETS {
            prop_assert_eq!(merged.counts[i], sx.counts[i] + sy.counts[i]);
        }
    }

    /// Quantiles are monotone in the rank and bracket every observation:
    /// q=1.0 is an upper bound for the maximum recorded value (up to the
    /// final bucket's clamp).
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(arb_micros(), 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let h = Histogram::default();
        for &v in &values { h.record_micros(v); }
        let s = h.snapshot();
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        prop_assert!(s.quantile_micros(lo) <= s.quantile_micros(hi));
        let max = *values.iter().max().unwrap();
        if max < bucket_upper(BUCKETS - 1) {
            prop_assert!(s.quantile_micros(1.0) > max);
        }
    }

    /// An empty histogram reports zero for every quantile.
    #[test]
    fn empty_histogram_is_all_zero(q in 0.0f64..1.0) {
        let s = HistogramSnapshot::default();
        prop_assert_eq!(s.quantile_micros(q), 0);
        prop_assert_eq!(s.total(), 0);
    }
}
