//! The runtime's error type.

use std::fmt;

use netobj_rpc::{RemoteError, RemoteErrorKind, RpcError};
use netobj_transport::TransportError;
use netobj_wire::{SpaceId, WireError, WireRep};

/// Result alias for application-visible network object operations.
pub type NetResult<T> = Result<T, Error>;

/// Any error surfaced by the network objects runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A remote invocation failed at the RPC level.
    Rpc(RpcError),
    /// Encoding or decoding failed.
    Wire(WireError),
    /// A transport operation failed.
    Transport(TransportError),
    /// The remote method reported an application-level failure.
    App(String),
    /// A handle was narrowed to an interface its type list does not include.
    WrongType {
        /// The interface name requested.
        wanted: &'static str,
    },
    /// The wireRep names no object exported here (owner side), or the
    /// object was released before the call arrived.
    NoSuchObject(WireRep),
    /// The operation requires this space to listen, and it does not.
    NotListening,
    /// Importing a reference failed (e.g. the dirty call did not succeed).
    ImportFailed(String),
    /// The space has been shut down.
    SpaceStopped,
    /// The owner space holding the target object has been declared dead
    /// (its lease renewals or clean retries were exhausted). Surrogates
    /// into a dead owner are *broken*: calls fail fast with this error
    /// instead of burning a full call timeout.
    OwnerDead(SpaceId),
    /// The calling space exceeded its per-client resource budget at this
    /// space (export slots, dirty entries, queue share, in-flight calls
    /// or connections). Not retryable: the quota clears only when the
    /// client releases resources.
    QuotaExceeded(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Rpc(e) => write!(f, "rpc: {e}"),
            Error::Wire(e) => write!(f, "wire: {e}"),
            Error::Transport(e) => write!(f, "transport: {e}"),
            Error::App(m) => write!(f, "application error: {m}"),
            Error::WrongType { wanted } => write!(f, "handle cannot be narrowed to {wanted}"),
            Error::NoSuchObject(w) => write!(f, "no such object: {w}"),
            Error::NotListening => write!(f, "space has no listening endpoint"),
            Error::ImportFailed(m) => write!(f, "import failed: {m}"),
            Error::SpaceStopped => write!(f, "space has been shut down"),
            Error::OwnerDead(id) => write!(f, "owner space is dead: {id}"),
            Error::QuotaExceeded(m) => write!(f, "resource budget exceeded: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an application-level error (what server method bodies return).
    pub fn app(msg: impl Into<String>) -> Error {
        Error::App(msg.into())
    }

    /// True if the failed operation may nonetheless have executed remotely.
    pub fn is_ambiguous(&self) -> bool {
        matches!(self, Error::Rpc(e) if e.is_ambiguous())
    }
}

impl From<RpcError> for Error {
    fn from(e: RpcError) -> Error {
        match e {
            RpcError::Remote(re) if re.kind == RemoteErrorKind::Application => {
                Error::App(re.message)
            }
            other => Error::Rpc(other),
        }
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Error {
        Error::Wire(e)
    }
}

impl From<TransportError> for Error {
    fn from(e: TransportError) -> Error {
        Error::Transport(e)
    }
}

/// Converts a runtime error into the structured form shipped in replies.
pub(crate) fn to_remote_error(e: &Error) -> RemoteError {
    match e {
        Error::App(m) => RemoteError::new(RemoteErrorKind::Application, m.clone()),
        Error::NoSuchObject(w) => RemoteError::new(RemoteErrorKind::NoSuchObject, format!("{w}")),
        Error::Wire(we) => RemoteError::new(RemoteErrorKind::BadArguments, we.to_string()),
        Error::QuotaExceeded(m) => RemoteError::new(RemoteErrorKind::QuotaExceeded, m.clone()),
        other => RemoteError::new(RemoteErrorKind::Runtime, other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_application_error_becomes_app() {
        let e: Error = RpcError::Remote(RemoteError::app("boom")).into();
        assert_eq!(e, Error::App("boom".into()));
    }

    #[test]
    fn other_remote_errors_stay_rpc() {
        let e: Error =
            RpcError::Remote(RemoteError::new(RemoteErrorKind::NoSuchMethod, "m")).into();
        assert!(matches!(e, Error::Rpc(RpcError::Remote(_))));
    }

    #[test]
    fn ambiguity_passthrough() {
        assert!(Error::Rpc(RpcError::Timeout).is_ambiguous());
        assert!(!Error::App("x".into()).is_ambiguous());
    }

    #[test]
    fn to_remote_roundtrip_kinds() {
        assert_eq!(
            to_remote_error(&Error::app("z")).kind,
            RemoteErrorKind::Application
        );
        assert_eq!(
            to_remote_error(&Error::NotListening).kind,
            RemoteErrorKind::Runtime
        );
        assert_eq!(
            to_remote_error(&Error::QuotaExceeded("dirty entries".into())).kind,
            RemoteErrorKind::QuotaExceeded
        );
    }
}
