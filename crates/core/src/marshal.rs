//! Marshaling with collector side effects.
//!
//! Plain data marshals exactly as in the `netobj-wire` pickle format.
//! Object references are different: transmitting one must protect it with a
//! transient dirty pin at the sender, and receiving one must bind it to a
//! local surrogate or concrete object — possibly performing a blocking
//! dirty call. [`MarshalCx`] and [`UnmarshalCx`] thread the [`Space`]
//! through so that [`NetMarshal`] implementations for handle types can do
//! that work; everything else delegates to [`Pickle`].
//!
//! A marshaled reference travels as a three-field record:
//! `(wireRep, owner endpoint, type list)` — the wireRep names the object,
//! the endpoint says where its owner listens, and the type list lets the
//! importer choose the narrowest stub it knows.

use std::collections::BTreeMap;

use netobj_transport::Endpoint;
use netobj_wire::pickle::{Blob, Pickle, PickleReader, PickleWriter};
use netobj_wire::{TypeList, WireRep};

use crate::error::{Error, NetResult};
use crate::handle::{Handle, TransientPin};
use crate::space::Space;

/// Marshaling context: a pickle writer plus the pins protecting every
/// reference written so far.
pub struct MarshalCx<'s> {
    space: &'s Space,
    w: PickleWriter,
    pins: Vec<TransientPin>,
}

impl<'s> MarshalCx<'s> {
    /// Creates a context writing into a fresh buffer.
    pub fn new(space: &'s Space) -> MarshalCx<'s> {
        MarshalCx::from_writer(space, PickleWriter::new())
    }

    /// Creates a context writing into `w` — lets callers recycle a buffer
    /// across calls instead of allocating per invocation.
    pub(crate) fn from_writer(space: &'s Space, w: PickleWriter) -> MarshalCx<'s> {
        MarshalCx {
            space,
            w,
            pins: Vec::new(),
        }
    }

    /// The space this context marshals on behalf of.
    pub fn space(&self) -> &Space {
        self.space
    }

    /// Direct access to the underlying pickle writer.
    pub fn writer(&mut self) -> &mut PickleWriter {
        &mut self.w
    }

    /// Marshals one value.
    pub fn put<T: NetMarshal>(&mut self, v: &T) -> NetResult<()> {
        v.marshal(self)
    }

    /// Finishes, returning the bytes and the pins that must outlive the
    /// transmission (until its acknowledgement).
    pub fn finish(self) -> (Vec<u8>, Vec<TransientPin>) {
        (self.w.into_bytes(), self.pins)
    }

    /// Finishes, returning the writer itself (for buffer recycling) and
    /// the pins that must outlive the transmission.
    pub(crate) fn finish_parts(self) -> (PickleWriter, Vec<TransientPin>) {
        (self.w, self.pins)
    }

    pub(crate) fn push_pin(&mut self, pin: TransientPin) {
        self.pins.push(pin);
    }
}

/// Unmarshaling context: a pickle reader bound to the receiving space.
pub struct UnmarshalCx<'s, 'a> {
    space: &'s Space,
    r: PickleReader<'a>,
    /// FIFO-variant receipts: background dirty registrations that must
    /// complete before this message may be acknowledged.
    pending: Vec<crossbeam::channel::Receiver<NetResult<()>>>,
}

impl<'s, 'a> UnmarshalCx<'s, 'a> {
    /// Creates a context reading `bytes` on behalf of `space`.
    pub fn new(space: &'s Space, bytes: &'a [u8]) -> UnmarshalCx<'s, 'a> {
        UnmarshalCx {
            space,
            r: PickleReader::new(bytes),
            pending: Vec::new(),
        }
    }

    /// The space this context unmarshals on behalf of.
    pub fn space(&self) -> &Space {
        self.space
    }

    /// Direct access to the underlying pickle reader.
    pub fn reader(&mut self) -> &mut PickleReader<'a> {
        &mut self.r
    }

    /// Unmarshals one value.
    pub fn get<T: NetMarshal>(&mut self) -> NetResult<T> {
        T::unmarshal(self)
    }

    /// Errors unless the input is fully consumed.
    pub fn expect_end(&self) -> NetResult<()> {
        self.r.expect_end().map_err(Error::from)
    }

    pub(crate) fn push_pending(&mut self, rx: crossbeam::channel::Receiver<NetResult<()>>) {
        self.pending.push(rx);
    }

    /// Waits for any deferred reference registrations (FIFO variant).
    ///
    /// In the base algorithm this is a no-op: registration happened inline
    /// during [`UnmarshalCx::get`].
    pub fn wait_pending(&mut self) -> NetResult<()> {
        for rx in self.pending.drain(..) {
            match rx.recv() {
                Ok(r) => r?,
                Err(_) => return Err(Error::SpaceStopped),
            }
        }
        Ok(())
    }
}

/// A type marshalable through the network objects runtime.
///
/// Unlike [`Pickle`], implementations may interact with the [`Space`]:
/// handle types register references, pin transmissions, and so on.
pub trait NetMarshal: Sized {
    /// Encodes `self`.
    fn marshal(&self, cx: &mut MarshalCx<'_>) -> NetResult<()>;
    /// Decodes a value.
    fn unmarshal(cx: &mut UnmarshalCx<'_, '_>) -> NetResult<Self>;
}

macro_rules! net_marshal_via_pickle {
    ($($t:ty),* $(,)?) => {$(
        impl NetMarshal for $t {
            fn marshal(&self, cx: &mut MarshalCx<'_>) -> NetResult<()> {
                self.pickle(cx.writer());
                Ok(())
            }
            fn unmarshal(cx: &mut UnmarshalCx<'_, '_>) -> NetResult<Self> {
                <$t as Pickle>::unpickle(cx.reader()).map_err(Error::from)
            }
        }
    )*};
}

net_marshal_via_pickle!(
    (),
    bool,
    i8,
    i16,
    i32,
    i64,
    isize,
    u8,
    u16,
    u32,
    u64,
    usize,
    f32,
    f64,
    char,
    String,
    Blob,
    WireRep,
    TypeList,
    netobj_wire::SpaceId,
    Endpoint,
    netobj_wire::SpanRecord,
    netobj_wire::TraceEvent,
);

impl<T: NetMarshal> NetMarshal for Option<T> {
    fn marshal(&self, cx: &mut MarshalCx<'_>) -> NetResult<()> {
        match self {
            None => {
                cx.writer().put_none();
                Ok(())
            }
            Some(v) => {
                cx.writer().begin_some();
                v.marshal(cx)
            }
        }
    }
    fn unmarshal(cx: &mut UnmarshalCx<'_, '_>) -> NetResult<Self> {
        if cx.reader().begin_option()? {
            Ok(Some(T::unmarshal(cx)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: NetMarshal> NetMarshal for Vec<T> {
    fn marshal(&self, cx: &mut MarshalCx<'_>) -> NetResult<()> {
        cx.writer().begin_seq(self.len());
        for v in self {
            v.marshal(cx)?;
        }
        Ok(())
    }
    fn unmarshal(cx: &mut UnmarshalCx<'_, '_>) -> NetResult<Self> {
        let n = cx.reader().begin_seq()?;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::unmarshal(cx)?);
        }
        Ok(out)
    }
}

impl<K: NetMarshal + Ord, V: NetMarshal> NetMarshal for BTreeMap<K, V> {
    fn marshal(&self, cx: &mut MarshalCx<'_>) -> NetResult<()> {
        cx.writer().begin_map(self.len());
        for (k, v) in self {
            k.marshal(cx)?;
            v.marshal(cx)?;
        }
        Ok(())
    }
    fn unmarshal(cx: &mut UnmarshalCx<'_, '_>) -> NetResult<Self> {
        let n = cx.reader().begin_map()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::unmarshal(cx)?;
            let v = V::unmarshal(cx)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! net_marshal_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: NetMarshal),+> NetMarshal for ($($name,)+) {
            fn marshal(&self, cx: &mut MarshalCx<'_>) -> NetResult<()> {
                $(self.$idx.marshal(cx)?;)+
                Ok(())
            }
            fn unmarshal(cx: &mut UnmarshalCx<'_, '_>) -> NetResult<Self> {
                Ok(($($name::unmarshal(cx)?,)+))
            }
        }
    };
}

net_marshal_tuple!(A: 0);
net_marshal_tuple!(A: 0, B: 1);
net_marshal_tuple!(A: 0, B: 1, C: 2);
net_marshal_tuple!(A: 0, B: 1, C: 2, D: 3);
net_marshal_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl NetMarshal for Handle {
    fn marshal(&self, cx: &mut MarshalCx<'_>) -> NetResult<()> {
        let space = cx.space().clone();
        let sent = space.prepare_send(self)?;
        cx.writer().begin_record(3);
        cx.writer().put_wirerep(sent.wirerep);
        sent.owner_ep.pickle(cx.writer());
        sent.types.pickle(cx.writer());
        if let Some(pin) = sent.pin {
            cx.push_pin(pin);
        }
        Ok(())
    }

    fn unmarshal(cx: &mut UnmarshalCx<'_, '_>) -> NetResult<Self> {
        cx.reader().expect_record(3)?;
        let wirerep = cx.reader().get_wirerep()?;
        let owner_ep = Endpoint::unpickle(cx.reader())?;
        let types = TypeList::unpickle(cx.reader())?;
        let space = cx.space().clone();
        space.receive_ref(cx, wirerep, owner_ep, types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;

    fn space() -> Space {
        Space::builder().build().expect("space")
    }

    #[test]
    fn plain_values_roundtrip_through_cx() {
        let s = space();
        let mut m = MarshalCx::new(&s);
        m.put(&42u32).unwrap();
        m.put(&String::from("hi")).unwrap();
        m.put(&vec![1i64, 2, 3]).unwrap();
        m.put(&Some((1u8, 2u8))).unwrap();
        let (bytes, pins) = m.finish();
        assert!(pins.is_empty());

        let mut u = UnmarshalCx::new(&s, &bytes);
        assert_eq!(u.get::<u32>().unwrap(), 42);
        assert_eq!(u.get::<String>().unwrap(), "hi");
        assert_eq!(u.get::<Vec<i64>>().unwrap(), vec![1, 2, 3]);
        assert_eq!(u.get::<Option<(u8, u8)>>().unwrap(), Some((1, 2)));
        u.expect_end().unwrap();
        u.wait_pending().unwrap();
    }

    #[test]
    fn trailing_input_detected() {
        let s = space();
        let mut m = MarshalCx::new(&s);
        m.put(&1u8).unwrap();
        m.put(&2u8).unwrap();
        let (bytes, _) = m.finish();
        let mut u = UnmarshalCx::new(&s, &bytes);
        let _ = u.get::<u8>().unwrap();
        assert!(u.expect_end().is_err());
    }

    #[test]
    fn blob_roundtrip() {
        let s = space();
        let mut m = MarshalCx::new(&s);
        m.put(&Blob(vec![7; 1000])).unwrap();
        let (bytes, _) = m.finish();
        let mut u = UnmarshalCx::new(&s, &bytes);
        assert_eq!(u.get::<Blob>().unwrap().0.len(), 1000);
    }
}
