//! The built-in introspection object.
//!
//! Every listening space exports an [`Introspect`] network object at the
//! reserved index [`ObjIx::INTROSPECT`], so any peer — a debugging
//! session, the `netobj-top` reporter, a CI smoke test — can ask a running
//! space for its counters, metrics text, recent call spans and collector
//! trace tail *using nothing but the object system itself*. There is no
//! separate admin port or protocol: introspection is just another network
//! object, reached by the same bootstrap import as the agent.
//!
//! Security note: the interface is strictly read-only. It exposes
//! aggregate counters, latency distributions and span metadata (method
//! indices, space ids, byte counts) but never argument or result payloads,
//! and it offers no mutating methods — importing it grants observation,
//! not control.

use std::sync::{Arc, Weak};

use netobj_transport::Endpoint;
use netobj_wire::{ObjIx, SpanRecord, TraceEvent};

use crate::error::{Error, NetResult};
use crate::space::{Space, SpaceInner};

crate::network_object! {
    /// Read-only observability queries answered by every listening space
    /// (served at the reserved index [`ObjIx::INTROSPECT`]).
    pub interface Introspect ("netobj.Introspect"):
        client IntrospectClient, export IntrospectExport
    {
        /// Every activity counter, as `(name, value)` pairs.
        0 [idempotent] => fn stats(&self) -> Vec<(String, u64)>;
        /// The full metrics snapshot in Prometheus text format.
        1 [idempotent] => fn metrics_text(&self) -> String;
        /// The most recent `limit` call spans (0 = all surviving).
        2 [idempotent] => fn spans(&self, limit: u64) -> Vec<SpanRecord>;
        /// The most recent `limit` collector trace events (0 = all
        /// surviving).
        3 [idempotent] => fn trace_tail(&self, limit: u64) -> Vec<TraceEvent>;
    }
}

/// Serves [`Introspect`] for one space. Holds the space weakly: the
/// object table entry must not keep its own space alive.
struct IntrospectImpl {
    inner: Weak<SpaceInner>,
}

impl IntrospectImpl {
    fn space(&self) -> NetResult<Space> {
        self.inner
            .upgrade()
            .map(Space::from_inner)
            .ok_or(Error::SpaceStopped)
    }
}

fn tail<T>(mut items: Vec<T>, limit: u64) -> Vec<T> {
    if limit > 0 && (items.len() as u64) > limit {
        items.drain(..items.len() - limit as usize);
    }
    items
}

impl Introspect for IntrospectImpl {
    fn stats(&self) -> NetResult<Vec<(String, u64)>> {
        Ok(self
            .space()?
            .stats()
            .named()
            .into_iter()
            .map(|(name, v)| (name.to_string(), v))
            .collect())
    }

    fn metrics_text(&self) -> NetResult<String> {
        Ok(self.space()?.metrics_text())
    }

    fn spans(&self, limit: u64) -> NetResult<Vec<SpanRecord>> {
        Ok(tail(self.space()?.spans(), limit))
    }

    fn trace_tail(&self, limit: u64) -> NetResult<Vec<TraceEvent>> {
        Ok(tail(self.space()?.trace_events(), limit))
    }
}

/// Installs the introspection object at [`ObjIx::INTROSPECT`] (called by
/// the space builder for every listening space).
pub(crate) fn install(space: &Space) -> NetResult<()> {
    let imp = IntrospectImpl {
        inner: Arc::downgrade(&space.inner),
    };
    space.export_builtin(ObjIx::INTROSPECT, Arc::new(IntrospectExport(Arc::new(imp))))?;
    Ok(())
}

/// Connects to the introspection object of whatever space listens at
/// `ep` — the observability analogue of `netobj_agent::connect`.
pub fn connect(space: &Space, ep: &Endpoint) -> NetResult<IntrospectClient> {
    let handle = space.import_root(ep, ObjIx::INTROSPECT)?;
    IntrospectClient::narrow(handle)
}
