//! Tunable runtime options.

use std::time::Duration;

use netobj_rpc::{BreakerConfig, ResourceBudget, RetryPolicy};
use netobj_transport::ClockHandle;

/// Configuration for a [`crate::Space`].
///
/// The defaults implement the paper's base algorithm: blocking unmarshal of
/// new references (a dirty call completes before the reference becomes
/// usable), owner-side ping-based termination detection, and clean-call
/// retry with strong cleans after ambiguous dirty failures.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Worker threads serving incoming calls.
    pub workers: usize,
    /// Deadline for application-level remote calls.
    pub call_timeout: Duration,
    /// Deadline for dirty calls (blocking unmarshal waits this long).
    pub dirty_timeout: Duration,
    /// Deadline for clean calls issued by the cleanup demon.
    pub clean_timeout: Duration,
    /// Delay before a failed clean call is retried.
    pub clean_retry: Duration,
    /// Give up on a reference's cleanup after this many failed clean calls
    /// and assume the owner is dead.
    pub max_clean_retries: u32,
    /// Owner-side ping period for clients holding dirty entries.
    /// `None` disables termination detection by ping.
    pub ping_interval: Option<Duration>,
    /// Consecutive ping failures after which a client is presumed dead and
    /// removed from every dirty set.
    pub ping_failures: u32,
    /// Lease mode (the Java RMI variant): when set, dirty entries expire
    /// unless renewed within this duration, and client spaces renew their
    /// live surrogates at a third of it. `None` uses pure reference
    /// listing with ping-based termination detection.
    pub lease: Option<Duration>,
    /// The §5.1 FIFO-channels variant: unmarshal does not block on dirty
    /// calls; instead the dirty call is issued in the background over the
    /// (FIFO) connection and the reply/acknowledgement is withheld until
    /// it completes. Requires transports that preserve frame order (all of
    /// ours except a reordering `SimNet`).
    pub fifo_variant: bool,
    /// Batch clean calls: the cleanup demon coalesces cleans queued for
    /// the same owner into one RPC (the paper's batching optimisation for
    /// collector traffic). Semantics are unchanged — each entry still
    /// carries its own sequence number.
    pub batch_cleans: bool,
    /// Retry policy for outgoing calls. The default retries only failures
    /// where the request provably never reached the callee (*not-delivered*
    /// failures — refused connects, sends that errored, `Busy` shedding);
    /// *ambiguous* failures (timeouts, mid-call connection loss) are
    /// retried only for methods marked `[idempotent]` in `network_object!`,
    /// so default call semantics are unchanged: at-most-once.
    pub retry: RetryPolicy,
    /// Per-endpoint circuit breaker for outgoing calls. After a run of
    /// consecutive failures the breaker opens and calls to that endpoint
    /// fail fast until a cooldown elapses and a probe succeeds.
    pub breaker: BreakerConfig,
    /// Bound on the server's queued (not yet dispatched) incoming calls.
    /// When the queue is full the server sheds new calls with a retryable
    /// `Busy` reply instead of letting them time out behind the backlog.
    /// `None` restores the unbounded queue.
    pub server_queue_limit: Option<usize>,
    /// Per-client resource limits enforced at every untrusted entry point:
    /// dispatch (queue share and in-flight calls), connection accept, and
    /// the collector's dirty path (export slots and dirty entries).
    /// Over-budget requests are refused with the non-retryable
    /// `QuotaExceeded` remote error. The default disables every limit —
    /// the cooperative-peers behaviour; hardened deployments should use
    /// [`ResourceBudget::standard`] or their own figures.
    pub budget: ResourceBudget,
    /// The clock every runtime timer reads: retry backoff pauses, breaker
    /// cool-downs, the cleanup demon's retry schedule, ping and lease
    /// periods, call deadlines. The default is the real system clock;
    /// tests install a shared virtual clock (usually the one from
    /// `SimNet::virtual_time`) to run timeouts in simulated time.
    pub clock: ClockHandle,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            workers: 4,
            call_timeout: Duration::from_secs(30),
            dirty_timeout: Duration::from_secs(10),
            clean_timeout: Duration::from_secs(5),
            clean_retry: Duration::from_millis(500),
            max_clean_retries: 8,
            ping_interval: None,
            ping_failures: 3,
            lease: None,
            fifo_variant: false,
            batch_cleans: true,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            server_queue_limit: Some(1024),
            budget: ResourceBudget::unlimited(),
            clock: ClockHandle::system(),
        }
    }
}

impl Options {
    /// Fast-failing settings for tests.
    pub fn fast() -> Options {
        Options {
            call_timeout: Duration::from_secs(5),
            dirty_timeout: Duration::from_secs(2),
            clean_timeout: Duration::from_millis(500),
            clean_retry: Duration::from_millis(50),
            max_clean_retries: 3,
            ..Options::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_base_algorithm() {
        let o = Options::default();
        assert!(!o.fifo_variant);
        assert!(o.lease.is_none());
        assert!(o.ping_interval.is_none());
        assert!(o.workers >= 1);
        // Ambiguous failures are not retried by default (no per-attempt
        // deadline means one attempt consumes the whole budget).
        assert!(o.retry.attempt_timeout.is_none());
        assert!(o.breaker.enabled);
        assert!(o.server_queue_limit.is_some());
        // Quotas are opt-in: the base algorithm trusts its peers.
        assert!(o.budget.is_unlimited());
    }

    #[test]
    fn standard_budget_is_finite_and_coherent() {
        let b = ResourceBudget::standard();
        assert!(!b.is_unlimited());
        // A dirty-entry allowance below the export-slot allowance would
        // make the latter unreachable.
        assert!(b.max_dirty_entries.unwrap() >= b.max_export_slots.unwrap());
        assert!(b.max_inflight.unwrap() >= b.max_queue_share.unwrap());
    }

    #[test]
    fn fast_options_shrink_deadlines() {
        let f = Options::fast();
        assert!(f.clean_timeout < Options::default().clean_timeout);
        assert!(f.dirty_timeout < Options::default().dirty_timeout);
    }
}
