//! Runtime counters.
//!
//! Every space keeps cheap atomic counters describing protocol activity.
//! The benchmark harness reads these to report collector message counts,
//! blocking times and reclamation figures for the experiments; the metrics
//! layer ([`crate::metrics`]) folds them into the Prometheus exposition.
//!
//! The counter list is declared once, through a macro, so the snapshot and
//! the [`StatsSnapshot::named`] enumeration can never drift out of sync
//! with the struct — `named()` is what guarantees "every counter appears
//! in the metrics text".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

macro_rules! stats_counters {
    ($( $(#[$doc:meta])* $name:ident, )*) => {
        /// Atomic activity counters for one space.
        #[derive(Debug, Default)]
        pub struct Stats {
            $( $(#[$doc])* pub $name: AtomicU64, )*
        }

        impl Stats {
            /// Takes a point-in-time copy of every counter.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )*
                }
            }
        }

        /// A point-in-time copy of a space's [`Stats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub struct StatsSnapshot {
            $( pub $name: u64, )*
        }

        impl StatsSnapshot {
            /// Every counter, as `(name, value)` pairs in declaration
            /// order. Generated from the same list as the struct itself,
            /// so it is complete by construction.
            pub fn named(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($name), self.$name), )* ]
            }
        }
    };
}

stats_counters! {
    /// Remote invocations issued by this space.
    calls_sent,
    /// Invocations received by this space's server and dispatched to an
    /// object (whether the method then succeeded or failed).
    calls_served,
    /// Invocations received by this space's server and refused before any
    /// object ran: unknown target space, no such object.
    calls_rejected,
    /// Dirty calls sent (including lease renewals).
    dirty_sent,
    /// Dirty calls received and applied.
    dirty_received,
    /// Stale (out-of-sequence) dirty calls ignored.
    dirty_stale,
    /// Clean calls sent.
    clean_sent,
    /// Clean calls received (no-ops included).
    clean_received,
    /// Strong clean calls sent after ambiguous dirty failures.
    strong_clean_sent,
    /// Clean call attempts that failed and were scheduled for retry.
    clean_retries,
    /// Batched clean RPCs sent (each carrying several clean entries).
    clean_batches,
    /// Pings sent by the owner-side termination detector.
    pings_sent,
    /// Pings answered by this space.
    pings_received,
    /// Clients presumed dead and purged from all dirty sets.
    clients_purged,
    /// Object references marshaled out (copies sent).
    refs_sent,
    /// Object references unmarshaled (copies received).
    refs_received,
    /// Surrogates created.
    surrogates_created,
    /// Surrogates resurrected (copy received while cleanup was pending).
    surrogates_resurrected,
    /// Concrete-object table entries reclaimed (dirty set emptied).
    exports_collected,
    /// Dirty-set entries expired by the lease sweeper.
    leases_expired,
    /// Pooled connections replaced after the transport reported them
    /// broken (the resilient caller reconnected).
    reconnects,
    /// Outgoing call attempts that were retried by the resilient caller.
    retries_attempted,
    /// Times a per-endpoint circuit breaker tripped open.
    breaker_opened,
    /// Outgoing calls rejected immediately (open breaker or dead owner)
    /// without touching the network.
    calls_failed_fast,
    /// Incoming calls shed because the server's aggregate queue was full
    /// (retryable `Busy`: global saturation, not the caller's fault).
    calls_shed_global,
    /// Incoming calls refused because the *calling* client exceeded its
    /// queue-share, in-flight or connection budget (non-retryable
    /// `QuotaExceeded`).
    calls_shed_quota,
    /// Dirty calls refused because the calling client exceeded its export
    /// slot or dirty-entry budget.
    dirty_refused_quota,
    /// Total nanoseconds unmarshal threads spent blocked waiting for
    /// reference registration (dirty round-trips).
    blocked_ns,
}

impl Stats {
    pub(crate) fn add_blocked(&self, d: Duration) {
        self.blocked_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total collector control messages sent by this space (dirty + clean
    /// + strong clean + pings).
    pub fn gc_messages_sent(&self) -> u64 {
        self.dirty_sent + self.clean_sent + self.strong_clean_sent + self.pings_sent
    }

    /// Time unmarshal threads spent blocked.
    pub fn blocked(&self) -> Duration {
        Duration::from_nanos(self.blocked_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = Stats::default();
        s.dirty_sent.store(3, Ordering::Relaxed);
        s.clean_sent.store(2, Ordering::Relaxed);
        s.pings_sent.store(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.dirty_sent, 3);
        assert_eq!(snap.gc_messages_sent(), 6);
    }

    #[test]
    fn blocked_time_accumulates() {
        let s = Stats::default();
        s.add_blocked(Duration::from_micros(5));
        s.add_blocked(Duration::from_micros(7));
        assert_eq!(s.snapshot().blocked(), Duration::from_micros(12));
    }

    #[test]
    fn named_enumerates_every_counter() {
        let s = Stats::default();
        s.calls_sent.store(11, Ordering::Relaxed);
        s.calls_rejected.store(2, Ordering::Relaxed);
        let named = s.snapshot().named();
        // One entry per struct field, in declaration order, no gaps.
        assert_eq!(named.len(), 28);
        assert_eq!(named[0], ("calls_sent", 11));
        assert!(named.contains(&("calls_rejected", 2)));
        assert!(named.contains(&("blocked_ns", 0)));
    }
}
