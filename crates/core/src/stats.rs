//! Runtime counters.
//!
//! Every space keeps cheap atomic counters describing protocol activity.
//! The benchmark harness reads these to report collector message counts,
//! blocking times and reclamation figures for the experiments.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic activity counters for one space.
#[derive(Debug, Default)]
pub struct Stats {
    /// Remote invocations issued by this space.
    pub calls_sent: AtomicU64,
    /// Invocations dispatched by this space's server.
    pub calls_served: AtomicU64,
    /// Dirty calls sent (including lease renewals).
    pub dirty_sent: AtomicU64,
    /// Dirty calls received and applied.
    pub dirty_received: AtomicU64,
    /// Stale (out-of-sequence) dirty calls ignored.
    pub dirty_stale: AtomicU64,
    /// Clean calls sent.
    pub clean_sent: AtomicU64,
    /// Clean calls received (no-ops included).
    pub clean_received: AtomicU64,
    /// Strong clean calls sent after ambiguous dirty failures.
    pub strong_clean_sent: AtomicU64,
    /// Clean call attempts that failed and were scheduled for retry.
    pub clean_retries: AtomicU64,
    /// Batched clean RPCs sent (each carrying several clean entries).
    pub clean_batches: AtomicU64,
    /// Pings sent by the owner-side termination detector.
    pub pings_sent: AtomicU64,
    /// Pings answered by this space.
    pub pings_received: AtomicU64,
    /// Clients presumed dead and purged from all dirty sets.
    pub clients_purged: AtomicU64,
    /// Object references marshaled out (copies sent).
    pub refs_sent: AtomicU64,
    /// Object references unmarshaled (copies received).
    pub refs_received: AtomicU64,
    /// Surrogates created.
    pub surrogates_created: AtomicU64,
    /// Surrogates resurrected (copy received while cleanup was pending).
    pub surrogates_resurrected: AtomicU64,
    /// Concrete-object table entries reclaimed (dirty set emptied).
    pub exports_collected: AtomicU64,
    /// Dirty-set entries expired by the lease sweeper.
    pub leases_expired: AtomicU64,
    /// Pooled connections replaced after the transport reported them
    /// broken (the resilient caller reconnected).
    pub reconnects: AtomicU64,
    /// Outgoing call attempts that were retried by the resilient caller.
    pub retries_attempted: AtomicU64,
    /// Times a per-endpoint circuit breaker tripped open.
    pub breaker_opened: AtomicU64,
    /// Outgoing calls rejected immediately (open breaker or dead owner)
    /// without touching the network.
    pub calls_failed_fast: AtomicU64,
    /// Total nanoseconds unmarshal threads spent blocked waiting for
    /// reference registration (dirty round-trips).
    pub blocked_ns: AtomicU64,
}

impl Stats {
    pub(crate) fn add_blocked(&self, d: Duration) {
        self.blocked_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            calls_sent: self.calls_sent.load(Ordering::Relaxed),
            calls_served: self.calls_served.load(Ordering::Relaxed),
            dirty_sent: self.dirty_sent.load(Ordering::Relaxed),
            dirty_received: self.dirty_received.load(Ordering::Relaxed),
            dirty_stale: self.dirty_stale.load(Ordering::Relaxed),
            clean_sent: self.clean_sent.load(Ordering::Relaxed),
            clean_received: self.clean_received.load(Ordering::Relaxed),
            strong_clean_sent: self.strong_clean_sent.load(Ordering::Relaxed),
            clean_retries: self.clean_retries.load(Ordering::Relaxed),
            clean_batches: self.clean_batches.load(Ordering::Relaxed),
            pings_sent: self.pings_sent.load(Ordering::Relaxed),
            pings_received: self.pings_received.load(Ordering::Relaxed),
            clients_purged: self.clients_purged.load(Ordering::Relaxed),
            refs_sent: self.refs_sent.load(Ordering::Relaxed),
            refs_received: self.refs_received.load(Ordering::Relaxed),
            surrogates_created: self.surrogates_created.load(Ordering::Relaxed),
            surrogates_resurrected: self.surrogates_resurrected.load(Ordering::Relaxed),
            exports_collected: self.exports_collected.load(Ordering::Relaxed),
            leases_expired: self.leases_expired.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            retries_attempted: self.retries_attempted.load(Ordering::Relaxed),
            breaker_opened: self.breaker_opened.load(Ordering::Relaxed),
            calls_failed_fast: self.calls_failed_fast.load(Ordering::Relaxed),
            blocked_ns: self.blocked_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a space's [`Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub calls_sent: u64,
    pub calls_served: u64,
    pub dirty_sent: u64,
    pub dirty_received: u64,
    pub dirty_stale: u64,
    pub clean_sent: u64,
    pub clean_received: u64,
    pub strong_clean_sent: u64,
    pub clean_retries: u64,
    pub clean_batches: u64,
    pub pings_sent: u64,
    pub pings_received: u64,
    pub clients_purged: u64,
    pub refs_sent: u64,
    pub refs_received: u64,
    pub surrogates_created: u64,
    pub surrogates_resurrected: u64,
    pub exports_collected: u64,
    pub leases_expired: u64,
    pub reconnects: u64,
    pub retries_attempted: u64,
    pub breaker_opened: u64,
    pub calls_failed_fast: u64,
    pub blocked_ns: u64,
}

impl StatsSnapshot {
    /// Total collector control messages sent by this space (dirty + clean
    /// + strong clean + pings).
    pub fn gc_messages_sent(&self) -> u64 {
        self.dirty_sent + self.clean_sent + self.strong_clean_sent + self.pings_sent
    }

    /// Time unmarshal threads spent blocked.
    pub fn blocked(&self) -> Duration {
        Duration::from_nanos(self.blocked_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = Stats::default();
        s.dirty_sent.store(3, Ordering::Relaxed);
        s.clean_sent.store(2, Ordering::Relaxed);
        s.pings_sent.store(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.dirty_sent, 3);
        assert_eq!(snap.gc_messages_sent(), 6);
    }

    #[test]
    fn blocked_time_accumulates() {
        let s = Stats::default();
        s.add_blocked(Duration::from_micros(5));
        s.add_blocked(Duration::from_micros(7));
        assert_eq!(s.snapshot().blocked(), Duration::from_micros(12));
    }
}
