//! The object table.
//!
//! Every space has one: it maps wireReps to the local instance of the
//! corresponding network object. For objects this space owns, the entry is
//! a *concrete entry* holding a strong reference (the object table is a
//! root for the local collector while remote references exist) together
//! with the object's **dirty set** and **transient set**. For objects owned
//! elsewhere, the entry is an *import slot* tracking the surrogate's life
//! cycle — the `⊥ / nil / OK / ccit / ccitnil` states of the collector's
//! formal specification.
//!
//! # Sharding and lock order
//!
//! Both halves of the table are sharded so that hot-path mutations (a
//! dirty-set update, a transient pin, an import-slot transition) contend
//! only with operations on the *same* object, not with every marshal in
//! the space:
//!
//! * **Exports** split into an *identity map* (`ident`: index allocation
//!   plus the object-pointer → index reverse map) and [`EXPORT_SHARDS`]
//!   shards of `index → ConcreteEntry`, selected by index. Pin ids come
//!   from an atomic counter and take no lock at all.
//! * **Imports** are [`IMPORT_SHARDS`] shards selected by `WireRep` hash,
//!   each pairing its map with its own condvar so blocked unmarshal
//!   threads are only woken by transitions in their shard.
//!
//! Lock order discipline (violations deadlock):
//!
//! 1. `ident` before any export shard; never an export shard before
//!    `ident`. Paths that discover an entry became removable while holding
//!    only its shard must *release* the shard, take `ident` → shard, and
//!    re-check removability before collecting ([`ExportTable::collect_if_removable`]).
//! 2. At most one export shard at a time. Whole-table scans
//!    (`purge_client`, `expire_leases`, gauges) visit shards sequentially;
//!    their results are per-shard-consistent snapshots, not a global
//!    atomic view — sufficient for the ping demon and metrics.
//! 3. Import shards are independent; no operation holds two at once, and
//!    no operation holds an import shard together with `ident` or an
//!    export shard.
//! 4. The per-client footprint map (`ExportTable::counts`) is a *leaf*
//!    lock: it may be taken while holding `ident` and/or one export
//!    shard, and nothing else is ever acquired while holding it. Keeping
//!    the quota check-and-increment under this single lock makes budget
//!    enforcement exact even though entries live in different shards.
//!
//! Entry removal always holds `ident` *and* the entry's shard, so any
//! reader holding `ident` may rely on `by_ptr` hits resolving to live
//! shard entries.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use netobj_rpc::ResourceBudget;
use netobj_transport::Endpoint;
use netobj_wire::{ObjIx, SpaceId, TypeList, WireRep};
use parking_lot::{Condvar, Mutex};

use crate::handle::SurrogateCore;
use crate::obj::NetObject;

/// Number of export shards (index-selected).
pub(crate) const EXPORT_SHARDS: usize = 16;
/// Number of import shards (`WireRep`-hash-selected).
pub(crate) const IMPORT_SHARDS: usize = 16;

/// What the owner knows about one client's claim on an object.
#[derive(Debug, Clone)]
pub(crate) struct DirtyInfo {
    /// Highest sequence number seen from this client for this object.
    pub last_seqno: u64,
    /// Where the client can be pinged, if it told us.
    pub client_ep: Option<Endpoint>,
    /// Last time the entry was created or renewed (lease mode).
    pub renewed: Instant,
}

/// Owner-side entry: a concrete object plus its reference listing.
pub(crate) struct ConcreteEntry {
    /// Strong reference pinning the object while remotely referenced.
    pub obj: Arc<dyn NetObject>,
    /// Interface ancestry sent with marshaled references.
    pub types: TypeList,
    /// Explicitly exported entries are never auto-removed (bootstrap roots
    /// registered with the agent must survive empty dirty sets).
    pub pinned: bool,
    /// The dirty set: clients known to hold surrogates.
    pub dirty: HashMap<SpaceId, DirtyInfo>,
    /// The paper's `seqno(O, P)`: the largest sequence number seen from
    /// each client on a dirty *or clean* call. Kept independently of dirty
    /// membership so that a clean (in particular a *strong* clean after an
    /// ambiguous dirty failure) permanently outranks any delayed dirty
    /// still in flight.
    pub seqno_floor: HashMap<SpaceId, u64>,
    /// Transient dirty entries: in-flight transmissions of this reference.
    pub transient: HashSet<u64>,
}

impl ConcreteEntry {
    /// True when nothing protects the entry: it may leave the table.
    fn removable(&self) -> bool {
        !self.pinned && self.dirty.is_empty() && self.transient.is_empty()
    }
}

/// Client-side surrogate life-cycle state (the formal model's `rec_T`).
///
/// `⊥` (pre-existence / reclaimed) is represented by the slot's absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ImportState {
    /// `nil`: reference received, dirty call not yet acknowledged.
    Creating,
    /// `OK`: registered with the owner; usable.
    Live,
    /// `ccit`: clean call in transit.
    CleanWait,
    /// `ccitnil`: clean in transit but a new copy arrived — resurrect once
    /// the clean acknowledgement lands.
    CleanWaitResurrect,
}

/// Client-side entry for an imported reference.
pub(crate) struct ImportSlot {
    pub owner_ep: Endpoint,
    pub types: TypeList,
    pub state: ImportState,
    /// Bumped whenever a new surrogate core is installed; unreachability
    /// notices carrying an older epoch are stale and ignored.
    pub epoch: u64,
    /// Live surrogate core, if any handle still holds it.
    pub weak: Weak<SurrogateCore>,
    /// Threads blocked waiting for this slot to become usable.
    pub waiters: u32,
    /// Set when registration failed; waiters give up instead of retrying.
    pub failed: bool,
}

/// The two halves of a space's object table.
pub(crate) struct ObjectTable {
    pub exports: ExportTable,
    pub imports: ImportTable,
}

impl ObjectTable {
    pub fn new() -> ObjectTable {
        ObjectTable {
            exports: ExportTable::new(),
            imports: ImportTable::new(),
        }
    }
}

/// Index allocation and object-identity half of the export table.
///
/// The reverse map exists so re-marshaling the same object reuses its
/// wireRep ("there is at most one entry per concrete object").
struct ExportIdent {
    next_ix: u64,
    by_ptr: HashMap<usize, u64>,
}

/// What one client currently costs this owner in table bookkeeping.
///
/// `dirty` counts the objects the client holds dirty registrations on
/// (its *export slots*); `floors` counts its seqno-floor entries. Floors
/// outlive cleans by design — a strong clean must permanently outrank any
/// delayed dirty — which makes them the one piece of per-client state a
/// peer can grow without holding anything, so the dirty-entry budget
/// bounds `dirty + floors`, not `dirty` alone.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ClientFootprint {
    /// Objects on which the client is currently in the dirty set.
    pub dirty: usize,
    /// Seqno-floor entries recorded for the client.
    pub floors: usize,
}

impl ClientFootprint {
    fn is_empty(&self) -> bool {
        self.dirty == 0 && self.floors == 0
    }
}

/// Owner-side table state, sharded by object index.
pub(crate) struct ExportTable {
    ident: Mutex<ExportIdent>,
    /// Pin ids are only ever compared for equality; an atomic counter
    /// keeps transient pinning off every lock.
    next_pin: AtomicU64,
    shards: Vec<Mutex<HashMap<u64, ConcreteEntry>>>,
    /// Per-client footprint, maintained alongside every dirty-set and
    /// floor mutation (leaf lock; see the module lock-order notes).
    /// Records exist only while the footprint is nonzero, so refused or
    /// stale calls from never-seen clients cannot grow this map.
    counts: Mutex<HashMap<SpaceId, ClientFootprint>>,
}

fn ptr_key(obj: &Arc<dyn NetObject>) -> usize {
    Arc::as_ptr(obj) as *const () as usize
}

impl ExportTable {
    pub fn new() -> ExportTable {
        ExportTable {
            ident: Mutex::new(ExportIdent {
                next_ix: ObjIx::FIRST_USER.0,
                by_ptr: HashMap::new(),
            }),
            next_pin: AtomicU64::new(1),
            shards: (0..EXPORT_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            counts: Mutex::new(HashMap::new()),
        }
    }

    fn shard(&self, ix: u64) -> &Mutex<HashMap<u64, ConcreteEntry>> {
        &self.shards[(ix as usize) % EXPORT_SHARDS]
    }

    fn fresh_entry(obj: &Arc<dyn NetObject>, types: &TypeList, pinned: bool) -> ConcreteEntry {
        ConcreteEntry {
            obj: Arc::clone(obj),
            types: types.clone(),
            pinned,
            dirty: HashMap::new(),
            seqno_floor: HashMap::new(),
            transient: HashSet::new(),
        }
    }

    /// Finds or creates the entry for `obj`, returning its index and
    /// whether the entry was created by this call (a fresh export, which
    /// the trace layer records as `ExportCreated`).
    pub fn export(&self, obj: &Arc<dyn NetObject>, pinned: bool) -> (ObjIx, TypeList, bool) {
        let mut ident = self.ident.lock();
        let key = ptr_key(obj);
        if let Some(&ix) = ident.by_ptr.get(&key) {
            let mut shard = self.shard(ix).lock();
            let entry = shard
                .get_mut(&ix)
                .expect("by_ptr/shard consistent under ident");
            entry.pinned |= pinned;
            return (ObjIx(ix), entry.types.clone(), false);
        }
        let ix = ident.next_ix;
        ident.next_ix += 1;
        ident.by_ptr.insert(key, ix);
        let types = obj.type_list();
        self.shard(ix)
            .lock()
            .insert(ix, Self::fresh_entry(obj, &types, pinned));
        (ObjIx(ix), types, true)
    }

    /// Marshal-path export: finds or creates the entry and adds a
    /// transient pin in the same critical section, so the entry cannot be
    /// collected between the two steps. Returns (index, types, pin,
    /// created).
    pub fn export_transient(&self, obj: &Arc<dyn NetObject>) -> (ObjIx, TypeList, u64, bool) {
        let pin = self.next_pin.fetch_add(1, Ordering::Relaxed);
        let mut ident = self.ident.lock();
        let key = ptr_key(obj);
        if let Some(&ix) = ident.by_ptr.get(&key) {
            let mut shard = self.shard(ix).lock();
            let entry = shard
                .get_mut(&ix)
                .expect("by_ptr/shard consistent under ident");
            entry.transient.insert(pin);
            return (ObjIx(ix), entry.types.clone(), pin, false);
        }
        let ix = ident.next_ix;
        ident.next_ix += 1;
        ident.by_ptr.insert(key, ix);
        let types = obj.type_list();
        let mut entry = Self::fresh_entry(obj, &types, false);
        entry.transient.insert(pin);
        self.shard(ix).lock().insert(ix, entry);
        (ObjIx(ix), types, pin, true)
    }

    /// Installs an object at a reserved index (agent bootstrap).
    pub fn export_at(&self, ix: ObjIx, obj: Arc<dyn NetObject>) {
        let types = obj.type_list();
        let mut ident = self.ident.lock();
        ident.by_ptr.insert(ptr_key(&obj), ix.0);
        self.shard(ix.0)
            .lock()
            .insert(ix.0, Self::fresh_entry(&obj, &types, true));
    }

    /// Looks up the index for an already-exported object.
    pub fn lookup(&self, obj: &Arc<dyn NetObject>) -> Option<ObjIx> {
        self.ident
            .lock()
            .by_ptr
            .get(&ptr_key(obj))
            .map(|&ix| ObjIx(ix))
    }

    /// Returns the concrete object at `ix`, if present.
    pub fn get(&self, ix: ObjIx) -> Option<(Arc<dyn NetObject>, TypeList)> {
        self.shard(ix.0)
            .lock()
            .get(&ix.0)
            .map(|e| (Arc::clone(&e.obj), e.types.clone()))
    }

    /// Adds a transient pin to `ix`, returning the pin id.
    ///
    /// Returns `None` if no entry exists. Production marshaling uses the
    /// atomic [`ExportTable::export_transient`]; this entry point remains
    /// for tests exercising pin/collect interleavings directly.
    #[cfg(test)]
    pub fn add_transient(&self, ix: ObjIx) -> Option<u64> {
        let mut shard = self.shard(ix.0).lock();
        let entry = shard.get_mut(&ix.0)?;
        let pin = self.next_pin.fetch_add(1, Ordering::Relaxed);
        entry.transient.insert(pin);
        Some(pin)
    }

    /// Releases a transient pin; returns true if the entry was collected.
    pub fn remove_transient(&self, ix: ObjIx, pin: u64) -> bool {
        {
            let mut shard = self.shard(ix.0).lock();
            let Some(entry) = shard.get_mut(&ix.0) else {
                return false;
            };
            entry.transient.remove(&pin);
            if !entry.removable() {
                return false;
            }
        }
        self.collect_if_removable(ix)
    }

    /// Applies a dirty call from `client` with `seqno`, charging the
    /// client's footprint against `budget`.
    ///
    /// Stale or over-budget calls are rejected **without mutating
    /// anything** — in particular without creating a floor entry — so the
    /// validation path itself cannot be used to exhaust owner memory.
    /// Renewals (the client is already in the dirty set) never hit the
    /// quota checks: they acquire nothing new.
    pub fn apply_dirty(
        &self,
        ix: ObjIx,
        client: SpaceId,
        seqno: u64,
        client_ep: Option<Endpoint>,
        now: Instant,
        budget: &ResourceBudget,
    ) -> DirtyOutcome {
        let mut shard = self.shard(ix.0).lock();
        let Some(entry) = shard.get_mut(&ix.0) else {
            return DirtyOutcome::NoSuchObject;
        };
        if seqno <= entry.seqno_floor.get(&client).copied().unwrap_or(0) {
            return DirtyOutcome::Stale;
        }
        let new_dirty = !entry.dirty.contains_key(&client);
        let new_floor = !entry.seqno_floor.contains_key(&client);
        if new_dirty {
            // Check-and-increment under the counts leaf lock, so dirties
            // racing on different shards cannot both slip under a limit.
            let mut counts = self.counts.lock();
            let held = counts.get(&client).copied().unwrap_or_default();
            if let Some(max) = budget.max_export_slots {
                if held.dirty >= max {
                    return DirtyOutcome::QuotaExceeded("export slots");
                }
            }
            if let Some(max) = budget.max_dirty_entries {
                if held.dirty + held.floors + 1 + usize::from(new_floor) > max {
                    return DirtyOutcome::QuotaExceeded("dirty entries");
                }
            }
            let fp = counts.entry(client).or_default();
            fp.dirty += 1;
            if new_floor {
                fp.floors += 1;
            }
        }
        entry.seqno_floor.insert(client, seqno);
        match entry.dirty.get_mut(&client) {
            Some(info) => {
                info.last_seqno = seqno;
                info.renewed = now;
                if client_ep.is_some() {
                    info.client_ep = client_ep;
                }
            }
            None => {
                entry.dirty.insert(
                    client,
                    DirtyInfo {
                        last_seqno: seqno,
                        client_ep,
                        renewed: now,
                    },
                );
            }
        }
        DirtyOutcome::Applied(entry.types.clone())
    }

    /// Applies a clean call; returns whether the table entry was collected.
    ///
    /// A clean for an unknown object or an absent client is a no-op (the
    /// paper: "if it is not in the set, the clean call is a no-op"). A
    /// stale sequence number is likewise a no-op, but a clean records its
    /// seqno so that a *delayed* dirty it raced past cannot re-add the
    /// client afterwards — this is what makes strong cleans final.
    pub fn apply_clean(&self, ix: ObjIx, client: SpaceId, seqno: u64) -> CleanOutcome {
        {
            let mut shard = self.shard(ix.0).lock();
            let Some(entry) = shard.get_mut(&ix.0) else {
                return CleanOutcome::NoOp;
            };
            if seqno <= entry.seqno_floor.get(&client).copied().unwrap_or(0) {
                // Stale: reject without touching the floor map, so replayed
                // cleans leave no per-client state behind.
                return CleanOutcome::Stale;
            }
            let new_floor = entry.seqno_floor.insert(client, seqno).is_none();
            let dropped = entry.dirty.remove(&client).is_some();
            if new_floor || dropped {
                // Cleans are release operations and are never refused for
                // quota — but the floor entry a previously-unknown client's
                // clean leaves behind (required so a delayed dirty cannot
                // outrank it) still counts against its footprint.
                let mut counts = self.counts.lock();
                let fp = counts.entry(client).or_default();
                if new_floor {
                    fp.floors += 1;
                }
                if dropped {
                    fp.dirty = fp.dirty.saturating_sub(1);
                }
                if fp.is_empty() {
                    counts.remove(&client);
                }
            }
            if !dropped {
                // Unknown client: a no-op, but the floor update above still
                // blocks any delayed dirty with a lower seqno.
                return CleanOutcome::NoOp;
            }
            if !entry.removable() {
                return CleanOutcome::Removed;
            }
        }
        if self.collect_if_removable(ix) {
            CleanOutcome::Collected
        } else {
            CleanOutcome::Removed
        }
    }

    /// Removes `client` from every dirty set (presumed-dead client).
    /// Returns the number of entries collected as a result.
    pub fn purge_client(&self, client: SpaceId) -> u64 {
        let mut affected: Vec<u64> = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            affected.extend(
                shard
                    .iter_mut()
                    .filter_map(|(&ix, e)| e.dirty.remove(&client).map(|_| ix)),
            );
        }
        if !affected.is_empty() {
            let mut counts = self.counts.lock();
            if let Some(fp) = counts.get_mut(&client) {
                fp.dirty = fp.dirty.saturating_sub(affected.len());
                if fp.is_empty() {
                    counts.remove(&client);
                }
            }
        }
        let mut collected = 0;
        for ix in affected {
            if self.collect_if_removable(ObjIx(ix)) {
                collected += 1;
            }
        }
        collected
    }

    /// Removes dirty entries older than `expiry`; returns (expired entries,
    /// collected objects). Lease mode only.
    pub fn expire_leases(&self, expiry: Instant) -> (u64, u64) {
        let mut expired = 0;
        let mut affected = Vec::new();
        let mut dropped: HashMap<SpaceId, usize> = HashMap::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            for (&ix, e) in shard.iter_mut() {
                let before = e.dirty.len();
                e.dirty.retain(|&c, info| {
                    let keep = info.renewed >= expiry;
                    if !keep {
                        *dropped.entry(c).or_insert(0) += 1;
                    }
                    keep
                });
                let removed = before - e.dirty.len();
                if removed > 0 {
                    expired += removed as u64;
                    affected.push(ix);
                }
            }
        }
        if !dropped.is_empty() {
            let mut counts = self.counts.lock();
            for (c, n) in dropped {
                if let Some(fp) = counts.get_mut(&c) {
                    fp.dirty = fp.dirty.saturating_sub(n);
                    if fp.is_empty() {
                        counts.remove(&c);
                    }
                }
            }
        }
        let mut collected = 0;
        for ix in affected {
            if self.collect_if_removable(ObjIx(ix)) {
                collected += 1;
            }
        }
        (expired, collected)
    }

    /// Every (client, endpoint) pair present in some dirty set; the ping
    /// demon's worklist.
    pub fn dirty_clients(&self) -> Vec<(SpaceId, Option<Endpoint>)> {
        let mut seen: HashMap<SpaceId, Option<Endpoint>> = HashMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for e in shard.values() {
                for (&client, info) in &e.dirty {
                    let slot = seen.entry(client).or_insert(None);
                    if slot.is_none() {
                        *slot = info.client_ep.clone();
                    }
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Marks an explicit export removable again; returns true if collected.
    pub fn unpin(&self, ix: ObjIx) -> bool {
        {
            let mut shard = self.shard(ix.0).lock();
            match shard.get_mut(&ix.0) {
                Some(e) => {
                    e.pinned = false;
                    if !e.removable() {
                        return false;
                    }
                }
                None => return false,
            }
        }
        self.collect_if_removable(ix)
    }

    /// Atomically looks up `obj` and unpins its entry (explicit
    /// unexport). Returns the index and whether the entry was collected.
    pub fn unexport(&self, obj: &Arc<dyn NetObject>) -> Option<(ObjIx, bool)> {
        let ix = self.lookup(obj)?;
        Some((ix, self.unpin(ix)))
    }

    /// Total dirty-set entries across all shards (gauge; per-shard
    /// consistent, not globally atomic).
    pub fn dirty_entry_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|e| e.dirty.len() as u64).sum::<u64>())
            .sum()
    }

    /// Per-client footprint snapshot, sorted by client id (gauges and
    /// introspection; consistent because the map has its own lock).
    pub fn client_footprints(&self) -> Vec<(SpaceId, ClientFootprint)> {
        let counts = self.counts.lock();
        let mut v: Vec<_> = counts.iter().map(|(&c, &fp)| (c, fp)).collect();
        v.sort_by_key(|(c, _)| *c);
        v
    }

    /// Recomputes every client's footprint from a full table scan and
    /// compares it with the maintained counts (test observability).
    #[cfg(test)]
    pub fn counts_match_scan(&self) -> bool {
        let mut scanned: HashMap<SpaceId, (usize, usize)> = HashMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for e in shard.values() {
                for &c in e.dirty.keys() {
                    scanned.entry(c).or_default().0 += 1;
                }
                for &c in e.seqno_floor.keys() {
                    scanned.entry(c).or_default().1 += 1;
                }
            }
        }
        let counts = self.counts.lock();
        counts.len() == scanned.len()
            && counts
                .iter()
                .all(|(c, fp)| scanned.get(c) == Some(&(fp.dirty, fp.floors)))
    }

    /// Number of live concrete entries at non-reserved indices (built-ins
    /// at reserved indices live forever and would otherwise make every
    /// listening space report a nonzero count).
    pub fn exported_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .keys()
                    .filter(|&&ix| !ObjIx(ix).is_reserved())
                    .count()
            })
            .sum()
    }

    /// Number of live concrete entries (test observability).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Removes the entry if nothing protects it; true if removed.
    ///
    /// Callers have observed (under the entry's shard lock, since
    /// released) that the entry *looked* removable. Removal must hold
    /// `ident` → shard so the reverse map stays consistent, so this
    /// re-acquires in the canonical order and re-checks: a concurrent
    /// export or transient pin may have re-protected the entry in the
    /// window, in which case nothing happens.
    fn collect_if_removable(&self, ix: ObjIx) -> bool {
        let mut ident = self.ident.lock();
        let mut shard = self.shard(ix.0).lock();
        let removable = shard.get(&ix.0).is_some_and(|e| e.removable());
        if removable {
            let entry = shard.remove(&ix.0).expect("checked present");
            // Removable ⇒ the dirty set is empty; only the entry's floor
            // entries still weigh on client footprints. Release them.
            if !entry.seqno_floor.is_empty() {
                let mut counts = self.counts.lock();
                for client in entry.seqno_floor.keys() {
                    let Some(fp) = counts.get_mut(client) else {
                        continue;
                    };
                    fp.floors = fp.floors.saturating_sub(1);
                    if fp.is_empty() {
                        counts.remove(client);
                    }
                }
            }
            let key = ptr_key(&entry.obj);
            if ident.by_ptr.get(&key) == Some(&ix.0) {
                ident.by_ptr.remove(&key);
            }
        }
        removable
    }
}

/// One import shard: slots plus the condvar unmarshal threads block on.
pub(crate) struct ImportShard {
    pub map: Mutex<HashMap<WireRep, ImportSlot>>,
    /// Signals import-slot state changes to blocked unmarshal threads
    /// waiting on slots in *this shard*.
    pub cv: Condvar,
}

/// Client-side table state, sharded by `WireRep` hash.
pub(crate) struct ImportTable {
    shards: Vec<ImportShard>,
}

impl ImportTable {
    pub fn new() -> ImportTable {
        ImportTable {
            shards: (0..IMPORT_SHARDS)
                .map(|_| ImportShard {
                    map: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
        }
    }

    /// The shard owning `rep`'s slot.
    pub fn shard(&self, rep: &WireRep) -> &ImportShard {
        let mut h = DefaultHasher::new();
        rep.hash(&mut h);
        &self.shards[(h.finish() as usize) % IMPORT_SHARDS]
    }

    /// All shards, for whole-table scans (lease renewal, gauges). Lock one
    /// at a time; the view is per-shard consistent.
    pub fn shards(&self) -> &[ImportShard] {
        &self.shards
    }

    /// Total import slots across all shards (gauge).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }
}

/// Result of applying a dirty call at the owner.
pub(crate) enum DirtyOutcome {
    /// The client is now listed; carries the object's type list.
    Applied(TypeList),
    /// Sequence number not newer than the last seen: ignored.
    Stale,
    /// The object is gone from the table.
    NoSuchObject,
    /// The client's footprint is at its budget; nothing was mutated. The
    /// static string names the exhausted limit.
    QuotaExceeded(&'static str),
}

/// Result of applying a clean call at the owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CleanOutcome {
    /// Client removed; entry survives (other claims remain).
    Removed,
    /// Client removed and the entry left the table.
    Collected,
    /// Nothing to do (unknown object or client not listed).
    NoOp,
    /// Sequence number not newer than the last seen: ignored.
    Stale,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NetResult;
    use crate::obj::MarshaledResult;
    use crate::space::Space;

    struct Dummy;
    impl NetObject for Dummy {
        fn type_list(&self) -> TypeList {
            TypeList::from_names(&["test.Dummy"])
        }
        fn dispatch(&self, _s: &Space, _m: u32, _a: &[u8]) -> NetResult<MarshaledResult> {
            Ok(MarshaledResult::plain(Vec::new()))
        }
    }

    fn dummy() -> Arc<dyn NetObject> {
        Arc::new(Dummy)
    }

    fn fresh() -> ExportTable {
        ExportTable::new()
    }

    fn client(n: u128) -> SpaceId {
        SpaceId::from_raw(n)
    }

    fn open() -> ResourceBudget {
        ResourceBudget::unlimited()
    }

    #[test]
    fn export_reuses_index_for_same_object() {
        let e = fresh();
        let obj = dummy();
        let (ix1, _, _) = e.export(&obj, false);
        let (ix2, _, _) = e.export(&obj, false);
        assert_eq!(ix1, ix2);
        assert_eq!(e.len(), 1);
        let other = dummy();
        let (ix3, _, _) = e.export(&other, false);
        assert_ne!(ix1, ix3);
    }

    #[test]
    fn unprotected_entry_collects_on_transient_release() {
        let e = fresh();
        let obj = dummy();
        let (ix, _, _) = e.export(&obj, false);
        let pin = e.add_transient(ix).unwrap();
        assert_eq!(e.len(), 1);
        assert!(e.remove_transient(ix, pin));
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn export_transient_is_atomic_and_reuses_index() {
        let e = fresh();
        let obj = dummy();
        let (ix1, _, pin1, created1) = e.export_transient(&obj);
        assert!(created1);
        let (ix2, _, pin2, created2) = e.export_transient(&obj);
        assert!(!created2);
        assert_eq!(ix1, ix2);
        assert_ne!(pin1, pin2);
        assert!(!e.remove_transient(ix1, pin1));
        assert!(e.remove_transient(ix1, pin2));
        assert_eq!(e.len(), 0);
        // A fresh marshal after collection allocates a new index.
        let (ix3, _, _, created3) = e.export_transient(&obj);
        assert!(created3);
        assert_ne!(ix1, ix3);
    }

    #[test]
    fn pinned_entry_survives_until_unpinned() {
        let e = fresh();
        let obj = dummy();
        let (ix, _, _) = e.export(&obj, true);
        let pin = e.add_transient(ix).unwrap();
        assert!(!e.remove_transient(ix, pin));
        assert_eq!(e.len(), 1);
        assert!(e.unpin(ix));
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn dirty_then_clean_collects() {
        let e = fresh();
        let obj = dummy();
        let (ix, _, _) = e.export(&obj, false);
        let pin = e.add_transient(ix).unwrap();
        let now = Instant::now();
        assert!(matches!(
            e.apply_dirty(ix, client(1), 1, None, now, &open()),
            DirtyOutcome::Applied(_)
        ));
        // Transient released: dirty entry still protects.
        assert!(!e.remove_transient(ix, pin));
        assert_eq!(e.apply_clean(ix, client(1), 2), CleanOutcome::Collected);
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn stale_dirty_ignored() {
        let e = fresh();
        let obj = dummy();
        let (ix, _, _) = e.export(&obj, true);
        let now = Instant::now();
        assert!(matches!(
            e.apply_dirty(ix, client(1), 5, None, now, &open()),
            DirtyOutcome::Applied(_)
        ));
        assert!(matches!(
            e.apply_dirty(ix, client(1), 5, None, now, &open()),
            DirtyOutcome::Stale
        ));
        assert!(matches!(
            e.apply_dirty(ix, client(1), 4, None, now, &open()),
            DirtyOutcome::Stale
        ));
        assert!(matches!(
            e.apply_dirty(ix, client(1), 6, None, now, &open()),
            DirtyOutcome::Applied(_)
        ));
    }

    #[test]
    fn delayed_dirty_after_strong_clean_is_stale() {
        // The failure-handling scenario: dirty(7) is delayed in the
        // network; the client gives up and sends strong clean(8); the
        // dirty finally arrives and must NOT resurrect the entry.
        let e = fresh();
        let obj = dummy();
        let (ix, _, _) = e.export(&obj, true);
        let now = Instant::now();
        assert!(matches!(
            e.apply_dirty(ix, client(1), 5, None, now, &open()),
            DirtyOutcome::Applied(_)
        ));
        assert_eq!(e.apply_clean(ix, client(1), 8), CleanOutcome::Removed);
        // The delayed dirty(7) finally arrives: the seqno floor left by the
        // strong clean(8) must block it.
        assert!(matches!(
            e.apply_dirty(ix, client(1), 7, None, now, &open()),
            DirtyOutcome::Stale
        ));
        // And a genuinely newer dirty (a fresh import) is accepted.
        assert!(matches!(
            e.apply_dirty(ix, client(1), 9, None, now, &open()),
            DirtyOutcome::Applied(_)
        ));
    }

    #[test]
    fn clean_for_unknown_is_noop() {
        let e = fresh();
        assert_eq!(e.apply_clean(ObjIx(99), client(1), 1), CleanOutcome::NoOp);
        let obj = dummy();
        let (ix, _, _) = e.export(&obj, true);
        assert_eq!(e.apply_clean(ix, client(1), 1), CleanOutcome::NoOp);
    }

    #[test]
    fn purge_client_empties_all_sets() {
        let e = fresh();
        let a = dummy();
        let b = dummy();
        let (ia, _, _) = e.export(&a, false);
        let (ib, _, _) = e.export(&b, false);
        let now = Instant::now();
        e.apply_dirty(ia, client(1), 1, None, now, &open());
        e.apply_dirty(ib, client(1), 2, None, now, &open());
        e.apply_dirty(ib, client(2), 3, None, now, &open());
        assert_eq!(e.purge_client(client(1)), 1); // a collected, b survives
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn lease_expiry() {
        let e = fresh();
        let obj = dummy();
        let (ix, _, _) = e.export(&obj, false);
        let old = Instant::now() - std::time::Duration::from_secs(100);
        e.apply_dirty(ix, client(1), 1, None, old, &open());
        let (expired, collected) =
            e.expire_leases(Instant::now() - std::time::Duration::from_secs(10));
        assert_eq!((expired, collected), (1, 1));
    }

    #[test]
    fn dirty_clients_lists_endpoints() {
        let e = fresh();
        let obj = dummy();
        let (ix, _, _) = e.export(&obj, true);
        let now = Instant::now();
        e.apply_dirty(ix, client(1), 1, Some(Endpoint::sim("c1")), now, &open());
        e.apply_dirty(ix, client(2), 2, None, now, &open());
        let mut clients = e.dirty_clients();
        clients.sort_by_key(|(s, _)| *s);
        assert_eq!(clients.len(), 2);
        assert_eq!(clients[0].1, Some(Endpoint::sim("c1")));
        assert_eq!(clients[1].1, None);
    }

    #[test]
    fn export_slot_quota_refuses_new_registrations_only() {
        let e = fresh();
        let budget = ResourceBudget {
            max_export_slots: Some(2),
            ..ResourceBudget::unlimited()
        };
        let objs: Vec<_> = (0..3).map(|_| dummy()).collect();
        let ixs: Vec<_> = objs.iter().map(|o| e.export(o, true).0).collect();
        let now = Instant::now();
        assert!(matches!(
            e.apply_dirty(ixs[0], client(1), 1, None, now, &budget),
            DirtyOutcome::Applied(_)
        ));
        assert!(matches!(
            e.apply_dirty(ixs[1], client(1), 2, None, now, &budget),
            DirtyOutcome::Applied(_)
        ));
        // A third distinct object exceeds the slot budget...
        assert!(matches!(
            e.apply_dirty(ixs[2], client(1), 3, None, now, &budget),
            DirtyOutcome::QuotaExceeded("export slots")
        ));
        // ...and the refusal left no floor entry behind: the same seqno
        // succeeds once a slot frees up.
        assert!(matches!(
            e.apply_dirty(ixs[0], client(1), 4, None, now, &budget),
            DirtyOutcome::Applied(_)
        ));
        // Another client has its own budget.
        assert!(matches!(
            e.apply_dirty(ixs[2], client(2), 1, None, now, &budget),
            DirtyOutcome::Applied(_)
        ));
        assert_eq!(e.apply_clean(ixs[0], client(1), 5), CleanOutcome::Removed);
        assert!(matches!(
            e.apply_dirty(ixs[2], client(1), 3, None, now, &budget),
            DirtyOutcome::Applied(_)
        ));
        assert!(e.counts_match_scan());
    }

    #[test]
    fn dirty_entry_quota_counts_lingering_floors() {
        let e = fresh();
        // Floors persist after cleans on pinned entries, so a churned
        // client accumulates floor entries that count against this limit.
        let budget = ResourceBudget {
            max_dirty_entries: Some(4),
            ..ResourceBudget::unlimited()
        };
        let objs: Vec<_> = (0..4).map(|_| dummy()).collect();
        let ixs: Vec<_> = objs.iter().map(|o| e.export(o, true).0).collect();
        let now = Instant::now();
        // Dirty+clean the first two objects: 0 dirty, 2 floors.
        for (n, &ix) in ixs[..2].iter().enumerate() {
            assert!(matches!(
                e.apply_dirty(ix, client(1), 2 * n as u64 + 1, None, now, &budget),
                DirtyOutcome::Applied(_)
            ));
            assert_eq!(
                e.apply_clean(ix, client(1), 2 * n as u64 + 2),
                CleanOutcome::Removed
            );
        }
        // A fresh object costs dirty+floor = 2: 1 dirty, 3 floors = 4. OK.
        assert!(matches!(
            e.apply_dirty(ixs[2], client(1), 1, None, now, &budget),
            DirtyOutcome::Applied(_)
        ));
        // The next would need 2 more: refused without mutation.
        assert!(matches!(
            e.apply_dirty(ixs[3], client(1), 1, None, now, &budget),
            DirtyOutcome::QuotaExceeded("dirty entries")
        ));
        // Unpinning the cleaned entries collects them and releases their
        // floors (2 of the 4 budget units), making room for the refused
        // dirty's floor+dirty pair.
        assert!(e.unpin(ixs[0]));
        assert!(e.unpin(ixs[1]));
        assert!(matches!(
            e.apply_dirty(ixs[3], client(1), 1, None, now, &budget),
            DirtyOutcome::Applied(_)
        ));
        assert!(e.counts_match_scan());
    }

    #[test]
    fn refused_and_stale_calls_leave_no_footprint() {
        let e = fresh();
        let obj = dummy();
        let (ix, _, _) = e.export(&obj, true);
        let now = Instant::now();
        // A seqno-0 dirty from a never-seen client is stale (the floor
        // starts at 0) and must not create any per-client state.
        assert!(matches!(
            e.apply_dirty(ix, client(9), 0, None, now, &open()),
            DirtyOutcome::Stale
        ));
        assert!(e.client_footprints().is_empty());
        // Same for an over-quota client that was never admitted.
        let zero = ResourceBudget {
            max_export_slots: Some(0),
            ..ResourceBudget::unlimited()
        };
        assert!(matches!(
            e.apply_dirty(ix, client(9), 1, None, now, &zero),
            DirtyOutcome::QuotaExceeded(_)
        ));
        assert!(e.client_footprints().is_empty());
        // A stale clean replay likewise records nothing...
        assert_eq!(e.apply_clean(ix, client(9), 0), CleanOutcome::Stale);
        assert!(e.client_footprints().is_empty());
        // ...but an unknown client's *advancing* clean leaves the floor
        // entry the protocol requires, and it is accounted for.
        assert_eq!(e.apply_clean(ix, client(9), 3), CleanOutcome::NoOp);
        let fp = e.client_footprints();
        assert_eq!(fp.len(), 1);
        assert_eq!((fp[0].1.dirty, fp[0].1.floors), (0, 1));
        assert!(e.counts_match_scan());
    }

    #[test]
    fn footprints_survive_purge_expiry_and_collection() {
        let e = fresh();
        let now = Instant::now();
        let objs: Vec<_> = (0..6).map(|_| dummy()).collect();
        let ixs: Vec<_> = objs.iter().map(|o| e.export(o, false).0).collect();
        for (n, &ix) in ixs.iter().enumerate() {
            e.apply_dirty(ix, client(1), 1, None, now, &open());
            if n % 2 == 0 {
                e.apply_dirty(ix, client(2), 1, None, now, &open());
            }
        }
        assert!(e.counts_match_scan());
        // Purge client 1: the objects only it held collect (releasing
        // their floors); on objects shared with client 2 the entry
        // survives, and with it client 1's floor entries.
        e.purge_client(client(1));
        assert!(e.counts_match_scan());
        let fps = e.client_footprints();
        assert_eq!(fps.len(), 2);
        assert_eq!(
            (fps[0].0, fps[0].1.dirty, fps[0].1.floors),
            (client(1), 0, 3)
        );
        assert_eq!(fps[1].0, client(2));
        // Expire client 2's leases: everything collects, counts drain.
        let (expired, _) = e.expire_leases(now + std::time::Duration::from_secs(1));
        assert_eq!(expired, 3);
        assert!(e.client_footprints().is_empty());
        assert!(e.counts_match_scan());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn entries_spread_across_shards_and_scans_see_all() {
        let e = fresh();
        let objs: Vec<_> = (0..64).map(|_| dummy()).collect();
        let now = Instant::now();
        for obj in &objs {
            let (ix, _, _) = e.export(obj, false);
            e.apply_dirty(ix, client(7), 1, None, now, &open());
        }
        assert_eq!(e.len(), 64);
        assert_eq!(e.dirty_entry_count(), 64);
        assert_eq!(e.purge_client(client(7)), 64);
        assert_eq!(e.len(), 0);
    }
}
