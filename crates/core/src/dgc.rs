//! The distributed reference-listing collector.
//!
//! Owner side: the dirty/clean/ping service answering at reserved object
//! index 0, applying sequence-numbered operations to the object table's
//! dirty sets, and the ping/lease demon detecting dead clients.
//!
//! Client side: reference import (surrogate life cycle: `⊥ → nil → OK →
//! ccit → ⊥`, with the `ccitnil` resurrection path), the cleanup demon
//! issuing clean calls when surrogates become unreachable, retry with
//! *strong* cleans after ambiguous failures, and lease renewal.
//!
//! The life-cycle logic deliberately mirrors, transition for transition,
//! the formal specification modelled in the `netobj-dgc-model` crate; the
//! comments name the corresponding abstract states.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError};
use netobj_transport::clock::recv_deadline;
use netobj_transport::{Bytes, ClockHandle, Endpoint};
use netobj_wire::pickle::Pickle;
use netobj_wire::{ObjIx, SpaceId, TraceKind, TypeList, WireError, WireRep};

use crate::error::{Error, NetResult};
use crate::handle::{Handle, HandleKind, SurrogateCore};
use crate::marshal::UnmarshalCx;
use crate::space::{Space, SpaceInner};
use crate::table::{CleanOutcome, DirtyOutcome, ImportSlot, ImportState};

/// Method indices of the collector service object (index 0).
pub mod methods {
    /// `dirty(ix, seqno, client_endpoint?) -> TypeList`
    pub const DIRTY: u32 = 0;
    /// `clean(ix, seqno, strong) -> ()`
    pub const CLEAN: u32 = 1;
    /// `ping() -> ()`
    pub const PING: u32 = 2;
    /// `identify() -> (SpaceId, Option<Endpoint>)`
    pub const IDENTIFY: u32 = 3;
    /// `clean_batch(Vec<(ix, seqno, strong)>) -> ()` — several cleans in
    /// one call (the batching optimisation).
    pub const CLEAN_BATCH: u32 = 4;
}

/// Largest accepted `CLEAN_BATCH` (the demon sends at most 64 per round).
pub(crate) const MAX_CLEAN_BATCH: usize = 4096;

/// Work items for the cleanup demon.
pub(crate) enum GcJob {
    /// A surrogate core was dropped: begin cleanup unless resurrected.
    Unreachable { wirerep: WireRep, epoch: u64 },
    /// Send (or retry) a clean call.
    SendClean {
        wirerep: WireRep,
        owner_ep: Endpoint,
        seqno: u64,
        strong: bool,
        attempts: u32,
    },
    /// FIFO variant: register a reference in the background.
    AsyncDirty {
        wirerep: WireRep,
        owner_ep: Endpoint,
        seqno: u64,
        notify: crossbeam::channel::Sender<NetResult<()>>,
    },
}

// ---------------------------------------------------------------------------
// Owner side: the GC service
// ---------------------------------------------------------------------------

/// Dispatches a call on the collector service object.
pub(crate) fn dispatch_gc(
    space: &Space,
    caller: SpaceId,
    method: u32,
    args: &[u8],
) -> NetResult<Vec<u8>> {
    match method {
        methods::DIRTY => {
            let (ix, seqno, client_ep) = <(u64, u64, Option<Endpoint>)>::from_pickle_bytes(args)?;
            // The protocol never issues sequence number 0 (`next_gc_seqno`
            // starts at 1); reject it as malformed rather than letting it
            // take the stale path, so fuzzers and broken peers get a
            // `BadArguments` reply instead of a confusing "stale" error.
            if seqno == 0 {
                return Err(Error::Wire(WireError::OutOfRange(
                    "dirty sequence number must be nonzero",
                )));
            }
            let target = WireRep::new(space.id(), ObjIx(ix));
            let outcome = space.inner.table.exports.apply_dirty(
                ObjIx(ix),
                caller,
                seqno,
                client_ep,
                space.inner.options.clock.now(),
                &space.inner.options.budget,
            );
            match outcome {
                DirtyOutcome::Applied(types) => {
                    space
                        .inner
                        .stats
                        .dirty_received
                        .fetch_add(1, Ordering::Relaxed);
                    space.emit(TraceKind::DirtyApplied {
                        owner: space.id(),
                        client: caller,
                        target,
                        seqno,
                    });
                    Ok(types.to_pickle_bytes())
                }
                DirtyOutcome::Stale => {
                    // Out-of-sequence dirty: "an incoming operation will be
                    // performed only if its sequence number exceeds this
                    // value; otherwise it has no effect." The caller must
                    // not believe it registered, so this is an error.
                    space
                        .inner
                        .stats
                        .dirty_stale
                        .fetch_add(1, Ordering::Relaxed);
                    space.emit(TraceKind::DirtyStale {
                        owner: space.id(),
                        client: caller,
                        target,
                        seqno,
                    });
                    Err(Error::ImportFailed("stale dirty call".into()))
                }
                DirtyOutcome::NoSuchObject => {
                    space.emit(TraceKind::DirtyRefused {
                        owner: space.id(),
                        client: caller,
                        target,
                        seqno,
                    });
                    Err(Error::NoSuchObject(WireRep::new(space.id(), ObjIx(ix))))
                }
                DirtyOutcome::QuotaExceeded(what) => {
                    space
                        .inner
                        .stats
                        .dirty_refused_quota
                        .fetch_add(1, Ordering::Relaxed);
                    space.emit(TraceKind::DirtyRefused {
                        owner: space.id(),
                        client: caller,
                        target,
                        seqno,
                    });
                    Err(Error::QuotaExceeded(format!(
                        "dirty call refused: {what} budget exhausted"
                    )))
                }
            }
        }
        methods::CLEAN => {
            let (ix, seqno, strong) = <(u64, u64, bool)>::from_pickle_bytes(args)?;
            if seqno == 0 {
                return Err(Error::Wire(WireError::OutOfRange(
                    "clean sequence number must be nonzero",
                )));
            }
            let outcome = space
                .inner
                .table
                .exports
                .apply_clean(ObjIx(ix), caller, seqno);
            space
                .inner
                .stats
                .clean_received
                .fetch_add(1, Ordering::Relaxed);
            trace_clean_outcome(space, caller, ObjIx(ix), seqno, strong, outcome);
            if outcome == CleanOutcome::Collected {
                space
                    .inner
                    .stats
                    .exports_collected
                    .fetch_add(1, Ordering::Relaxed);
            }
            Ok(().to_pickle_bytes())
        }
        methods::CLEAN_BATCH => {
            let entries = <Vec<(u64, u64, bool)>>::from_pickle_bytes(args)?;
            // Validate the whole batch before applying any entry, so a
            // malformed batch cannot leave the table half-mutated. The
            // demon batches at most 64 intents per round; 4096 leaves
            // generous headroom while bounding per-call work. A client has
            // at most one pending clean per object, so duplicate indices
            // can only come from a broken or hostile peer.
            if entries.len() > MAX_CLEAN_BATCH {
                return Err(Error::Wire(WireError::OutOfRange(
                    "clean batch exceeds maximum size",
                )));
            }
            if entries.iter().any(|&(_, seqno, _)| seqno == 0) {
                return Err(Error::Wire(WireError::OutOfRange(
                    "clean sequence number must be nonzero",
                )));
            }
            let mut seen = std::collections::HashSet::with_capacity(entries.len());
            if !entries.iter().all(|&(ix, _, _)| seen.insert(ix)) {
                return Err(Error::Wire(WireError::OutOfRange(
                    "clean batch repeats an object index",
                )));
            }
            // Each clean applies under its own entry's shard lock; the
            // batch is transport-level batching, not an atomic group.
            let exports = &space.inner.table.exports;
            let outcomes: Vec<(u64, u64, bool, CleanOutcome)> = entries
                .iter()
                .map(|&(ix, seqno, strong)| {
                    (
                        ix,
                        seqno,
                        strong,
                        exports.apply_clean(ObjIx(ix), caller, seqno),
                    )
                })
                .collect();
            let mut collected = 0u64;
            for &(ix, seqno, strong, outcome) in &outcomes {
                trace_clean_outcome(space, caller, ObjIx(ix), seqno, strong, outcome);
                if outcome == CleanOutcome::Collected {
                    collected += 1;
                }
            }
            space
                .inner
                .stats
                .clean_received
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
            space
                .inner
                .stats
                .exports_collected
                .fetch_add(collected, Ordering::Relaxed);
            Ok(().to_pickle_bytes())
        }
        methods::PING => {
            space
                .inner
                .stats
                .pings_received
                .fetch_add(1, Ordering::Relaxed);
            space.emit(TraceKind::PingReceived {
                space: space.id(),
                from: caller,
            });
            Ok(().to_pickle_bytes())
        }
        methods::IDENTIFY => Ok((space.id(), space.endpoint()).to_pickle_bytes()),
        _ => Err(Error::app(format!("gc service has no method {method}"))),
    }
}

/// Records the trace events for one applied (or rejected) clean call.
fn trace_clean_outcome(
    space: &Space,
    caller: SpaceId,
    ix: ObjIx,
    seqno: u64,
    strong: bool,
    outcome: CleanOutcome,
) {
    let target = WireRep::new(space.id(), ix);
    match outcome {
        CleanOutcome::Stale => space.emit(TraceKind::CleanStale {
            owner: space.id(),
            client: caller,
            target,
            seqno,
        }),
        CleanOutcome::Removed | CleanOutcome::Collected | CleanOutcome::NoOp => {
            space.emit(TraceKind::CleanApplied {
                owner: space.id(),
                client: caller,
                target,
                seqno,
                strong,
            });
            if outcome == CleanOutcome::Collected {
                space.emit(TraceKind::ExportCollected {
                    owner: space.id(),
                    target,
                });
            }
        }
    }
}

/// Issues one collector call through the space's resilient caller.
///
/// Dirty and clean calls pass `idempotent: false` even though re-applying
/// them is harmless at the owner: a transparent retry of a dirty/clean
/// whose first copy *did* land would carry an already-consumed sequence
/// number and be rejected as stale, converting an ambiguous success into a
/// definite failure. The collector has its own ambiguity protocol (strong
/// cleans, demon-level retries with the *same* seqno), so only
/// not-delivered failures are retried underneath it. Pings and identify
/// are genuinely idempotent.
#[allow(clippy::too_many_arguments)]
fn gc_call(
    space: &Space,
    target_space: SpaceId,
    ep: &Endpoint,
    method: u32,
    args: Vec<u8>,
    timeout: Duration,
    idempotent: bool,
    hist_kind: Option<usize>,
) -> NetResult<Bytes> {
    let clock = &space.inner.options.clock;
    let start = clock.now();
    let result = space
        .resilient_call(
            WireRep::gc_service(target_space),
            ep,
            method,
            Bytes::from(args),
            timeout,
            idempotent,
        )
        // Dropping the reply's ack token sends the acknowledgement.
        .map(|reply| reply.bytes);
    if let Some(kind) = hist_kind {
        // Latency of the whole resilient exchange, retries included —
        // what the collector actually waited, success or not.
        space.record_gc_call(kind, clock.now().saturating_duration_since(start));
    }
    result
}

/// Indices into [`crate::metrics::GC_KINDS`] for [`gc_call`]'s histogram.
mod gc_hist {
    pub(super) const DIRTY: Option<usize> = Some(0);
    pub(super) const CLEAN: Option<usize> = Some(1);
    pub(super) const STRONG_CLEAN: Option<usize> = Some(2);
    pub(super) const PING: Option<usize> = Some(3);
}

/// Asks the space listening at `ep` who it is.
pub(crate) fn identify(space: &Space, ep: &Endpoint) -> NetResult<(SpaceId, Option<Endpoint>)> {
    let bytes = gc_call(
        space,
        SpaceId::from_raw(0),
        ep,
        methods::IDENTIFY,
        ().to_pickle_bytes(),
        space.inner.options.dirty_timeout,
        true,
        None,
    )?;
    Ok(<(SpaceId, Option<Endpoint>)>::from_pickle_bytes(&bytes)?)
}

fn send_dirty(
    space: &Space,
    wirerep: WireRep,
    owner_ep: &Endpoint,
    seqno: u64,
) -> NetResult<TypeList> {
    space.inner.stats.dirty_sent.fetch_add(1, Ordering::Relaxed);
    space.emit(TraceKind::DirtySent {
        client: space.id(),
        owner: wirerep.space,
        target: wirerep,
        seqno,
    });
    let args = (wirerep.ix.0, seqno, space.endpoint()).to_pickle_bytes();
    let result = gc_call(
        space,
        wirerep.space,
        owner_ep,
        methods::DIRTY,
        args,
        space.inner.options.dirty_timeout,
        false,
        gc_hist::DIRTY,
    );
    // An ambiguous failure means no answer arrived — there is no ack to
    // record, and a strong clean will resolve the uncertainty.
    match &result {
        Ok(_) => space.emit(TraceKind::DirtyAcked {
            client: space.id(),
            owner: wirerep.space,
            target: wirerep,
            seqno,
            ok: true,
        }),
        Err(e) if !e.is_ambiguous() => space.emit(TraceKind::DirtyAcked {
            client: space.id(),
            owner: wirerep.space,
            target: wirerep,
            seqno,
            ok: false,
        }),
        Err(_) => {}
    }
    Ok(TypeList::from_pickle_bytes(&result?)?)
}

fn send_clean(
    space: &Space,
    wirerep: WireRep,
    owner_ep: &Endpoint,
    seqno: u64,
    strong: bool,
) -> NetResult<()> {
    if strong {
        space
            .inner
            .stats
            .strong_clean_sent
            .fetch_add(1, Ordering::Relaxed);
    } else {
        space.inner.stats.clean_sent.fetch_add(1, Ordering::Relaxed);
    }
    space.emit(TraceKind::CleanSent {
        client: space.id(),
        owner: wirerep.space,
        target: wirerep,
        seqno,
        strong,
        batched: false,
    });
    let args = (wirerep.ix.0, seqno, strong).to_pickle_bytes();
    let bytes = gc_call(
        space,
        wirerep.space,
        owner_ep,
        methods::CLEAN,
        args,
        space.inner.options.clean_timeout,
        false,
        if strong {
            gc_hist::STRONG_CLEAN
        } else {
            gc_hist::CLEAN
        },
    )?;
    space.emit(TraceKind::CleanAcked {
        client: space.id(),
        owner: wirerep.space,
        target: wirerep,
        seqno,
    });
    Ok(<()>::from_pickle_bytes(&bytes)?)
}

// ---------------------------------------------------------------------------
// Client side: reference import (the life cycle)
// ---------------------------------------------------------------------------

/// Binds a received reference to a handle, registering it with the owner.
///
/// This is the runtime's `receive_copy`: depending on the slot state it
/// creates the slot and performs the dirty call (`⊥ → nil → OK`), reuses
/// the live surrogate (`OK`), resurrects a dying one (cancelling the
/// pending cleanup), converts `ccit → ccitnil`, or blocks until a
/// concurrent registration or cleanup completes.
pub(crate) fn import_ref(
    space: &Space,
    wirerep: WireRep,
    owner_ep: Endpoint,
    types: TypeList,
    cx: Option<&mut UnmarshalCx<'_, '_>>,
) -> NetResult<Handle> {
    space.ensure_running()?;
    // The FIFO variant only applies to unmarshal paths (it exists to keep
    // deserialisation non-blocking). Bootstrap imports have no carrying
    // message whose acknowledgement could wait for the registration, and
    // no authoritative type list yet, so they use the base blocking path.
    if space.inner.options.fifo_variant && cx.is_some() {
        return import_ref_fifo(space, wirerep, owner_ep, types, cx);
    }
    // All state for `wirerep` lives in one import shard; its condvar
    // signals slot transitions to the waits below.
    let shard = space.inner.table.imports.shard(&wirerep);
    loop {
        let mut imports = shard.map.lock();
        match imports.get_mut(&wirerep) {
            None => {
                // ⊥ → nil: create the slot, then register with the owner.
                imports.insert(
                    wirerep,
                    ImportSlot {
                        owner_ep: owner_ep.clone(),
                        types: types.clone(),
                        state: ImportState::Creating,
                        epoch: 0,
                        weak: Weak::new(),
                        waiters: 0,
                        failed: false,
                    },
                );
                drop(imports);
                let seqno = space.next_gc_seqno();
                let clock = space.inner.options.clock.clone();
                let t0 = clock.now();
                let result = send_dirty(space, wirerep, &owner_ep, seqno);
                // The registering thread is "suspended deserialisation" for
                // the dirty round-trip, exactly like the waiters behind it.
                space
                    .inner
                    .stats
                    .add_blocked(clock.now().saturating_duration_since(t0));
                let mut imports = shard.map.lock();
                let Some(slot) = imports.get_mut(&wirerep) else {
                    // Space raced shutdown; nothing to clean locally.
                    return Err(Error::SpaceStopped);
                };
                match result {
                    Ok(owner_types) => {
                        // nil → OK.
                        slot.types = owner_types;
                        slot.state = ImportState::Live;
                        let core = Arc::new(SurrogateCore {
                            space: space.clone(),
                            wirerep,
                            owner_ep,
                            types: slot.types.clone(),
                            epoch: slot.epoch,
                        });
                        slot.weak = Arc::downgrade(&core);
                        space
                            .inner
                            .stats
                            .surrogates_created
                            .fetch_add(1, Ordering::Relaxed);
                        space.emit(TraceKind::SurrogateCreated {
                            client: space.id(),
                            target: wirerep,
                            epoch: core.epoch,
                        });
                        shard.cv.notify_all();
                        return Ok(Handle(HandleKind::Remote(core)));
                    }
                    Err(e) => {
                        // Dirty failed: no surrogate is created. If the
                        // call is ambiguous the owner may have registered
                        // us, so schedule a *strong* clean that outranks
                        // the possibly-delivered dirty.
                        slot.failed = true;
                        let drop_now = slot.waiters == 0;
                        if drop_now {
                            imports.remove(&wirerep);
                        }
                        shard.cv.notify_all();
                        drop(imports);
                        if e.is_ambiguous() {
                            enqueue(
                                space,
                                GcJob::SendClean {
                                    wirerep,
                                    owner_ep: owner_ep.clone(),
                                    seqno: space.next_gc_seqno(),
                                    strong: true,
                                    attempts: 0,
                                },
                            );
                        }
                        return Err(Error::ImportFailed(format!("dirty call failed: {e}")));
                    }
                }
            }
            Some(slot) => {
                match slot.state {
                    ImportState::Live => {
                        if let Some(core) = slot.weak.upgrade() {
                            return Ok(Handle(HandleKind::Remote(core)));
                        }
                        // The surrogate died but its cleanup has not been
                        // sent yet: resurrect. Bumping the epoch cancels
                        // the queued unreachability notice (the model's
                        // removal of the scheduled clean call).
                        slot.epoch += 1;
                        let core = Arc::new(SurrogateCore {
                            space: space.clone(),
                            wirerep,
                            owner_ep: slot.owner_ep.clone(),
                            types: slot.types.clone(),
                            epoch: slot.epoch,
                        });
                        slot.weak = Arc::downgrade(&core);
                        space
                            .inner
                            .stats
                            .surrogates_resurrected
                            .fetch_add(1, Ordering::Relaxed);
                        space.emit(TraceKind::SurrogateCreated {
                            client: space.id(),
                            target: wirerep,
                            epoch: core.epoch,
                        });
                        return Ok(Handle(HandleKind::Remote(core)));
                    }
                    ImportState::Creating
                    | ImportState::CleanWait
                    | ImportState::CleanWaitResurrect => {
                        if slot.failed {
                            if slot.waiters == 0 {
                                imports.remove(&wirerep);
                                // Retry from scratch.
                                continue;
                            }
                            return Err(Error::ImportFailed(
                                "concurrent registration failed".into(),
                            ));
                        }
                        if slot.state == ImportState::CleanWait {
                            // ccit → ccitnil: a copy arrived while our
                            // clean call is in transit. The dirty call must
                            // wait for the clean acknowledgement.
                            slot.state = ImportState::CleanWaitResurrect;
                            space.emit(TraceKind::SurrogateResurrecting {
                                client: space.id(),
                                target: wirerep,
                                epoch: slot.epoch,
                            });
                        }
                        // Block the deserialisation thread until the slot
                        // becomes usable (the paper suspends the
                        // unmarshaling thread).
                        slot.waiters += 1;
                        let clock = space.inner.options.clock.clone();
                        let t0 = clock.now();
                        let deadline = t0 + space.inner.options.dirty_timeout * 2;
                        let vc_token = clock.as_virtual().map(|vc| vc.register_deadline(deadline));
                        let outcome = loop {
                            // Under a virtual clock the condvar cannot wait
                            // until a virtual instant; poll briefly and let
                            // auto-advance move time to the deadline.
                            let timeout = match clock.as_virtual() {
                                Some(vc) => {
                                    shard.cv.wait_for(&mut imports, Duration::from_millis(1));
                                    vc.maybe_auto_advance();
                                    clock.now() >= deadline
                                }
                                None => shard.cv.wait_until(&mut imports, deadline).timed_out(),
                            };
                            match imports.get_mut(&wirerep) {
                                None => break WaitOutcome::Gone,
                                Some(slot) => {
                                    if slot.failed {
                                        break WaitOutcome::Failed;
                                    }
                                    if slot.state == ImportState::Live {
                                        break WaitOutcome::Usable;
                                    }
                                    if timeout {
                                        break WaitOutcome::TimedOut;
                                    }
                                }
                            }
                        };
                        if let (Some(vc), Some(token)) = (clock.as_virtual(), vc_token) {
                            vc.deregister(token);
                        }
                        space
                            .inner
                            .stats
                            .add_blocked(clock.now().saturating_duration_since(t0));
                        match outcome {
                            WaitOutcome::Gone => {
                                // Slot vanished (cleanup completed, or a
                                // failed registration drained): start over.
                                continue;
                            }
                            WaitOutcome::Usable => {
                                let slot = imports.get_mut(&wirerep).expect("checked");
                                slot.waiters -= 1;
                                if let Some(core) = slot.weak.upgrade() {
                                    return Ok(Handle(HandleKind::Remote(core)));
                                }
                                slot.epoch += 1;
                                let core = Arc::new(SurrogateCore {
                                    space: space.clone(),
                                    wirerep,
                                    owner_ep: slot.owner_ep.clone(),
                                    types: slot.types.clone(),
                                    epoch: slot.epoch,
                                });
                                slot.weak = Arc::downgrade(&core);
                                space
                                    .inner
                                    .stats
                                    .surrogates_created
                                    .fetch_add(1, Ordering::Relaxed);
                                space.emit(TraceKind::SurrogateCreated {
                                    client: space.id(),
                                    target: wirerep,
                                    epoch: core.epoch,
                                });
                                return Ok(Handle(HandleKind::Remote(core)));
                            }
                            WaitOutcome::Failed => {
                                let slot = imports.get_mut(&wirerep).expect("checked");
                                slot.waiters -= 1;
                                if slot.waiters == 0 {
                                    imports.remove(&wirerep);
                                }
                                return Err(Error::ImportFailed(
                                    "concurrent registration failed".into(),
                                ));
                            }
                            WaitOutcome::TimedOut => {
                                let slot = imports.get_mut(&wirerep).expect("checked");
                                slot.waiters -= 1;
                                leave_idle_slot(space, wirerep, slot);
                                return Err(Error::ImportFailed(
                                    "timed out waiting for reference registration".into(),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}

enum WaitOutcome {
    Gone,
    Usable,
    Failed,
    TimedOut,
}

/// Called when the last waiter leaves a slot: if the slot ended up live
/// with no surrogate and no one to claim it, the reference would leak the
/// owner's dirty entry — schedule its cleanup.
fn leave_idle_slot(space: &Space, wirerep: WireRep, slot: &mut ImportSlot) {
    if slot.waiters == 0 && slot.state == ImportState::Live && slot.weak.upgrade().is_none() {
        let epoch = slot.epoch;
        enqueue(space, GcJob::Unreachable { wirerep, epoch });
    }
}

/// §5.1 FIFO variant: the reference becomes usable immediately and the
/// dirty call proceeds in the background over the (order-preserving)
/// connection; acknowledgement of the carrying message waits on it.
fn import_ref_fifo(
    space: &Space,
    wirerep: WireRep,
    owner_ep: Endpoint,
    types: TypeList,
    cx: Option<&mut UnmarshalCx<'_, '_>>,
) -> NetResult<Handle> {
    let mut imports = space.inner.table.imports.shard(&wirerep).map.lock();
    let slot = imports.entry(wirerep).or_insert_with(|| ImportSlot {
        owner_ep: owner_ep.clone(),
        types: types.clone(),
        state: ImportState::Creating,
        epoch: 0,
        weak: Weak::new(),
        waiters: 0,
        failed: false,
    });
    if let Some(core) = slot.weak.upgrade() {
        return Ok(Handle(HandleKind::Remote(core)));
    }
    let needs_dirty = match slot.state {
        // Fresh slot, or a reclaimed one: must (re)register.
        ImportState::Creating => true,
        // Live with a dead weak: the cleanup was not *sent* yet (the queued
        // notice dies against the epoch bump); the owner still lists us.
        ImportState::Live => false,
        // Cleanup in flight: because the channel is FIFO, a new dirty
        // queued now arrives after the clean — re-register, no blocking.
        ImportState::CleanWait | ImportState::CleanWaitResurrect => true,
    };
    slot.epoch += 1;
    slot.state = ImportState::Live;
    slot.failed = false;
    let core = Arc::new(SurrogateCore {
        space: space.clone(),
        wirerep,
        owner_ep: owner_ep.clone(),
        types: slot.types.clone(),
        epoch: slot.epoch,
    });
    slot.weak = Arc::downgrade(&core);
    space
        .inner
        .stats
        .surrogates_created
        .fetch_add(1, Ordering::Relaxed);
    drop(imports);
    space.emit(TraceKind::SurrogateCreated {
        client: space.id(),
        target: wirerep,
        epoch: core.epoch,
    });

    if needs_dirty {
        let (tx, rx) = crossbeam::channel::bounded(1);
        enqueue(
            space,
            GcJob::AsyncDirty {
                wirerep,
                owner_ep,
                seqno: space.next_gc_seqno(),
                notify: tx,
            },
        );
        match cx {
            Some(cx) => cx.push_pending(rx),
            None => {
                // No unmarshal context (bootstrap import): wait here.
                match rx.recv() {
                    Ok(r) => r?,
                    Err(_) => return Err(Error::SpaceStopped),
                }
            }
        }
    }
    Ok(Handle(HandleKind::Remote(core)))
}

// ---------------------------------------------------------------------------
// The cleanup demon
// ---------------------------------------------------------------------------

pub(crate) fn start_demons(space: &Space) {
    let (tx, rx) = unbounded::<GcJob>();
    *space.inner.gc_tx.lock() = Some(tx);
    let weak = Arc::downgrade(&space.inner);
    // Demons keep only a Weak to the space but a strong clock handle: the
    // clock outliving the space is harmless, the reverse would leak it.
    let clock = space.inner.options.clock.clone();
    let demon = std::thread::Builder::new()
        .name("netobj-cleanup".into())
        .spawn(move || cleanup_loop(weak, rx, clock))
        .expect("spawn cleanup demon");
    *space.inner.demon.lock() = Some(demon);

    let needs_pinger =
        space.inner.options.ping_interval.is_some() || space.inner.options.lease.is_some();
    if needs_pinger {
        let weak = Arc::downgrade(&space.inner);
        let clock = space.inner.options.clock.clone();
        let pinger = std::thread::Builder::new()
            .name("netobj-pinger".into())
            .spawn(move || ping_loop(weak, clock))
            .expect("spawn ping demon");
        *space.inner.pinger.lock() = Some(pinger);
    }
}

pub(crate) fn enqueue(space: &Space, job: GcJob) {
    let tx = space.inner.gc_tx.lock().clone();
    if let Some(tx) = tx {
        let _ = tx.send(job);
    }
}

/// One clean call the demon intends to send.
struct CleanIntent {
    wirerep: WireRep,
    owner_ep: Endpoint,
    seqno: u64,
    strong: bool,
    attempts: u32,
}

fn cleanup_loop(
    weak: Weak<SpaceInner>,
    rx: crossbeam::channel::Receiver<GcJob>,
    clock: ClockHandle,
) {
    // Retry queue: (due time, intent).
    let mut retries: VecDeque<(Instant, CleanIntent)> = VecDeque::new();
    loop {
        let step = retries
            .front()
            .map(|(due, _)| due.saturating_duration_since(clock.now()))
            .unwrap_or(Duration::from_millis(100))
            .min(Duration::from_millis(100));
        let first = recv_deadline(clock.as_dyn(), &rx, step);
        let Some(inner) = weak.upgrade() else { return };
        if inner.stopped.load(Ordering::Acquire) {
            return;
        }
        let space = Space::from_inner(inner);

        // Gather a burst of jobs so cleans destined for the same owner
        // can travel together.
        let mut jobs: Vec<GcJob> = Vec::new();
        match first {
            Ok(job) => {
                jobs.push(job);
                while jobs.len() < 64 {
                    match rx.try_recv() {
                        Ok(job) => jobs.push(job),
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }

        let mut intents: Vec<CleanIntent> = Vec::new();
        for job in jobs {
            match job {
                GcJob::Unreachable { wirerep, epoch } => {
                    if let Some(intent) = begin_cleanup(&space, wirerep, epoch) {
                        intents.push(intent);
                    }
                }
                GcJob::SendClean {
                    wirerep,
                    owner_ep,
                    seqno,
                    strong,
                    attempts,
                } => intents.push(CleanIntent {
                    wirerep,
                    owner_ep,
                    seqno,
                    strong,
                    attempts,
                }),
                GcJob::AsyncDirty {
                    wirerep,
                    owner_ep,
                    seqno,
                    notify,
                } => do_async_dirty(&space, wirerep, owner_ep, seqno, notify),
            }
        }

        // Due retries join the same dispatch round (and may batch).
        let now = clock.now();
        let mut n = retries.len();
        while n > 0 {
            n -= 1;
            if retries.front().is_some_and(|(due, _)| *due <= now) {
                let (_, intent) = retries.pop_front().expect("checked");
                intents.push(intent);
            } else if let Some(item) = retries.pop_front() {
                retries.push_back(item);
            }
        }

        dispatch_cleans(&space, &mut retries, intents);
        // The retry queue lives on this thread; publish its depth so the
        // metrics snapshot can gauge it.
        space
            .inner
            .pending_clean_retries
            .store(retries.len() as u64, Ordering::Relaxed);
    }
}

/// The `Unreachable` state transition (finalize + do_clean_call): returns
/// the clean to send, or `None` for stale notices.
fn begin_cleanup(space: &Space, wirerep: WireRep, epoch: u64) -> Option<CleanIntent> {
    let owner_ep = {
        let mut imports = space.inner.table.imports.shard(&wirerep).map.lock();
        match imports.get_mut(&wirerep) {
            Some(slot)
                if slot.epoch == epoch
                    && slot.state == ImportState::Live
                    && slot.weak.upgrade().is_none() =>
            {
                // OK → ccit.
                slot.state = ImportState::CleanWait;
                slot.owner_ep.clone()
            }
            // Stale notice: the reference was resurrected (epoch moved
            // on) or is already being cleaned.
            _ => return None,
        }
    };
    Some(CleanIntent {
        wirerep,
        owner_ep,
        seqno: space.next_gc_seqno(),
        strong: false,
        attempts: 0,
    })
}

fn do_async_dirty(
    space: &Space,
    wirerep: WireRep,
    owner_ep: Endpoint,
    seqno: u64,
    notify: crossbeam::channel::Sender<NetResult<()>>,
) {
    let result = send_dirty(space, wirerep, &owner_ep, seqno);
    match result {
        Ok(_types) => {
            let _ = notify.send(Ok(()));
        }
        Err(e) => {
            // Registration failed: the surrogate is unusable. Mark the
            // slot failed so future imports retry, and send a strong
            // clean if the dirty may have landed.
            {
                let shard = space.inner.table.imports.shard(&wirerep);
                let mut imports = shard.map.lock();
                if let Some(slot) = imports.get_mut(&wirerep) {
                    if slot.weak.upgrade().is_none() {
                        imports.remove(&wirerep);
                    } else {
                        slot.failed = true;
                    }
                }
            }
            if e.is_ambiguous() {
                enqueue(
                    space,
                    GcJob::SendClean {
                        wirerep,
                        owner_ep,
                        seqno: space.next_gc_seqno(),
                        strong: true,
                        attempts: 0,
                    },
                );
            }
            let _ = notify.send(Err(e));
        }
    }
}

/// Sends a round of clean intents, batching per owner when enabled.
fn dispatch_cleans(
    space: &Space,
    retries: &mut VecDeque<(Instant, CleanIntent)>,
    intents: Vec<CleanIntent>,
) {
    if intents.is_empty() {
        return;
    }
    if !space.inner.options.batch_cleans || intents.len() == 1 {
        for intent in intents {
            attempt_clean(space, retries, intent);
        }
        return;
    }
    // Group by (endpoint, owner space): one batch call per owner. The
    // space id participates so that intents addressed to a restarted
    // space at a reused endpoint are never mixed.
    let mut groups: std::collections::BTreeMap<(Endpoint, u128), Vec<CleanIntent>> =
        Default::default();
    for intent in intents {
        groups
            .entry((intent.owner_ep.clone(), intent.wirerep.space.as_raw()))
            .or_default()
            .push(intent);
    }
    for ((owner_ep, _space), group) in groups {
        if group.len() == 1 {
            for intent in group {
                attempt_clean(space, retries, intent);
            }
            continue;
        }
        match send_clean_batch(space, &owner_ep, &group) {
            Ok(()) => {
                for intent in &group {
                    handle_clean_ack(space, intent.wirerep);
                }
            }
            Err(_e) => {
                for intent in group {
                    clean_failed(space, retries, intent);
                }
            }
        }
    }
}

fn attempt_clean(
    space: &Space,
    retries: &mut VecDeque<(Instant, CleanIntent)>,
    intent: CleanIntent,
) {
    match send_clean(
        space,
        intent.wirerep,
        &intent.owner_ep,
        intent.seqno,
        intent.strong,
    ) {
        Ok(()) => handle_clean_ack(space, intent.wirerep),
        Err(_e) => clean_failed(space, retries, intent),
    }
}

fn clean_failed(
    space: &Space,
    retries: &mut VecDeque<(Instant, CleanIntent)>,
    intent: CleanIntent,
) {
    if intent.attempts + 1 < space.inner.options.max_clean_retries {
        // "When a clean call fails, the cleanup demon merely leaves the
        // request on its queue, keeping the same sequence number."
        space
            .inner
            .stats
            .clean_retries
            .fetch_add(1, Ordering::Relaxed);
        retries.push_back((
            space.inner.options.clock.now() + space.inner.options.clean_retry,
            CleanIntent {
                attempts: intent.attempts + 1,
                ..intent
            },
        ));
    } else {
        // Owner presumed dead: abandon the reference entirely, and break
        // every other surrogate into that space so calls fail fast instead
        // of each burning a full timeout.
        space.mark_owner_dead(intent.wirerep.space);
        let shard = space.inner.table.imports.shard(&intent.wirerep);
        let mut imports = shard.map.lock();
        if let Some(slot) = imports.get_mut(&intent.wirerep) {
            slot.failed = true;
            let no_waiters = slot.waiters == 0;
            if no_waiters {
                imports.remove(&intent.wirerep);
            }
        }
        drop(imports);
        shard.cv.notify_all();
    }
}

/// Sends several cleans to one owner in a single RPC.
fn send_clean_batch(space: &Space, owner_ep: &Endpoint, intents: &[CleanIntent]) -> NetResult<()> {
    let owner_space = intents[0].wirerep.space;
    debug_assert!(intents.iter().all(|i| i.wirerep.space == owner_space));
    for intent in intents {
        if intent.strong {
            space
                .inner
                .stats
                .strong_clean_sent
                .fetch_add(1, Ordering::Relaxed);
        } else {
            space.inner.stats.clean_sent.fetch_add(1, Ordering::Relaxed);
        }
    }
    space
        .inner
        .stats
        .clean_batches
        .fetch_add(1, Ordering::Relaxed);
    for intent in intents {
        space.emit(TraceKind::CleanSent {
            client: space.id(),
            owner: intent.wirerep.space,
            target: intent.wirerep,
            seqno: intent.seqno,
            strong: intent.strong,
            batched: true,
        });
    }
    let entries: Vec<(u64, u64, bool)> = intents
        .iter()
        .map(|i| (i.wirerep.ix.0, i.seqno, i.strong))
        .collect();
    let bytes = gc_call(
        space,
        owner_space,
        owner_ep,
        methods::CLEAN_BATCH,
        entries.to_pickle_bytes(),
        space.inner.options.clean_timeout,
        false,
        gc_hist::CLEAN,
    )?;
    for intent in intents {
        space.emit(TraceKind::CleanAcked {
            client: space.id(),
            owner: intent.wirerep.space,
            target: intent.wirerep,
            seqno: intent.seqno,
        });
    }
    Ok(<()>::from_pickle_bytes(&bytes)?)
}

/// Applies the client-side effect of a clean acknowledgement.
fn handle_clean_ack(space: &Space, wirerep: WireRep) {
    enum Next {
        Nothing,
        Redirty { owner_ep: Endpoint },
    }
    let shard = space.inner.table.imports.shard(&wirerep);
    let next = {
        let mut imports = shard.map.lock();
        match imports.get_mut(&wirerep) {
            // ccit → ⊥: the reference's life ends here.
            Some(slot) if slot.state == ImportState::CleanWait => {
                imports.remove(&wirerep);
                shard.cv.notify_all();
                Next::Nothing
            }
            // ccitnil → nil: a copy arrived while the clean was in
            // transit; a fresh registration starts now.
            Some(slot) if slot.state == ImportState::CleanWaitResurrect => {
                slot.state = ImportState::Creating;
                Next::Redirty {
                    owner_ep: slot.owner_ep.clone(),
                }
            }
            // Resurrected (FIFO variant) or already gone: nothing to do.
            _ => Next::Nothing,
        }
    };
    if let Next::Redirty { owner_ep } = next {
        let seqno = space.next_gc_seqno();
        let result = send_dirty(space, wirerep, &owner_ep, seqno);
        let mut imports = shard.map.lock();
        let Some(slot) = imports.get_mut(&wirerep) else {
            return;
        };
        match result {
            Ok(types) => {
                // nil → OK; a blocked unmarshal thread will install the
                // new surrogate core when it wakes.
                slot.types = types;
                slot.state = ImportState::Live;
                slot.weak = Weak::new();
                if slot.waiters == 0 {
                    // Nobody to claim it: schedule its cleanup or the
                    // owner's dirty entry would leak.
                    let epoch = slot.epoch;
                    drop(imports);
                    enqueue(space, GcJob::Unreachable { wirerep, epoch });
                    shard.cv.notify_all();
                    return;
                }
            }
            Err(e) => {
                slot.failed = true;
                if slot.waiters == 0 {
                    imports.remove(&wirerep);
                }
                if e.is_ambiguous() {
                    drop(imports);
                    enqueue(
                        space,
                        GcJob::SendClean {
                            wirerep,
                            owner_ep,
                            seqno: space.next_gc_seqno(),
                            strong: true,
                            attempts: 0,
                        },
                    );
                    shard.cv.notify_all();
                    return;
                }
            }
        }
        shard.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Termination detection: pings and leases
// ---------------------------------------------------------------------------

fn ping_loop(weak: Weak<SpaceInner>, clock: ClockHandle) {
    let mut fail_counts: std::collections::HashMap<SpaceId, u32> = std::collections::HashMap::new();
    // Client role: consecutive failed lease-renewal *rounds* per owner. An
    // owner that misses `ping_failures` rounds in a row is declared dead.
    let mut renew_fail_rounds: std::collections::HashMap<SpaceId, u32> =
        std::collections::HashMap::new();
    let mut last_ping = clock.now();
    let mut last_renew = clock.now();
    loop {
        clock.sleep(Duration::from_millis(25));
        let Some(inner) = weak.upgrade() else { return };
        if inner.stopped.load(Ordering::Acquire) {
            return;
        }
        let space = Space::from_inner(inner);
        let options = space.inner.options.clone();

        // Owner role: ping clients holding dirty entries.
        if let Some(interval) = options.ping_interval {
            if clock.now().saturating_duration_since(last_ping) >= interval {
                last_ping = clock.now();
                let clients = space.inner.table.exports.dirty_clients();
                for (client, ep) in clients {
                    let Some(ep) = ep else { continue };
                    let ok = ping_client(&space, client, &ep);
                    if ok {
                        fail_counts.remove(&client);
                    } else {
                        let n = fail_counts.entry(client).or_insert(0);
                        *n += 1;
                        if *n >= options.ping_failures {
                            // "The client is assumed to have died, and is
                            // removed from all dirty sets at that owner."
                            let collected = space.inner.table.exports.purge_client(client);
                            space.emit(TraceKind::ClientPurged {
                                owner: space.id(),
                                client,
                            });
                            space
                                .inner
                                .stats
                                .clients_purged
                                .fetch_add(1, Ordering::Relaxed);
                            space
                                .inner
                                .stats
                                .exports_collected
                                .fetch_add(collected, Ordering::Relaxed);
                            fail_counts.remove(&client);
                        }
                    }
                }
            }
        }

        // Lease mode.
        if let Some(lease) = options.lease {
            // Owner role: expire unrenewed entries. (checked_sub: a virtual
            // clock starts with headroom, but a very young system clock may
            // not reach back a full lease.)
            if let Some(cutoff) = clock.now().checked_sub(lease) {
                let (expired, collected) = space.inner.table.exports.expire_leases(cutoff);
                if expired > 0 {
                    space.emit(TraceKind::LeaseExpired {
                        owner: space.id(),
                        expired,
                    });
                    space
                        .inner
                        .stats
                        .leases_expired
                        .fetch_add(expired, Ordering::Relaxed);
                    space
                        .inner
                        .stats
                        .exports_collected
                        .fetch_add(collected, Ordering::Relaxed);
                }
            }
            // Client role: renew live surrogates.
            if clock.now().saturating_duration_since(last_renew) >= lease / 3 {
                last_renew = clock.now();
                let mut live: Vec<(WireRep, Endpoint)> = Vec::new();
                for import_shard in space.inner.table.imports.shards() {
                    let imports = import_shard.map.lock();
                    live.extend(
                        imports
                            .iter()
                            .filter(|(_, s)| {
                                s.state == ImportState::Live && s.weak.upgrade().is_some()
                            })
                            .map(|(w, s)| (*w, s.owner_ep.clone())),
                    );
                }
                let mut round_failed: std::collections::HashSet<SpaceId> = Default::default();
                let mut round_ok: std::collections::HashSet<SpaceId> = Default::default();
                for (wirerep, ep) in live {
                    let seqno = space.next_gc_seqno();
                    // Any failure counts, not just transport ones: a
                    // definite rejection of a renewal means this owner
                    // *instance* no longer lists us.
                    match send_dirty(&space, wirerep, &ep, seqno) {
                        Ok(_) => round_ok.insert(wirerep.space),
                        Err(_) => round_failed.insert(wirerep.space),
                    };
                }
                for owner in round_ok {
                    round_failed.remove(&owner);
                    renew_fail_rounds.remove(&owner);
                }
                for owner in round_failed {
                    let n = renew_fail_rounds.entry(owner).or_insert(0);
                    *n += 1;
                    if *n >= options.ping_failures {
                        // The owner is unreachable past the detection
                        // threshold: break its surrogates so calls fail
                        // fast with `OwnerDead` (the lease will lapse at
                        // the owner too; the reference is lost either way).
                        space.mark_owner_dead(owner);
                        renew_fail_rounds.remove(&owner);
                    }
                }
            }
        }
    }
}

fn ping_client(space: &Space, client: SpaceId, ep: &Endpoint) -> bool {
    space.inner.stats.pings_sent.fetch_add(1, Ordering::Relaxed);
    space.emit(TraceKind::PingSent {
        owner: space.id(),
        client,
    });
    gc_call(
        space,
        client,
        ep,
        methods::PING,
        ().to_pickle_bytes(),
        space.inner.options.clean_timeout,
        true,
        gc_hist::PING,
    )
    .is_ok()
}
