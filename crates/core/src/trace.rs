//! The per-space trace ring: the collector's flight recorder.
//!
//! Every [`Space`](crate::Space) owns one bounded ring of
//! [`TraceEvent`]s. Emission is designed to be safe from any thread with
//! no shared lock: a writer reserves a slot with one atomic `fetch_add`
//! and then fills it under that slot's own (uncontended) mutex, so
//! concurrent emitters never serialise against each other unless the ring
//! wraps a full lap onto the same slot. When the ring overflows, the
//! oldest events are overwritten — the sequence numbers stay dense, so a
//! reader can tell exactly how much history was lost.
//!
//! The ring is the seam between the live collector and the conformance
//! oracle: tests drain it with [`TraceRing::snapshot`], merge the rings of
//! every space in the scenario, and replay the merged trace into the
//! formal model (`netobj_dgc_model::replay`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use netobj_transport::ClockHandle;
use netobj_wire::{TraceEvent, TraceKind};
use parking_lot::Mutex;

/// Default ring capacity (events) per space.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 15;

/// A bounded, overwrite-oldest ring of trace events.
pub struct TraceRing {
    clock: ClockHandle,
    epoch: Instant,
    head: AtomicU64,
    mask: u64,
    slots: Box<[Mutex<Option<TraceEvent>>]>,
}

impl TraceRing {
    /// Creates a ring of (at least) `capacity` slots, stamping event
    /// times from `clock`. Capacity is rounded up to a power of two.
    pub fn new(clock: ClockHandle, capacity: usize) -> Arc<TraceRing> {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Mutex<Option<TraceEvent>>> = (0..cap).map(|_| Mutex::new(None)).collect();
        Arc::new(TraceRing {
            epoch: clock.now(),
            clock,
            head: AtomicU64::new(0),
            mask: cap as u64 - 1,
            slots: slots.into_boxed_slice(),
        })
    }

    /// Records one event, stamping its sequence number and time.
    pub fn record(&self, kind: TraceKind) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let at_micros = self
            .clock
            .now()
            .saturating_duration_since(self.epoch)
            .as_micros() as u64;
        let ev = TraceEvent {
            seq,
            at_micros,
            kind,
        };
        *self.slots[(seq & self.mask) as usize].lock() = Some(ev);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// A consistent snapshot of the surviving events, in emission order.
    ///
    /// Slots that a concurrent writer is lapping are skipped (the stored
    /// sequence number no longer matches the slot's expected position).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = self.slots[(seq & self.mask) as usize].lock();
            if let Some(ev) = slot.as_ref() {
                if ev.seq == seq {
                    out.push(ev.clone());
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("recorded", &self.recorded())
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netobj_wire::SpaceId;

    fn ping(n: u128) -> TraceKind {
        TraceKind::PingSent {
            owner: SpaceId::from_raw(n),
            client: SpaceId::from_raw(n + 1),
        }
    }

    #[test]
    fn records_in_order() {
        let ring = TraceRing::new(ClockHandle::system(), 8);
        for i in 0..5 {
            ring.record(ping(i));
        }
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 5);
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overwrites_oldest_on_wrap() {
        let ring = TraceRing::new(ClockHandle::system(), 4);
        for i in 0..10 {
            ring.record(ping(i));
        }
        let evs = ring.snapshot();
        assert_eq!(evs.first().unwrap().seq, 6);
        assert_eq!(evs.last().unwrap().seq, 9);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn concurrent_writers_keep_dense_seqs() {
        let ring = TraceRing::new(ClockHandle::system(), 1 << 12);
        let mut joins = Vec::new();
        for t in 0..4u128 {
            let ring = Arc::clone(&ring);
            joins.push(std::thread::spawn(move || {
                for i in 0..500 {
                    ring.record(ping(t * 1000 + i));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 2000);
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
        }
    }
}
