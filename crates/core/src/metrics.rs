//! Latency histograms, gauges and the metrics snapshot.
//!
//! The counters in [`crate::stats`] say *how often* things happened; this
//! module adds *how long they took* and *how much is live right now*:
//!
//! - [`Histogram`]: a fixed set of log₂ microsecond buckets updated with
//!   one atomic add per observation. Bucket `i` covers `[2^i, 2^(i+1))` µs
//!   (bucket 0 covers `[0, 2)`), so forty buckets span sub-microsecond
//!   calls to multi-day outliers without configuration.
//! - [`Gauges`]: point-in-time sizes — exports, surrogates, dirty-set
//!   entries, queue depth — read from the live structures at snapshot time.
//! - [`Metrics`]: the full observability snapshot of one space (or, after
//!   [`Metrics::merge`], of several), renderable as Prometheus text.
//!
//! Everything here is deterministic given deterministic clocks: under a
//! virtual clock the same scenario yields byte-identical metrics text,
//! which is what lets the conformance tests assert on it.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use netobj_wire::SpaceId;

use crate::stats::StatsSnapshot;

/// Number of log₂ buckets per histogram. Bucket `BUCKETS-1` also absorbs
/// anything larger than its nominal range.
pub const BUCKETS: usize = 40;

/// Index of the bucket that `micros` falls into.
fn bucket_of(micros: u64) -> usize {
    if micros < 2 {
        0
    } else {
        (63 - micros.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Upper bound (exclusive) of bucket `i`, in microseconds.
///
/// The last bucket's nominal bound; values above it are clamped in, so
/// quantiles read from it are lower bounds for extreme outliers.
pub fn bucket_upper(i: usize) -> u64 {
    1u64 << (i + 1)
}

/// A lock-free log₂-bucket latency histogram.
///
/// Recording is one relaxed atomic add per observation plus one for the
/// running sum; snapshots are not atomic across buckets (a concurrent
/// recording may or may not appear), which is fine for monitoring.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `micros` microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.counts[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records one observation of a duration.
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable across spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`counts[i]` covers `[2^i, 2^(i+1))`
    /// µs; bucket 0 covers `[0, 2)`).
    pub counts: [u64; BUCKETS],
    /// Sum of all recorded values, in microseconds.
    pub sum_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            sum_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.sum_micros += other.sum_micros;
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) as the upper bound of the bucket it
    /// falls in, in microseconds — an over-estimate by at most 2×, which is
    /// the resolution of log₂ buckets. Returns 0 for an empty histogram.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }
}

/// Point-in-time sizes of a space's live structures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauges {
    /// Concrete objects currently exported (object-table entries).
    pub exports: u64,
    /// Surrogates currently held for remote objects.
    pub surrogates: u64,
    /// Dirty-set entries across all exported objects (client registrations
    /// the collector is tracking).
    pub dirty_entries: u64,
    /// Clean calls that failed and are queued for retry by the cleanup
    /// demon.
    pub pending_clean_retries: u64,
    /// Requests waiting in the server's worker queue (0 when not
    /// listening). Exact: counted at admission and pick, not sampled.
    pub server_queue_depth: u64,
    /// Highest `server_queue_depth` ever observed — how close the server
    /// has come to its global queue limit since it started.
    pub server_queue_high_water: u64,
    /// Cached outgoing RPC connections.
    pub pool_connections: u64,
    /// Per-endpoint circuit breakers currently open.
    pub open_breakers: u64,
    /// Connections registered with the server's reactor core (0 when the
    /// server runs thread-per-connection, e.g. loopback or virtual clock).
    pub reactor_connections: u64,
    /// Readiness events delivered by the reactor's most recent poll batch
    /// — the instantaneous depth of the readiness queue.
    pub reactor_readiness_depth: u64,
    /// Largest readiness batch the reactor has ever drained in one wakeup.
    pub reactor_readiness_high_water: u64,
    /// Reply frames written by the reactor's coalesced flushes.
    pub reactor_frames_flushed: u64,
    /// Vectored-write syscalls those flushes issued;
    /// `reactor_frames_flushed / reactor_flush_syscalls` is the
    /// writes-coalesced-per-flush ratio.
    pub reactor_flush_syscalls: u64,
}

impl Gauges {
    /// Sums another space's gauges into this one.
    pub fn merge(&mut self, other: &Gauges) {
        self.exports += other.exports;
        self.surrogates += other.surrogates;
        self.dirty_entries += other.dirty_entries;
        self.pending_clean_retries += other.pending_clean_retries;
        self.server_queue_depth += other.server_queue_depth;
        self.server_queue_high_water = self
            .server_queue_high_water
            .max(other.server_queue_high_water);
        self.pool_connections += other.pool_connections;
        self.open_breakers += other.open_breakers;
        self.reactor_connections += other.reactor_connections;
        self.reactor_readiness_depth += other.reactor_readiness_depth;
        self.reactor_readiness_high_water = self
            .reactor_readiness_high_water
            .max(other.reactor_readiness_high_water);
        self.reactor_frames_flushed += other.reactor_frames_flushed;
        self.reactor_flush_syscalls += other.reactor_flush_syscalls;
    }

    /// Every gauge, as `(name, value)` pairs in declaration order.
    pub fn named(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("exports", self.exports),
            ("surrogates", self.surrogates),
            ("dirty_entries", self.dirty_entries),
            ("pending_clean_retries", self.pending_clean_retries),
            ("server_queue_depth", self.server_queue_depth),
            ("server_queue_high_water", self.server_queue_high_water),
            ("pool_connections", self.pool_connections),
            ("open_breakers", self.open_breakers),
            ("reactor_connections", self.reactor_connections),
            ("reactor_readiness_depth", self.reactor_readiness_depth),
            (
                "reactor_readiness_high_water",
                self.reactor_readiness_high_water,
            ),
            ("reactor_frames_flushed", self.reactor_frames_flushed),
            ("reactor_flush_syscalls", self.reactor_flush_syscalls),
        ]
    }
}

/// The four collector RPC kinds that get their own latency histograms.
pub const GC_KINDS: [&str; 4] = ["dirty", "clean", "strong_clean", "ping"];

/// Per-client resource gauges: what one remote space currently costs this
/// one, plus how often it has been refused. Populated only when the space
/// runs with a finite [`netobj_rpc::ResourceBudget`] — client identities
/// are random per process, so emitting them unconditionally would make
/// the exposition nondeterministic for cooperative deployments that never
/// asked for quotas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientQuotaGauges {
    /// Open server connections bound to the client.
    pub connections: u64,
    /// Requests admitted on the client's behalf (queued + executing).
    pub inflight: u64,
    /// Requests waiting in the client's fair-admission queue.
    pub queued: u64,
    /// Objects the client holds dirty registrations on (export slots).
    pub export_slots: u64,
    /// Dirty-set plus seqno-floor entries charged to the client.
    pub dirty_entries: u64,
    /// Calls and dirties refused over quota since startup.
    pub shed: u64,
}

impl ClientQuotaGauges {
    /// Sums another snapshot of the same client into this one.
    pub fn merge(&mut self, other: &ClientQuotaGauges) {
        self.connections += other.connections;
        self.inflight += other.inflight;
        self.queued += other.queued;
        self.export_slots += other.export_slots;
        self.dirty_entries += other.dirty_entries;
        self.shed += other.shed;
    }
}

/// The full observability snapshot of one space — or of several, after
/// merging. Rendered as Prometheus text by [`Metrics::to_prometheus_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    /// The space this snapshot was taken from (`SpaceId::NIL`-like zero
    /// raw value after a merge of several spaces).
    pub space: SpaceId,
    /// Counter snapshot.
    pub stats: StatsSnapshot,
    /// Application call latency by method label, client-side observed
    /// duration. Keys are `"interface/method"` labels when the typed stub
    /// knows them, `"m<index>"` for raw invocations.
    pub app_calls: BTreeMap<String, HistogramSnapshot>,
    /// Collector RPC latency: dirty, clean, strong-clean, ping — in the
    /// order of [`GC_KINDS`].
    pub gc_calls: [HistogramSnapshot; 4],
    /// Live-structure sizes at snapshot time.
    pub gauges: Gauges,
    /// Per-client quota gauges, keyed by the client's `SpaceId` rendered
    /// as its 32-hex-digit form (the `client` label value). Empty unless
    /// the space enforces a finite budget.
    pub per_client: BTreeMap<String, ClientQuotaGauges>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            space: SpaceId::from_raw(0),
            stats: StatsSnapshot::default(),
            app_calls: BTreeMap::new(),
            gc_calls: [HistogramSnapshot::default(); 4],
            gauges: Gauges::default(),
            per_client: BTreeMap::new(),
        }
    }
}

impl Metrics {
    /// Folds another space's snapshot into this one: counters, histograms
    /// and gauges all add; the space id of the merged snapshot is kept.
    pub fn merge(&mut self, other: &Metrics) {
        self.stats = merge_stats(&self.stats, &other.stats);
        for (label, h) in &other.app_calls {
            self.app_calls.entry(label.clone()).or_default().merge(h);
        }
        for (a, b) in self.gc_calls.iter_mut().zip(other.gc_calls.iter()) {
            a.merge(b);
        }
        self.gauges.merge(&other.gauges);
        for (client, g) in &other.per_client {
            self.per_client.entry(client.clone()).or_default().merge(g);
        }
    }

    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Deterministic: counters and gauges appear in declaration order,
    /// method histograms in label order (the map is ordered), and only
    /// buckets up to the highest non-empty one are emitted. Durations are
    /// in microseconds (integer `le` bounds) rather than seconds, keeping
    /// the text exact under virtual clocks.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.stats.named() {
            let _ = writeln!(out, "# TYPE netobj_{name} counter");
            let _ = writeln!(out, "netobj_{name} {v}");
        }
        for (name, v) in self.gauges.named() {
            let _ = writeln!(out, "# TYPE netobj_{name} gauge");
            let _ = writeln!(out, "netobj_{name} {v}");
        }
        render_client_gauges(&mut out, &self.per_client);
        let _ = writeln!(out, "# TYPE netobj_call_latency_micros histogram");
        for (label, h) in &self.app_calls {
            render_histogram(&mut out, "netobj_call_latency_micros", "method", label, h);
        }
        let _ = writeln!(out, "# TYPE netobj_gc_latency_micros histogram");
        for (kind, h) in GC_KINDS.iter().zip(self.gc_calls.iter()) {
            render_histogram(&mut out, "netobj_gc_latency_micros", "kind", kind, h);
        }
        out
    }
}

fn merge_stats(a: &StatsSnapshot, b: &StatsSnapshot) -> StatsSnapshot {
    // Field-by-field addition via the complete named() enumeration would
    // need a by-name constructor; adding the two snapshots directly keeps
    // the type system in charge instead.
    macro_rules! add {
        ($($f:ident),* $(,)?) => {
            StatsSnapshot { $( $f: a.$f + b.$f, )* }
        };
    }
    add!(
        calls_sent,
        calls_served,
        calls_rejected,
        dirty_sent,
        dirty_received,
        dirty_stale,
        clean_sent,
        clean_received,
        strong_clean_sent,
        clean_retries,
        clean_batches,
        pings_sent,
        pings_received,
        clients_purged,
        refs_sent,
        refs_received,
        surrogates_created,
        surrogates_resurrected,
        exports_collected,
        leases_expired,
        reconnects,
        retries_attempted,
        breaker_opened,
        calls_failed_fast,
        calls_shed_global,
        calls_shed_quota,
        dirty_refused_quota,
        blocked_ns,
    )
}

/// Renders the per-client quota gauge families, one line per client in
/// key order. Emits nothing for an empty map, so spaces without quotas
/// keep their exposition unchanged.
fn render_client_gauges(out: &mut String, per_client: &BTreeMap<String, ClientQuotaGauges>) {
    if per_client.is_empty() {
        return;
    }
    type Field = fn(&ClientQuotaGauges) -> u64;
    let families: [(&str, Field); 6] = [
        ("netobj_client_connections", |g| g.connections),
        ("netobj_client_inflight", |g| g.inflight),
        ("netobj_client_queued", |g| g.queued),
        ("netobj_client_export_slots", |g| g.export_slots),
        ("netobj_client_dirty_entries", |g| g.dirty_entries),
        ("netobj_client_shed_total", |g| g.shed),
    ];
    for (name, value) in families {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (client, g) in per_client {
            let _ = writeln!(out, "{name}{{client=\"{client}\"}} {}", value(g));
        }
    }
}

fn render_histogram(
    out: &mut String,
    family: &str,
    label_key: &str,
    label: &str,
    h: &HistogramSnapshot,
) {
    let last = h
        .counts
        .iter()
        .rposition(|&c| c != 0)
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut cum = 0;
    for i in 0..last {
        cum += h.counts[i];
        let le = bucket_upper(i);
        let _ = writeln!(
            out,
            "{family}_bucket{{{label_key}=\"{label}\",le=\"{le}\"}} {cum}"
        );
    }
    let _ = writeln!(
        out,
        "{family}_bucket{{{label_key}=\"{label}\",le=\"+Inf\"}} {}",
        h.total()
    );
    let _ = writeln!(
        out,
        "{family}_sum{{{label_key}=\"{label}\"}} {}",
        h.sum_micros
    );
    let _ = writeln!(
        out,
        "{family}_count{{{label_key}=\"{label}\"}} {}",
        h.total()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_and_total() {
        let h = Histogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(5));
        let s = h.snapshot();
        assert_eq!(s.total(), 3);
        assert_eq!(s.sum_micros, 3 + 100 + 5000);
    }

    #[test]
    fn merge_adds() {
        let h1 = Histogram::default();
        let h2 = Histogram::default();
        h1.record_micros(10);
        h2.record_micros(10);
        h2.record_micros(10_000);
        let mut a = h1.snapshot();
        a.merge(&h2.snapshot());
        assert_eq!(a.total(), 3);
        assert_eq!(a.sum_micros, 10_020);
    }

    #[test]
    fn quantiles_bracket_observations() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record_micros(100);
        }
        h.record_micros(10_000);
        let s = h.snapshot();
        // p50 falls in the bucket holding 100µs: [64, 128).
        assert_eq!(s.quantile_micros(0.5), 128);
        // p100 falls in the bucket holding 10ms: [8192, 16384).
        assert_eq!(s.quantile_micros(1.0), 16_384);
        assert_eq!(HistogramSnapshot::default().quantile_micros(0.5), 0);
    }

    #[test]
    fn prometheus_text_is_complete_and_deterministic() {
        let mut m = Metrics::default();
        m.stats.calls_sent = 4;
        let h = Histogram::default();
        h.record_micros(50);
        m.app_calls.insert("t.Svc/ping".into(), h.snapshot());
        m.gc_calls[0] = h.snapshot();
        let text = m.to_prometheus_text();
        // Every counter appears.
        for (name, _) in m.stats.named() {
            assert!(
                text.contains(&format!("netobj_{name} ")),
                "missing counter {name}"
            );
        }
        // Every gauge appears.
        for (name, _) in m.gauges.named() {
            assert!(
                text.contains(&format!("netobj_{name} ")),
                "missing gauge {name}"
            );
        }
        assert!(
            text.contains("netobj_call_latency_micros_bucket{method=\"t.Svc/ping\",le=\"64\"} 1")
        );
        assert!(text.contains("netobj_call_latency_micros_count{method=\"t.Svc/ping\"} 1"));
        assert!(text.contains("netobj_gc_latency_micros_bucket{kind=\"dirty\",le=\"+Inf\"} 1"));
        // Deterministic: same snapshot, same text.
        assert_eq!(text, m.to_prometheus_text());
    }

    #[test]
    fn per_client_gauges_render_only_when_present() {
        let mut m = Metrics::default();
        let text = m.to_prometheus_text();
        assert!(!text.contains("netobj_client_"));
        m.per_client.insert(
            format!("{:032x}", 0xabcu128),
            ClientQuotaGauges {
                connections: 1,
                inflight: 2,
                queued: 1,
                export_slots: 3,
                dirty_entries: 5,
                shed: 7,
            },
        );
        let text = m.to_prometheus_text();
        let label = format!("{:032x}", 0xabcu128);
        assert!(text.contains("# TYPE netobj_client_connections gauge"));
        assert!(text.contains(&format!("netobj_client_inflight{{client=\"{label}\"}} 2")));
        assert!(text.contains(&format!("netobj_client_shed_total{{client=\"{label}\"}} 7")));
        // Merging sums per client.
        let mut other = Metrics::default();
        other.per_client.insert(
            label.clone(),
            ClientQuotaGauges {
                shed: 1,
                ..Default::default()
            },
        );
        m.merge(&other);
        assert_eq!(m.per_client[&label].shed, 8);
    }

    #[test]
    fn metrics_merge_sums_everything() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        a.stats.calls_sent = 1;
        b.stats.calls_sent = 2;
        a.gauges.exports = 3;
        b.gauges.exports = 4;
        let h = Histogram::default();
        h.record_micros(10);
        a.app_calls.insert("x".into(), h.snapshot());
        b.app_calls.insert("x".into(), h.snapshot());
        b.app_calls.insert("y".into(), h.snapshot());
        a.merge(&b);
        assert_eq!(a.stats.calls_sent, 3);
        assert_eq!(a.gauges.exports, 7);
        assert_eq!(a.app_calls["x"].total(), 2);
        assert_eq!(a.app_calls["y"].total(), 1);
    }
}
