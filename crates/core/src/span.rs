//! The per-space span ring and causal trace propagation.
//!
//! Companion to [`crate::trace`]: where the trace ring records *collector*
//! actions for the conformance oracle, the span ring records *application
//! calls* for observability. The ring mechanics are identical — slot
//! reservation with one atomic `fetch_add`, per-slot mutexes, dense
//! sequence numbers, overwrite-oldest — only the record type differs.
//!
//! This module also owns the two pieces of trace plumbing that are not
//! tied to a ring:
//!
//! - **Id allocation** ([`IdAlloc`]): trace and span ids are drawn from a
//!   per-space counter salted with the space id, so ids allocated by
//!   different spaces never collide and runs under a deterministic
//!   scenario yield deterministic ids.
//! - **The ambient scope** ([`current_scope`] / [`enter_scope`]): while a
//!   server worker dispatches a request, the request's trace and span ids
//!   are installed in a thread-local; any remote call the dispatched
//!   method makes on that thread picks them up, which is how a fan-out
//!   call chain ends up sharing one trace id with no API change for the
//!   application.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use netobj_transport::ClockHandle;
use netobj_wire::{SpaceId, SpanRecord};
use parking_lot::Mutex;

/// Default span-ring capacity (records) per space.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 12;

/// A bounded, overwrite-oldest ring of call spans.
pub struct SpanRing {
    clock: ClockHandle,
    epoch: Instant,
    head: AtomicU64,
    mask: u64,
    slots: Box<[Mutex<Option<SpanRecord>>]>,
}

impl SpanRing {
    /// Creates a ring of (at least) `capacity` slots, stamping span times
    /// from `clock`. Capacity is rounded up to a power of two.
    pub fn new(clock: ClockHandle, capacity: usize) -> Arc<SpanRing> {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Mutex<Option<SpanRecord>>> = (0..cap).map(|_| Mutex::new(None)).collect();
        Arc::new(SpanRing {
            epoch: clock.now(),
            clock,
            head: AtomicU64::new(0),
            mask: cap as u64 - 1,
            slots: slots.into_boxed_slice(),
        })
    }

    /// Microseconds since this ring's epoch, on the ring's clock — the
    /// time base for [`SpanRecord::start_micros`].
    pub fn now_micros(&self) -> u64 {
        self.micros_at(self.clock.now())
    }

    /// Converts an already-read clock instant to this ring's time base —
    /// lets hot paths that timed the call anyway avoid a second clock read.
    pub fn micros_at(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Records one span, stamping its sequence number.
    pub fn record(&self, mut span: SpanRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        span.seq = seq;
        *self.slots[(seq & self.mask) as usize].lock() = Some(span);
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans lost to ring overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// A consistent snapshot of the surviving spans, in emission order.
    /// Slots a concurrent writer is lapping are skipped.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = self.slots[(seq & self.mask) as usize].lock();
            if let Some(sp) = slot.as_ref() {
                if sp.seq == seq {
                    out.push(sp.clone());
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("recorded", &self.recorded())
            .field("capacity", &self.slots.len())
            .finish()
    }
}

/// Allocates trace and span ids for one space.
///
/// Ids are `(low 32 bits of the space id) << 32 | per-space counter`, so
/// two spaces in a scenario hand out disjoint ids and a deterministic run
/// allocates deterministic ids. Zero (the wire encoding of "absent") is
/// never returned.
#[derive(Debug)]
pub(crate) struct IdAlloc {
    base: u64,
    next: AtomicU64,
}

impl IdAlloc {
    pub(crate) fn new(space: SpaceId) -> IdAlloc {
        IdAlloc {
            base: (space.as_raw() as u32 as u64) << 32,
            next: AtomicU64::new(1),
        }
    }

    pub(crate) fn next_id(&self) -> u64 {
        let n = self.next.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF;
        let id = self.base | n;
        if id == 0 {
            1
        } else {
            id
        }
    }
}

/// The causal identifiers ambient on the current thread: the trace being
/// continued and the span that encloses whatever runs next.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct TraceScope {
    pub(crate) trace_id: u64,
    pub(crate) span_id: u64,
}

thread_local! {
    static CURRENT_SCOPE: Cell<TraceScope> = const { Cell::new(TraceScope { trace_id: 0, span_id: 0 }) };
}

/// The scope installed on this thread (zeroes when none).
pub(crate) fn current_scope() -> TraceScope {
    CURRENT_SCOPE.with(|c| c.get())
}

/// Installs `scope` on this thread until the returned guard drops, then
/// restores whatever was there before. Used by the server dispatcher
/// around each dispatch so nested outgoing calls continue the trace.
pub(crate) fn enter_scope(scope: TraceScope) -> ScopeGuard {
    let prev = CURRENT_SCOPE.with(|c| c.replace(scope));
    ScopeGuard { prev }
}

pub(crate) struct ScopeGuard {
    prev: TraceScope,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_SCOPE.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netobj_wire::{ObjIx, SpanKind, SpanOutcome, WireRep};

    fn span(trace: u64, id: u64) -> SpanRecord {
        SpanRecord {
            seq: 0,
            trace_id: trace,
            span_id: id,
            parent_span: 0,
            kind: SpanKind::Client,
            space: SpaceId::from_raw(1),
            peer: SpaceId::from_raw(2),
            target: WireRep::new(SpaceId::from_raw(2), ObjIx(3)),
            method: 0,
            label: String::new(),
            start_micros: 0,
            duration_micros: 1,
            queue_wait_micros: 0,
            service_micros: 0,
            marshal_bytes: 0,
            unmarshal_bytes: 0,
            retries: 0,
            breaker_open: false,
            outcome: SpanOutcome::Ok,
        }
    }

    #[test]
    fn ring_records_and_wraps() {
        let ring = SpanRing::new(ClockHandle::system(), 4);
        for i in 0..10 {
            ring.record(span(7, i));
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans.first().unwrap().seq, 6);
        assert_eq!(spans.last().unwrap().seq, 9);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let alloc = IdAlloc::new(SpaceId::from_raw(0));
        let a = alloc.next_id();
        let b = alloc.next_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ids_from_different_spaces_differ() {
        let a = IdAlloc::new(SpaceId::from_raw(1)).next_id();
        let b = IdAlloc::new(SpaceId::from_raw(2)).next_id();
        assert_ne!(a, b);
    }

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_scope(), TraceScope::default());
        {
            let _g = enter_scope(TraceScope {
                trace_id: 5,
                span_id: 6,
            });
            assert_eq!(current_scope().trace_id, 5);
            {
                let _g2 = enter_scope(TraceScope {
                    trace_id: 7,
                    span_id: 8,
                });
                assert_eq!(current_scope().trace_id, 7);
            }
            assert_eq!(current_scope().span_id, 6);
        }
        assert_eq!(current_scope(), TraceScope::default());
    }
}
